//! Tokenize-once chat corpus and the incremental window featurizer.
//!
//! The Highlight Initializer must featurize every sliding window of
//! every video. The naive path ([`WindowFeatures::compute`]) re-tokenizes
//! each message once per overlapping window and allocates a dense center
//! vector per window; at corpus scale that dominates the whole pipeline.
//! This module makes featurization incremental:
//!
//! * [`TokenizedChat`] — built **once** per [`ChatLog`]: a corpus-level
//!   [`Vocab`], every message's sorted-unique token ids stored in one
//!   flat CSR column, cached word counts, and prefix sums over word
//!   counts. Index-aligned with `ChatLog::messages()`.
//! * [`TokenizedChat::featurize_windows`] — slides over a sorted window
//!   list with two monotone message pointers, maintaining a sparse
//!   token-count window ([`LooWindow`]) by adding entering messages and
//!   removing leaving ones. `msg_num`/`msg_len` come from pointer
//!   arithmetic and prefix sums in O(1); `msg_sim` reuses the rolling
//!   counts; the message peak is computed from the same pass. Windows
//!   are fanned out across threads in contiguous chunks, so results are
//!   byte-identical to the sequential order regardless of thread count.
//!
//! Equivalence with the naive path is exact, not approximate: every
//! aggregate that depends on summation order is accumulated in integers
//! (see [`lightor_mlcore::kmeans`]), so the property tests in this
//! module assert *bit-identical* features, and `red_dots` output is
//! unchanged whichever path scored the windows.

use crate::features::WindowFeatures;
use crate::vocab::{FragmentTable, GlobalVocab, VocabDelta};
use lightor_mlcore::text::Vocab;
use lightor_mlcore::LooWindow;
use lightor_types::{ChatLog, ChatLogView, FragRuns, Sec, TimeRange};
use rayon::prelude::*;

/// A chat log tokenized exactly once, with the aggregates window
/// featurization needs.
#[derive(Clone, Debug, Default)]
pub struct TokenizedChat {
    /// Per-corpus vocabulary — populated only by the original
    /// word-split builds. Corpora built against a [`GlobalVocab`]
    /// (or decoded from persisted columns) leave this empty: their
    /// term ids live in the shared table and scoring needs only
    /// [`TokenizedChat::dim`].
    vocab: Vocab,
    /// Flat CSR token storage: every message's sorted-unique token ids
    /// concatenated; message `i` owns `token_ids[offsets[i]..offsets[i+1]]`.
    /// One allocation for the whole corpus instead of one `Vec` per
    /// message — the difference between a decode-bound cold load and a
    /// malloc-bound one.
    token_ids: Vec<u32>,
    /// Length `n + 1`, `offsets[0] == 0`, monotone non-decreasing.
    offsets: Vec<u32>,
    word_counts: Vec<u32>,
    /// Prefix sums of `word_counts`; `word_prefix[i]` = words in
    /// messages `0..i`. Length `n + 1`.
    word_prefix: Vec<u64>,
    /// Message timestamps (sorted, mirrors `ChatLog` order).
    ts: Vec<f64>,
    /// Dense term-space size: every vector index is `< dim`. For
    /// per-corpus builds this equals `vocab.len()`; for global-vocab
    /// builds it is the largest used id + 1. Feeds the rolling
    /// count-array size, under which features are invariant to any
    /// injective id remapping.
    dim: usize,
}

impl TokenizedChat {
    /// Tokenize and index a chat log. One pass: each message is
    /// tokenized exactly once, interning into the corpus vocabulary and
    /// producing its binary bag-of-words vector.
    pub fn build(chat: &ChatLog) -> Self {
        Self::build_from_iter(
            chat.len(),
            chat.messages().iter().map(|m| (m.ts.0, m.text.as_str())),
        )
    }

    /// Tokenize straight out of a zero-copy [`ChatLogView`] — the
    /// serving path's cold start. Message texts are interned directly
    /// from the view's shared buffer, skipping the per-message `String`
    /// materialization an owned [`ChatLog`] would cost.
    pub fn build_from_view(view: &ChatLogView) -> Self {
        Self::build_from_iter(view.len(), view.iter().map(|m| (m.ts.0, m.text)))
    }

    /// Tokenize from any `(timestamp, text)` stream. Messages must
    /// arrive in non-decreasing timestamp order (both [`ChatLog`] and
    /// store-written views guarantee this).
    pub fn build_from_iter<S, I>(n_hint: usize, messages: I) -> Self
    where
        S: AsRef<str>,
        I: Iterator<Item = (f64, S)>,
    {
        let mut vocab = Vocab::new();
        let mut token_ids = Vec::new();
        let mut offsets = Vec::with_capacity(n_hint + 1);
        let mut word_counts = Vec::with_capacity(n_hint);
        let mut word_prefix = Vec::with_capacity(n_hint + 1);
        let mut ts = Vec::with_capacity(n_hint);
        word_prefix.push(0u64);
        offsets.push(0u32);
        for (t, text) in messages {
            let text = text.as_ref();
            let v = vocab.intern_text(text);
            token_ids.extend_from_slice(v.indices());
            offsets.push(token_ids.len() as u32);
            let wc = text.split_whitespace().count() as u32;
            word_counts.push(wc);
            word_prefix.push(word_prefix.last().unwrap() + u64::from(wc));
            debug_assert!(
                ts.last().is_none_or(|&prev| prev <= t),
                "messages must be timestamp-sorted"
            );
            ts.push(t);
        }
        let dim = vocab.len();
        TokenizedChat {
            vocab,
            token_ids,
            offsets,
            word_counts,
            word_prefix,
            ts,
            dim,
        }
    }

    /// Tokenize a view against a shared [`GlobalVocab`] instead of a
    /// fresh per-corpus table: one [`crate::vocab::VocabSession`] for
    /// the whole build, returning the corpus plus the
    /// [`VocabDelta`] of terms this video introduced (the unit worth
    /// persisting). The resulting corpus scores bit-exactly like the
    /// per-corpus build — see the pins in [`crate::vocab`].
    pub fn build_from_view_global(view: &ChatLogView, vocab: &GlobalVocab) -> (Self, VocabDelta) {
        let n = view.len();
        let mut sess = vocab.session();
        let mut token_ids = Vec::new();
        let mut offsets = Vec::with_capacity(n + 1);
        let mut word_counts = Vec::with_capacity(n);
        let mut word_prefix = Vec::with_capacity(n + 1);
        let mut ts = Vec::with_capacity(n);
        let mut max_id: Option<u32> = None;
        let mut idx: Vec<u32> = Vec::new();
        word_prefix.push(0u64);
        offsets.push(0u32);
        for m in view.iter() {
            idx.clear();
            sess.tokenize_into(&m.text, &mut idx);
            idx.sort_unstable();
            idx.dedup();
            if let Some(&hi) = idx.last() {
                max_id = Some(max_id.map_or(hi, |m| m.max(hi)));
            }
            token_ids.extend_from_slice(&idx);
            offsets.push(token_ids.len() as u32);
            let wc = m.text.split_whitespace().count() as u32;
            word_counts.push(wc);
            word_prefix.push(word_prefix.last().unwrap() + u64::from(wc));
            ts.push(m.ts.0);
        }
        let delta = sess.finish();
        let corpus = TokenizedChat {
            vocab: Vocab::new(),
            token_ids,
            offsets,
            word_counts,
            word_prefix,
            ts,
            dim: max_id.map_or(0, |m| m as usize + 1),
        };
        (corpus, delta)
    }

    /// Tokenize generated chat by fragment-table lookup: no
    /// word-splitting at all. `runs` records which fragments composed
    /// each message (see [`FragRuns`]) and `table` maps each fragment
    /// to its global token ids and word count. Must be index-aligned
    /// with `view` (one run per message).
    pub fn build_from_frag_runs(
        view: &ChatLogView,
        runs: &FragRuns,
        table: &FragmentTable,
    ) -> Self {
        let n = view.len();
        assert_eq!(runs.len(), n, "one fragment run per message required");
        let mut token_ids = Vec::new();
        let mut offsets = Vec::with_capacity(n + 1);
        let mut word_counts = Vec::with_capacity(n);
        let mut word_prefix = Vec::with_capacity(n + 1);
        let mut ts = Vec::with_capacity(n);
        let mut max_id: Option<u32> = None;
        let mut idx: Vec<u32> = Vec::new();
        word_prefix.push(0u64);
        offsets.push(0u32);
        for i in 0..n {
            idx.clear();
            let mut wc = 0u32;
            for &frag in runs.run(i) {
                idx.extend_from_slice(table.tokens(frag));
                wc += table.word_count(frag);
            }
            idx.sort_unstable();
            idx.dedup();
            if let Some(&hi) = idx.last() {
                max_id = Some(max_id.map_or(hi, |m| m.max(hi)));
            }
            token_ids.extend_from_slice(&idx);
            offsets.push(token_ids.len() as u32);
            word_counts.push(wc);
            word_prefix.push(word_prefix.last().unwrap() + u64::from(wc));
            ts.push(view.ts(i).0);
        }
        TokenizedChat {
            vocab: Vocab::new(),
            token_ids,
            offsets,
            word_counts,
            word_prefix,
            ts,
            dim: max_id.map_or(0, |m| m as usize + 1),
        }
    }

    /// Reassemble a corpus from persisted columns (the v3 tokenized
    /// record decode path). `token_offsets` is the cumulative end of
    /// each message's sorted-unique token ids inside `token_ids`
    /// (length `n`); timestamps come from the paired chat view.
    /// Returns `None` when the columns are mutually inconsistent, when
    /// any id is `>= dim`, or when a message's ids are not strictly
    /// increasing (the writer persists sorted-unique ids, so anything
    /// else is corruption — callers fall back to re-tokenizing).
    pub fn from_columns(
        ts: Vec<f64>,
        word_counts: Vec<u32>,
        token_offsets: &[u32],
        token_ids: &[u32],
        dim: usize,
    ) -> Option<Self> {
        let n = ts.len();
        if word_counts.len() != n || token_offsets.len() != n {
            return None;
        }
        if n > 0 && *token_offsets.last().unwrap() as usize != token_ids.len() {
            return None;
        }
        if n == 0 && !token_ids.is_empty() {
            return None;
        }
        let mut offsets = Vec::with_capacity(n + 1);
        offsets.push(0u32);
        let mut start = 0usize;
        for &end in token_offsets {
            let end = end as usize;
            if end < start || end > token_ids.len() {
                return None;
            }
            let slice = &token_ids[start..end];
            if slice.iter().any(|&id| id as usize >= dim) {
                return None;
            }
            if slice.windows(2).any(|w| w[0] >= w[1]) {
                return None;
            }
            offsets.push(end as u32);
            start = end;
        }
        let mut word_prefix = Vec::with_capacity(n + 1);
        word_prefix.push(0u64);
        for &wc in &word_counts {
            word_prefix.push(word_prefix.last().unwrap() + u64::from(wc));
        }
        Some(TokenizedChat {
            vocab: Vocab::new(),
            token_ids: token_ids.to_vec(),
            offsets,
            word_counts,
            word_prefix,
            ts,
            dim,
        })
    }

    /// Number of messages.
    pub fn len(&self) -> usize {
        // `Default` leaves `offsets` empty (no leading 0 sentinel).
        self.offsets.len().saturating_sub(1)
    }

    /// True when the corpus holds no messages.
    pub fn is_empty(&self) -> bool {
        self.len() == 0
    }

    /// The corpus-level vocabulary (empty for global-vocab builds —
    /// see the field docs).
    pub fn vocab(&self) -> &Vocab {
        &self.vocab
    }

    /// Dense term-space size (every vector index is `< dim`).
    pub fn dim(&self) -> usize {
        self.dim
    }

    /// Message `i`'s sorted-unique token ids, index-aligned with
    /// `ChatLog::messages()`.
    pub fn vector(&self, i: usize) -> &[u32] {
        &self.token_ids[self.offsets[i] as usize..self.offsets[i + 1] as usize]
    }

    /// The flat token-id column: every message's ids concatenated.
    /// Together with [`TokenizedChat::token_ends`], this is exactly the
    /// v3 on-disk layout — persisting a corpus is two bulk copies.
    pub fn token_ids(&self) -> &[u32] {
        &self.token_ids
    }

    /// Cumulative end of each message's span inside
    /// [`TokenizedChat::token_ids`] (length `len()`).
    pub fn token_ends(&self) -> &[u32] {
        &self.offsets[1..]
    }

    /// Message timestamps, index-aligned with `ChatLog::messages()`.
    pub fn timestamps(&self) -> &[f64] {
        &self.ts
    }

    /// Cached per-message word counts.
    pub fn word_counts(&self) -> &[u32] {
        &self.word_counts
    }

    /// Message index range `[lo, hi)` covered by a closed time range
    /// (same inclusive-endpoints semantics as [`ChatLog::slice`]).
    pub fn msg_range(&self, range: TimeRange) -> (usize, usize) {
        let lo = self.ts.partition_point(|&t| t < range.start.0);
        let hi = self.ts.partition_point(|&t| t <= range.end.0);
        (lo, hi)
    }

    /// Total words in messages `lo..hi` — O(1) via prefix sums.
    pub fn words_in(&self, lo: usize, hi: usize) -> u64 {
        self.word_prefix[hi] - self.word_prefix[lo]
    }

    /// Featurize every window (and locate its message peak) with the
    /// incremental rolling pass, fanned out across threads in
    /// contiguous chunks. Output is index-aligned with `windows` and
    /// byte-identical to the sequential pass for any thread count.
    ///
    /// `peak_bin` is the histogram bin width used for peak location
    /// (see [`crate::initializer::window_peak`]).
    pub fn featurize_windows(&self, windows: &[TimeRange], peak_bin: f64) -> Vec<FeaturizedWindow> {
        let threads = rayon::current_num_threads();
        self.featurize_windows_chunked(windows, peak_bin, threads)
    }

    /// [`TokenizedChat::featurize_windows`] with an explicit chunk
    /// count — exposed so tests can prove thread-count independence.
    pub fn featurize_windows_chunked(
        &self,
        windows: &[TimeRange],
        peak_bin: f64,
        chunks: usize,
    ) -> Vec<FeaturizedWindow> {
        if windows.is_empty() {
            return Vec::new();
        }
        let chunk_len = windows.len().div_ceil(chunks.max(1));
        let nested: Vec<Vec<FeaturizedWindow>> = windows
            .par_chunks(chunk_len)
            .map(|span| self.featurize_span(span, peak_bin))
            .collect();
        nested.into_iter().flatten().collect()
    }

    /// Sequential rolling pass over one contiguous span of windows.
    fn featurize_span(&self, windows: &[TimeRange], peak_bin: f64) -> Vec<FeaturizedWindow> {
        let mut roll = RollingWindow::new(self);
        let mut peak_bins: Vec<u32> = Vec::new();
        windows
            .iter()
            .map(|&range| {
                let (lo, hi) = self.msg_range(range);
                roll.slide_to(lo, hi);
                FeaturizedWindow {
                    range,
                    features: roll.features(),
                    peak: self.peak_in(range, lo, hi, peak_bin, &mut peak_bins),
                }
            })
            .collect()
    }

    /// Message-count peak inside `range` for messages `lo..hi`,
    /// mirroring the `Histogram`-based [`crate::initializer::window_peak`]
    /// arithmetic exactly, but reusing `bins` as scratch (no per-window
    /// allocation).
    fn peak_in(
        &self,
        range: TimeRange,
        lo: usize,
        hi: usize,
        bin: f64,
        bins: &mut Vec<u32>,
    ) -> Sec {
        if lo == hi {
            return range.midpoint();
        }
        let (start, end) = (range.start.0, range.end.0);
        // Same domain construction as Histogram::with_bin_width: the
        // last bin may extend past `end`.
        let n_bins = (((end - start) / bin).ceil() as usize).max(1);
        let hist_hi = start + n_bins as f64 * bin;
        let width = (hist_hi - start) / n_bins as f64;
        bins.clear();
        bins.resize(n_bins, 0);
        for &t in &self.ts[lo..hi] {
            if t.is_finite() && t >= start && t <= hist_hi {
                let idx = (((t - start) / width) as usize).min(n_bins - 1);
                bins[idx] += 1;
            }
        }
        // Histogram::peak_bin keeps the *last* bin on ties (iterator
        // `max_by` semantics); `>=` reproduces that.
        let mut best: Option<(usize, u32)> = None;
        for (i, &c) in bins.iter().enumerate() {
            if best.is_none_or(|(_, bc)| c >= bc) {
                best = Some((i, c));
            }
        }
        match best {
            Some((i, c)) if c > 0 => Sec((start + (i as f64 + 0.5) * width).clamp(start, end)),
            _ => range.midpoint(),
        }
    }
}

/// One featurized sliding window: features plus the message peak found
/// in the same rolling pass.
#[derive(Clone, Copy, Debug, PartialEq)]
pub struct FeaturizedWindow {
    /// The window interval.
    pub range: TimeRange,
    /// Raw (unscaled) window features.
    pub features: WindowFeatures,
    /// Message-count peak position inside the window.
    pub peak: Sec,
}

/// The sparse rolling state: current message span `[lo, hi)` plus the
/// incremental token counts feeding the leave-one-out similarity.
struct RollingWindow<'a> {
    corpus: &'a TokenizedChat,
    loo: LooWindow,
    lo: usize,
    hi: usize,
}

impl<'a> RollingWindow<'a> {
    fn new(corpus: &'a TokenizedChat) -> Self {
        RollingWindow {
            corpus,
            loo: LooWindow::new(corpus.dim),
            lo: 0,
            hi: 0,
        }
    }

    /// Move the window to `[lo, hi)`, incrementally adding entering
    /// messages and removing leaving ones. Handles arbitrary movement
    /// (both directions), amortized O(messages touched).
    fn slide_to(&mut self, lo: usize, hi: usize) {
        // Disjoint jump: drop everything, rebuild from empty — cheaper
        // than walking out and back in.
        if lo >= self.hi || hi <= self.lo {
            for i in self.lo..self.hi {
                self.loo.remove_ids(self.corpus.vector(i));
            }
            self.lo = lo;
            self.hi = lo;
        }
        while self.lo > lo {
            self.lo -= 1;
            self.loo.add_ids(self.corpus.vector(self.lo));
        }
        while self.lo < lo {
            self.loo.remove_ids(self.corpus.vector(self.lo));
            self.lo += 1;
        }
        while self.hi > hi {
            self.hi -= 1;
            self.loo.remove_ids(self.corpus.vector(self.hi));
        }
        while self.hi < hi {
            self.loo.add_ids(self.corpus.vector(self.hi));
            self.hi += 1;
        }
    }

    /// Features of the current window — `msg_num` from the span width,
    /// `msg_len` from prefix sums, `msg_sim` from the rolling counts.
    fn features(&self) -> WindowFeatures {
        let n = self.hi - self.lo;
        if n == 0 {
            return WindowFeatures::default();
        }
        let words = self.corpus.words_in(self.lo, self.hi);
        let msg_sim = self
            .loo
            .mean_loo_ids((self.lo..self.hi).map(|i| self.corpus.vector(i)));
        WindowFeatures {
            msg_num: n as f64,
            msg_len: words as f64 / n as f64,
            msg_sim,
        }
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::initializer::window_peak;
    use crate::window::sliding_windows;
    use lightor_types::{ChatMessage, UserId};
    use proptest::prelude::*;

    #[test]
    fn build_from_view_matches_build() {
        let c = chat(&[
            (1.0, "gg wp"),
            (2.5, "what a play"),
            (2.5, ""),
            (9.0, "消息 ✓ pog"),
        ]);
        let view = ChatLogView::from_chat_log(&c);
        let from_log = TokenizedChat::build(&c);
        let from_view = TokenizedChat::build_from_view(&view);
        assert_eq!(from_view.len(), from_log.len());
        assert_eq!(from_view.timestamps(), from_log.timestamps());
        assert_eq!(from_view.word_counts(), from_log.word_counts());
        assert_eq!(from_view.token_ids(), from_log.token_ids());
        assert_eq!(from_view.token_ends(), from_log.token_ends());
        assert_eq!(from_view.vocab().len(), from_log.vocab().len());
    }

    fn chat(messages: &[(f64, &str)]) -> ChatLog {
        ChatLog::new(
            messages
                .iter()
                .map(|&(t, s)| ChatMessage::new(t, UserId(1), s))
                .collect(),
        )
    }

    fn naive_features(chat: &ChatLog, w: TimeRange) -> WindowFeatures {
        WindowFeatures::compute(chat.slice(w))
    }

    #[test]
    fn corpus_indexes_align_with_chat() {
        let c = chat(&[(1.0, "gg wp"), (2.0, "kill"), (30.0, "what a play")]);
        let tc = TokenizedChat::build(&c);
        assert_eq!(tc.len(), 3);
        assert_eq!(tc.word_counts(), &[2, 1, 3]);
        assert_eq!(tc.words_in(0, 3), 6);
        assert_eq!(tc.words_in(1, 2), 1);
        assert_eq!(tc.msg_range(TimeRange::from_secs(0.0, 2.0)), (0, 2));
        assert_eq!(tc.msg_range(TimeRange::from_secs(2.0, 40.0)), (1, 3));
        assert_eq!(tc.vocab().len(), 6); // gg wp kill what a play
    }

    #[test]
    fn features_match_naive_on_fixed_windows() {
        let c = chat(&[
            (1.0, "kill kill"),
            (2.0, "kill"),
            (3.0, "kill wow"),
            (10.0, "anyone know the song"),
            (11.0, "pizza time"),
            (26.0, "gg"),
        ]);
        let tc = TokenizedChat::build(&c);
        let windows = [
            TimeRange::from_secs(0.0, 5.0),
            TimeRange::from_secs(5.0, 15.0),
            TimeRange::from_secs(15.0, 25.0), // empty
            TimeRange::from_secs(25.0, 30.0), // single message
        ];
        let fast = tc.featurize_windows_chunked(&windows, 5.0, 1);
        for (f, w) in fast.iter().zip(&windows) {
            assert_eq!(f.features, naive_features(&c, *w), "window {w}");
            assert_eq!(f.peak, window_peak(&c, *w, 5.0), "peak {w}");
        }
    }

    #[test]
    fn rolling_handles_backward_and_disjoint_motion() {
        let c = chat(&[
            (1.0, "a b"),
            (2.0, "b c"),
            (3.0, "c d"),
            (4.0, "d e"),
            (50.0, "x y z"),
        ]);
        let tc = TokenizedChat::build(&c);
        // Deliberately unsorted window sequence: forward, backward,
        // disjoint jump.
        let windows = [
            TimeRange::from_secs(1.0, 3.0),
            TimeRange::from_secs(0.0, 4.0),
            TimeRange::from_secs(2.0, 3.0),
            TimeRange::from_secs(45.0, 55.0),
            TimeRange::from_secs(0.0, 60.0),
        ];
        let fast = tc.featurize_windows_chunked(&windows, 5.0, 1);
        for (f, w) in fast.iter().zip(&windows) {
            assert_eq!(f.features, naive_features(&c, *w), "window {w}");
        }
    }

    proptest! {
        #[test]
        fn incremental_equals_naive_on_random_logs(
            times in proptest::collection::vec(0.0..300.0f64, 0..120),
            seed in 0u64..1000,
        ) {
            // Random messages built from a tiny token pool so windows
            // share vocabulary (the interesting case for msg_sim).
            let pool = ["gg", "kill", "wow", "nice", "play", "pog", "lol"];
            let texts: Vec<String> = times
                .iter()
                .enumerate()
                .map(|(i, _)| {
                    let k = 1 + ((seed as usize + i * 7) % 4);
                    (0..k)
                        .map(|j| pool[(i * 3 + j * 5 + seed as usize) % pool.len()])
                        .collect::<Vec<_>>()
                        .join(" ")
                })
                .collect();
            let c = ChatLog::new(
                times
                    .iter()
                    .zip(&texts)
                    .map(|(&t, s)| ChatMessage::new(t, UserId(1), s.as_str()))
                    .collect(),
            );
            let tc = TokenizedChat::build(&c);
            let windows = sliding_windows(&c, lightor_types::Sec(300.0), 25.0, 0.5);
            let fast = tc.featurize_windows_chunked(&windows, 5.0, 1);
            prop_assert_eq!(fast.len(), windows.len());
            for (f, w) in fast.iter().zip(&windows) {
                let naive = naive_features(&c, *w);
                // Integer accumulation makes the match exact, not just
                // within 1e-9.
                prop_assert_eq!(f.features, naive, "window {}", w);
                prop_assert_eq!(f.peak, window_peak(&c, *w, 5.0), "peak {}", w);
            }
        }

        #[test]
        fn chunking_never_changes_results(
            times in proptest::collection::vec(0.0..200.0f64, 0..80),
        ) {
            let c = ChatLog::new(
                times
                    .iter()
                    .enumerate()
                    .map(|(i, &t)| {
                        ChatMessage::new(t, UserId(i as u64), if i % 2 == 0 { "gg wp" } else { "kill it now" })
                    })
                    .collect(),
            );
            let tc = TokenizedChat::build(&c);
            let windows = sliding_windows(&c, lightor_types::Sec(200.0), 25.0, 0.5);
            let reference = tc.featurize_windows_chunked(&windows, 5.0, 1);
            for chunks in [2, 3, 5, 8, 64] {
                let chunked = tc.featurize_windows_chunked(&windows, 5.0, chunks);
                prop_assert_eq!(&chunked, &reference, "chunks = {}", chunks);
            }
        }
    }
}
