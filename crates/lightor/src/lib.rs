//! LIGHTOR: implicit crowdsourcing for highlight extraction from recorded
//! live videos (Jiang et al., ICDE 2020).
//!
//! The library implements the paper's two components and the end-to-end
//! workflow of Figure 1:
//!
//! * [`HighlightInitializer`] — Algorithm 1. Slices a video's time-stamped
//!   chat into sliding windows, scores each window with a logistic
//!   regression over three *general* features (message number, message
//!   length, message similarity), picks the top-k windows at least δ
//!   apart, and converts each window's message peak into a red dot by
//!   subtracting a learned reaction-delay constant `c`.
//! * [`HighlightExtractor`] — Algorithm 2. Around each red dot, collects
//!   viewer play records (through any `FnMut(Sec) -> PlaySet` crowd
//!   source), filters the noise (far / too short / too long / graph
//!   outliers), classifies the dot as Type I or Type II from three
//!   play-position features, and either aggregates boundaries by median
//!   (Type II) or moves the dot backward and re-collects (Type I), until
//!   the dot converges.
//! * [`Lightor`] — the two components wired together.
//!
//! The crate is pure algorithm: data generation lives in
//! `lightor-chatsim`/`lightor-crowdsim`, storage and serving in
//! `lightor-platform`, evaluation in `lightor-eval`.

#![warn(missing_docs)]

pub mod adjust;
pub mod aggregate;
pub mod classify;
pub mod config;
pub mod corpus;
pub mod extractor;
pub mod features;
pub mod filter;
pub mod initializer;
pub mod model;
pub mod pipeline;
pub mod vocab;
pub mod window;

pub use adjust::learn_adjustment;
pub use aggregate::{aggregate_type1, aggregate_type2};
pub use classify::{play_position_features, DotType, PlayPositionFeatures, TypeClassifier};
pub use config::{ExtractorConfig, InitializerConfig};
pub use corpus::{FeaturizedWindow, TokenizedChat};
pub use extractor::{HighlightExtractor, IterationRecord, Refined};
pub use features::{FeatureSet, WindowFeatures};
pub use filter::filter_plays;
pub use initializer::{
    window_peak, window_peak_view, HighlightInitializer, ScoredWindow, TrainingVideo,
};
pub use model::ModelBundle;
pub use pipeline::{ExtractedHighlight, Lightor};
pub use vocab::{FragmentTable, GlobalVocab, VocabDelta, VocabSession};
pub use window::{sliding_windows, sliding_windows_from_ts};
