//! The three general window features (paper Section IV-C2).
//!
//! * **Message number** — burst detection; the only feature the naive
//!   baseline uses.
//! * **Message length** — average words per message; highlight reactions
//!   are short ("Kill!", emotes), advertisements and ordinary talk are
//!   long.
//! * **Message similarity** — mean cosine similarity of each message's
//!   binary bag-of-words vector to the window's one-cluster k-means
//!   center; reactions to the *same* moment look alike, random chatter
//!   does not.

use lightor_mlcore::kmeans::mean_loo_similarity;
use lightor_mlcore::text::Vocab;
use lightor_types::ChatMessage;
use serde::{Deserialize, Serialize};

/// Raw (unscaled) features of one sliding window.
#[derive(Clone, Copy, Debug, Default, PartialEq, Serialize, Deserialize)]
pub struct WindowFeatures {
    /// Number of messages in the window.
    pub msg_num: f64,
    /// Mean words per message (0 for an empty window).
    pub msg_len: f64,
    /// Mean cosine similarity to the window's message center (0 for an
    /// empty window).
    pub msg_sim: f64,
}

impl WindowFeatures {
    /// Compute the features of the messages inside one window.
    pub fn compute(messages: &[ChatMessage]) -> Self {
        if messages.is_empty() {
            return WindowFeatures::default();
        }
        let n = messages.len() as f64;
        let msg_len = messages.iter().map(|m| m.word_count() as f64).sum::<f64>() / n;

        // Window-local vocabulary: similarity is about agreement *within*
        // this window, not global token frequency. The leave-one-out
        // center avoids the 1/sqrt(n) self-similarity floor, so this
        // measures pure agreement (0 = disjoint, 1 = identical) and
        // yields 0 for windows with fewer than two messages.
        let vocab = Vocab::build(messages.iter().map(|m| m.text.as_str()));
        let vectors: Vec<_> = messages.iter().map(|m| vocab.encode(&m.text)).collect();
        let msg_sim = mean_loo_similarity(&vectors, vocab.len());

        WindowFeatures {
            msg_num: n,
            msg_len,
            msg_sim,
        }
    }
}

/// Which features the model uses — the ablation axis of Figure 6a.
#[derive(Clone, Copy, Debug, PartialEq, Eq, Hash, Serialize, Deserialize)]
pub enum FeatureSet {
    /// Message number only (the naive signal).
    Num,
    /// Number + length.
    NumLen,
    /// Number + length + similarity (the full model).
    Full,
}

impl FeatureSet {
    /// Dimensionality of the feature vector.
    pub fn dim(self) -> usize {
        match self {
            FeatureSet::Num => 1,
            FeatureSet::NumLen => 2,
            FeatureSet::Full => 3,
        }
    }

    /// Project raw features into this set's vector layout.
    pub fn vectorize(self, f: &WindowFeatures) -> Vec<f64> {
        match self {
            FeatureSet::Num => vec![f.msg_num],
            FeatureSet::NumLen => vec![f.msg_num, f.msg_len],
            FeatureSet::Full => vec![f.msg_num, f.msg_len, f.msg_sim],
        }
    }

    /// Human-readable label used in experiment tables.
    pub fn label(self) -> &'static str {
        match self {
            FeatureSet::Num => "msg num",
            FeatureSet::NumLen => "msg num + msg len",
            FeatureSet::Full => "msg num + msg len + msg sim",
        }
    }

    /// All sets in ablation order.
    pub const ALL: [FeatureSet; 3] = [FeatureSet::Num, FeatureSet::NumLen, FeatureSet::Full];
}

#[cfg(test)]
mod tests {
    use super::*;
    use lightor_types::UserId;

    fn msgs(texts: &[&str]) -> Vec<ChatMessage> {
        texts
            .iter()
            .enumerate()
            .map(|(i, t)| ChatMessage::new(i as f64, UserId(i as u64), *t))
            .collect()
    }

    #[test]
    fn empty_window_is_zero() {
        assert_eq!(WindowFeatures::compute(&[]), WindowFeatures::default());
    }

    #[test]
    fn counts_and_lengths() {
        let f = WindowFeatures::compute(&msgs(&["gg", "what a play", "nice one dude"]));
        assert_eq!(f.msg_num, 3.0);
        assert!((f.msg_len - (1.0 + 3.0 + 3.0) / 3.0).abs() < 1e-12);
    }

    #[test]
    fn hype_window_beats_chatter_on_similarity() {
        let hype = WindowFeatures::compute(&msgs(&["kill kill", "kill", "kill wow", "kill"]));
        let chatter = WindowFeatures::compute(&msgs(&[
            "anyone know the song",
            "pizza time for me",
            "drafting looks slow today",
            "where is this tournament",
        ]));
        assert!(
            hype.msg_sim > chatter.msg_sim + 0.2,
            "hype {} vs chatter {}",
            hype.msg_sim,
            chatter.msg_sim
        );
        assert!(hype.msg_len < chatter.msg_len);
    }

    #[test]
    fn single_message_has_no_similarity_evidence() {
        let f = WindowFeatures::compute(&msgs(&["hello world"]));
        assert_eq!(f.msg_sim, 0.0);
        let g = WindowFeatures::compute(&msgs(&["gg", "gg"]));
        assert!((g.msg_sim - 1.0).abs() < 1e-9);
    }

    #[test]
    fn feature_sets_project_correctly() {
        let f = WindowFeatures {
            msg_num: 10.0,
            msg_len: 2.0,
            msg_sim: 0.7,
        };
        assert_eq!(FeatureSet::Num.vectorize(&f), vec![10.0]);
        assert_eq!(FeatureSet::NumLen.vectorize(&f), vec![10.0, 2.0]);
        assert_eq!(FeatureSet::Full.vectorize(&f), vec![10.0, 2.0, 0.7]);
        for s in FeatureSet::ALL {
            assert_eq!(s.vectorize(&f).len(), s.dim());
            assert!(!s.label().is_empty());
        }
    }
}
