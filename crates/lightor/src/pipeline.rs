//! The end-to-end LIGHTOR workflow (paper Figure 1): chat → red dots →
//! crowd refinement → extracted highlights.

use crate::extractor::{HighlightExtractor, Refined};
use crate::initializer::HighlightInitializer;
use lightor_types::{ChatLogView, PlaySet, RedDot, Sec};
use serde::{Deserialize, Serialize};

/// One extracted highlight: the refined boundary plus provenance.
#[derive(Clone, Debug, PartialEq, Serialize, Deserialize)]
pub struct ExtractedHighlight {
    /// The red dot the Initializer placed.
    pub initial: RedDot,
    /// Refined start position.
    pub start: Sec,
    /// Refined end position (absent when the crowd never produced a
    /// usable Type II round).
    pub end: Option<Sec>,
    /// Crowd rounds spent refining this dot.
    pub iterations: usize,
}

/// The assembled system: a trained Initializer and Extractor.
#[derive(Clone, Debug, Serialize, Deserialize)]
pub struct Lightor {
    /// Chat-side component.
    pub initializer: HighlightInitializer,
    /// Interaction-side component.
    pub extractor: HighlightExtractor,
}

impl Lightor {
    /// Wire the two trained components together.
    pub fn new(initializer: HighlightInitializer, extractor: HighlightExtractor) -> Self {
        Lightor {
            initializer,
            extractor,
        }
    }

    /// Initializer only: top-k red dots for a video.
    pub fn red_dots(&self, chat: &ChatLogView, duration: Sec, k: usize) -> Vec<RedDot> {
        self.initializer.red_dots(chat, duration, k)
    }

    /// Full workflow for one video.
    ///
    /// `collect(dot_index, position)` is one crowd task: it must return
    /// the play records gathered at `position` for the `dot_index`-th red
    /// dot. Results are ordered by the initializer's ranking.
    pub fn extract_highlights(
        &self,
        chat: &ChatLogView,
        duration: Sec,
        k: usize,
        collect: &mut dyn FnMut(usize, Sec) -> PlaySet,
    ) -> Vec<ExtractedHighlight> {
        self.red_dots(chat, duration, k)
            .into_iter()
            .enumerate()
            .map(|(i, dot)| {
                let refined: Refined = self.extractor.refine(dot, &mut |pos| collect(i, pos));
                ExtractedHighlight {
                    initial: dot,
                    start: refined.start,
                    end: refined.end,
                    iterations: refined.iterations(),
                }
            })
            .collect()
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::classify::{DotType, PlayPositionFeatures, TypeClassifier};
    use crate::config::{ExtractorConfig, InitializerConfig};
    use crate::features::FeatureSet;
    use crate::initializer::TrainingVideo;
    use lightor_chatsim::dota2_dataset;
    use lightor_crowdsim::Campaign;

    fn synthetic_classifier() -> TypeClassifier {
        let mut examples = Vec::new();
        for i in 0..40 {
            let j = (i % 7) as f64;
            examples.push((
                PlayPositionFeatures {
                    after: 5.0 + j,
                    before: if i % 5 == 0 { 1.0 } else { 0.0 },
                    across: 1.0 + j / 2.0,
                },
                DotType::TypeII,
            ));
            examples.push((
                PlayPositionFeatures {
                    after: 1.0 + j / 3.0,
                    before: 3.0 + j,
                    across: 2.0 + j / 2.0,
                },
                DotType::TypeI,
            ));
        }
        TypeClassifier::train(&examples)
    }

    #[test]
    fn end_to_end_on_simulated_video() {
        let data = dota2_dataset(3, 77);
        let views: Vec<TrainingVideo> = data.videos[..2]
            .iter()
            .map(|v| TrainingVideo {
                chat: &v.video.chat,
                duration: v.video.meta.duration,
                highlights: &v.video.highlights,
                label_ranges: &v.response_ranges,
            })
            .collect();
        let init =
            HighlightInitializer::train(&views, FeatureSet::Full, InitializerConfig::default());
        let system = Lightor::new(
            init,
            HighlightExtractor::new(synthetic_classifier(), ExtractorConfig::default()),
        );

        let test = &data.videos[2];
        let mut campaign = Campaign::new(120, 78);
        let video_ref = &test.video;
        let mut collect = |_i: usize, pos: Sec| campaign.run_task(video_ref, pos, 10).plays;

        let out =
            system.extract_highlights(&test.video.chat, test.video.meta.duration, 5, &mut collect);
        assert_eq!(out.len(), 5);
        // Every result refined at least one round, and most found an end.
        assert!(out.iter().all(|h| h.iterations >= 1));
        let with_end = out.iter().filter(|h| h.end.is_some()).count();
        assert!(with_end >= 3, "{with_end}/5 dots produced boundaries");
        // Starts stay within the video.
        for h in &out {
            assert!(h.start.0 >= 0.0 && h.start.0 <= test.video.meta.duration.0);
            if let Some(e) = h.end {
                assert!(e.0 >= h.start.0 - 1e-9);
            }
        }
    }
}
