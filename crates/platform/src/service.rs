//! The web-service core (paper Section VI-A, Figure 5).
//!
//! Request flow: a viewer opens a recorded video → the service looks the
//! chat up in the store (crawling on miss) → the Highlight Initializer
//! places red dots → the front end renders them → viewer interactions
//! stream back in → periodic refinement rounds run the Extractor's
//! filter/classify/aggregate step over the plays accumulated per dot and
//! persist the updated positions.
//!
//! # Concurrency
//!
//! The hot path is sharded so concurrent viewers don't serialize:
//!
//! * per-video refinement state lives behind its own
//!   `Arc<Mutex<VideoState>>`, reached through an `RwLock`'d map —
//!   sessions and refinement rounds on *different* videos proceed in
//!   parallel, and the map's write lock is only taken on first sight
//!   of a video;
//! * the storage pair (chat log + KV snapshots) sits behind a single
//!   mutex, touched only on cold opens and state persistence;
//! * per-video `Arc<TokenizedChat>` corpora are LRU-cached, so warm
//!   re-scores ([`LightorService::rescore_video`]) never re-tokenize.
//!
//! Lock order is strictly `videos map → per-video state → stores`;
//! the corpus cache is a leaf lock. No path acquires them in any other
//! order, which rules out deadlock.

use crate::cache::LruCache;
use crate::crawler::Crawler;
use crate::store::{ChatStore, FaultInjector, KvStore};
use lightor::{
    aggregate_type1, aggregate_type2, filter_plays, play_position_features, DotType, ModelBundle,
    TokenizedChat,
};
use lightor_chatsim::SimPlatform;
use lightor_types::{Play, RedDot, Sec, Session, VideoId};
use parking_lot::{Mutex, RwLock};
use serde::{Deserialize, Serialize};
use std::collections::HashMap;
use std::path::Path;
use std::sync::atomic::{AtomicBool, Ordering};
use std::sync::Arc;

/// Service tuning knobs.
#[derive(Clone, Copy, Debug, PartialEq, Serialize, Deserialize)]
pub struct ServiceConfig {
    /// Red dots per video.
    pub top_k: usize,
    /// Minimum buffered plays before a dot runs a refinement round.
    pub min_plays_per_round: usize,
    /// Per-video tokenized corpora kept hot (LRU).
    pub corpus_cache_cap: usize,
}

impl Default for ServiceConfig {
    fn default() -> Self {
        ServiceConfig {
            top_k: 5,
            min_plays_per_round: 8,
            corpus_cache_cap: 32,
        }
    }
}

/// Persistent per-dot refinement state.
#[derive(Clone, Debug, PartialEq, Serialize, Deserialize)]
pub struct DotState {
    /// The dot as the Initializer placed it.
    pub initial: RedDot,
    /// Current (refined) position.
    pub current: Sec,
    /// Extracted end boundary, once a Type II round succeeded.
    pub end: Option<Sec>,
    /// Start of the previous Type II boundary (convergence detection).
    pub last_type2_start: Option<Sec>,
    /// Refinement rounds run so far.
    pub rounds: usize,
    /// Whether the position has stopped moving.
    pub converged: bool,
    /// Plays accumulated since the last round (not persisted).
    #[serde(skip)]
    pending: Vec<Play>,
}

/// Refinement state of one video.
#[derive(Clone, Debug, Default, PartialEq, Serialize, Deserialize)]
pub struct VideoState {
    /// Per-dot state, in initializer rank order.
    pub dots: Vec<DotState>,
}

/// Point-in-time serving counters (see [`LightorService::stats`]).
#[derive(Clone, Copy, Debug, Default, PartialEq, Serialize, Deserialize)]
pub struct ServiceStats {
    /// Videos with chat stored.
    pub stored_videos: usize,
    /// Videos with live refinement state.
    pub tracked_videos: usize,
    /// Corpus-cache hits (warm scores that skipped tokenization).
    pub corpus_cache_hits: u64,
    /// Corpus-cache misses (tokenization runs).
    pub corpus_cache_misses: u64,
    /// Chat-record cache hits in the store.
    pub record_cache_hits: u64,
    /// Chat-record cache misses in the store.
    pub record_cache_misses: u64,
    /// Legacy v1 records flagged as truncated at open.
    pub v1_truncated_records: usize,
    /// Bytes currently pending in the KV write-ahead log.
    pub kv_wal_bytes: u64,
    /// KV WAL appends since open (every persisted refinement is one).
    pub kv_wal_appends: u64,
    /// KV shard snapshot rewrites since open (amortized persistence).
    pub kv_shard_rewrites: u64,
    /// Chat-log bytes dead (orphaned by re-crawls, not yet compacted).
    pub chat_dead_bytes: u64,
    /// Chat-log bytes reclaimed by compactions since open.
    pub chat_reclaimed_bytes: u64,
    /// Whether the service is in degraded read-only mode (storage I/O
    /// failed; warm reads keep working, writes are refused).
    pub degraded: bool,
}

/// The storage pair: cold-open and persistence only.
struct Stores {
    chat: ChatStore,
    kv: KvStore,
}

/// The LIGHTOR web service.
pub struct LightorService {
    models: ModelBundle,
    cfg: ServiceConfig,
    platform: SimPlatform,
    stores: Mutex<Stores>,
    videos: RwLock<HashMap<VideoId, Arc<Mutex<VideoState>>>>,
    corpora: Mutex<LruCache<VideoId, Arc<TokenizedChat>>>,
    /// One injector shared by both stores — the chaos/recovery tests'
    /// handle into the storage I/O of a live service.
    fault: FaultInjector,
    /// Set when persistence hits an I/O error: warm reads keep working,
    /// writes are refused until storage recovers (successful compact).
    degraded: AtomicBool,
}

impl LightorService {
    /// Open the service with storage under `dir`, trained `models`, and a
    /// platform to crawl from. Previously persisted dot states are
    /// reloaded from the KV store.
    pub fn open(
        dir: &Path,
        models: ModelBundle,
        platform: SimPlatform,
        cfg: ServiceConfig,
    ) -> std::io::Result<Self> {
        let mut chat = ChatStore::open(dir.join("chat"))?;
        // Older deployments kept one monolithic `state.json`; hand it to
        // the KV store under the new name and let it migrate the file
        // into the sharded layout.
        let state_dir = dir.join("state");
        let legacy = dir.join("state.json");
        if legacy.is_file() && !state_dir.exists() {
            std::fs::rename(&legacy, &state_dir)?;
            // Make the rename itself crash-durable before the KV store
            // starts migrating the file's contents.
            crate::store::sync_dir(dir)?;
        }
        let mut kv = KvStore::open(state_dir)?;
        // Both stores share one injector so a test can arm chat-log and
        // KV faults through a single handle on the live service.
        let fault = FaultInjector::new();
        chat.set_fault_injector(fault.clone());
        kv.set_fault_injector(fault.clone());
        let mut videos = HashMap::new();
        for key in kv.keys_with_prefix("video:") {
            if let (Some(id_str), Some(state)) =
                (key.strip_prefix("video:"), kv.get::<VideoState>(&key))
            {
                if let Ok(id) = id_str.parse::<u64>() {
                    videos.insert(VideoId(id), Arc::new(Mutex::new(state)));
                }
            }
        }
        Ok(LightorService {
            models,
            cfg: ServiceConfig {
                corpus_cache_cap: cfg.corpus_cache_cap.max(1),
                ..cfg
            },
            platform,
            stores: Mutex::new(Stores { chat, kv }),
            videos: RwLock::new(videos),
            corpora: Mutex::new(LruCache::new(cfg.corpus_cache_cap.max(1))),
            fault,
            degraded: AtomicBool::new(false),
        })
    }

    /// Handle a "viewer opened video X" request: returns the current red
    /// dots, crawling chat and initializing dots on first sight.
    /// `Ok(None)` means the platform does not know the video.
    pub fn open_video(&self, video: VideoId) -> std::io::Result<Option<Vec<RedDot>>> {
        // Warm path: state exists, no storage or model work at all.
        if let Some(state) = self.videos.read().get(&video).cloned() {
            return Ok(Some(Self::current_dots(&state.lock())));
        }

        // First sight: crawl on miss, tokenize (into the corpus cache),
        // initialize. The stores lock is scoped to the crawl/read and the
        // persist; scoring runs without any service-wide lock held.
        let duration;
        let corpus;
        {
            let mut stores = self.stores.lock();
            let crawler = Crawler::new(&self.platform);
            if !crawler.crawl_video(video, &mut stores.chat)? {
                return Ok(None);
            }
            let view = stores.chat.get_chat_view(video)?.expect("just crawled");
            duration = self
                .platform
                .video_meta(video)
                .map(|m| m.duration)
                .unwrap_or_else(|| view.last_ts().unwrap_or(Sec::ZERO));
            drop(stores);
            corpus = Arc::new(TokenizedChat::build_from_view(&view));
            self.corpora.lock().insert(video, corpus.clone());
        }
        let dots = self
            .models
            .initializer
            .red_dots_corpus(&corpus, duration, self.cfg.top_k);
        let state = VideoState {
            dots: dots
                .iter()
                .map(|&d| DotState {
                    initial: d,
                    current: d.at,
                    end: None,
                    last_type2_start: None,
                    rounds: 0,
                    converged: false,
                    pending: Vec::new(),
                })
                .collect(),
        };
        // Publish, then persist under the published state's own lock so
        // a racing refinement round cannot be overwritten by this
        // fresh-init snapshot. If another thread won the publish race,
        // serve (and never persist over) its state.
        let mut map = self.videos.write();
        if let Some(existing) = map.get(&video).cloned() {
            drop(map);
            return Ok(Some(Self::current_dots(&existing.lock())));
        }
        let state_arc = Arc::new(Mutex::new(state));
        map.insert(video, state_arc.clone());
        let published = state_arc.lock();
        drop(map);
        self.persist(video, &published)?;
        Ok(Some(dots))
    }

    /// Re-run the Initializer for an already-stored video (model refresh,
    /// changed `k`, …) without touching refinement state. Warm calls hit
    /// the corpus cache and never re-tokenize; `Ok(None)` when the video
    /// has no stored chat.
    pub fn rescore_video(&self, video: VideoId, k: usize) -> std::io::Result<Option<Vec<RedDot>>> {
        let Some((corpus, duration)) = self.corpus_for(video)? else {
            return Ok(None);
        };
        Ok(Some(
            self.models
                .initializer
                .red_dots_corpus(&corpus, duration, k),
        ))
    }

    /// The cached corpus for a stored video, tokenizing on first use.
    fn corpus_for(&self, video: VideoId) -> std::io::Result<Option<(Arc<TokenizedChat>, Sec)>> {
        let meta_duration = self.platform.video_meta(video).map(|m| m.duration);
        if let Some(corpus) = self.corpora.lock().get(&video) {
            let duration = meta_duration
                .unwrap_or_else(|| Sec(corpus.timestamps().last().copied().unwrap_or(0.0)));
            return Ok(Some((corpus, duration)));
        }
        let view = {
            let stores = self.stores.lock();
            match stores.chat.get_chat_view(video)? {
                Some(v) => v,
                None => return Ok(None),
            }
        };
        let duration = meta_duration.unwrap_or_else(|| view.last_ts().unwrap_or(Sec::ZERO));
        let corpus = Arc::new(TokenizedChat::build_from_view(&view));
        self.corpora.lock().insert(video, corpus.clone());
        Ok(Some((corpus, duration)))
    }

    /// Log one viewer session: its plays are buffered against the nearest
    /// red dot (within the extractor's Δ neighbourhood). Only the one
    /// video's state locks; other videos stay fully concurrent.
    ///
    /// Returns how many plays were buffered, or `None` when the video is
    /// not tracked (no one has fetched its dots yet) — the HTTP edge
    /// turns that into a 422 instead of silently dropping the upload.
    pub fn log_session(&self, video: VideoId, session: &Session) -> Option<usize> {
        let state = self.videos.read().get(&video).cloned()?;
        let mut state = state.lock();
        let delta = self.models.extractor.config().neighborhood;
        let mut buffered = 0;
        for play in session.plays() {
            let nearest = state.dots.iter_mut().min_by(|a, b| {
                play.range
                    .distance_to(a.current)
                    .total_cmp(&play.range.distance_to(b.current))
            });
            if let Some(dot) = nearest {
                if play.range.distance_to(dot.current).0 <= delta {
                    dot.pending.push(play);
                    buffered += 1;
                }
            }
        }
        Some(buffered)
    }

    /// Run one refinement round on every dot of `video` that has enough
    /// buffered plays. Returns the number of dots updated. Holds only
    /// that video's state lock while computing.
    pub fn refine_video(&self, video: VideoId) -> std::io::Result<usize> {
        let Some(state_arc) = self.videos.read().get(&video).cloned() else {
            return Ok(0);
        };
        let ex_cfg = *self.models.extractor.config();
        let classifier = self.models.extractor.classifier();
        let mut state = state_arc.lock();
        let mut updated = 0;

        for dot in &mut state.dots {
            if dot.converged || dot.pending.len() < self.cfg.min_plays_per_round {
                continue;
            }
            let raw: lightor_types::PlaySet =
                lightor_types::PlaySet::new(std::mem::take(&mut dot.pending));
            let filtered = filter_plays(&raw, dot.current, &ex_cfg);
            let next = if filtered.is_empty() {
                aggregate_type1(dot.current, ex_cfg.move_back)
            } else {
                let feats = play_position_features(&filtered, dot.current);
                match classifier.classify(&feats) {
                    DotType::TypeII => match aggregate_type2(&filtered, dot.current) {
                        Some((s, e)) => {
                            dot.end = Some(e);
                            // Two agreeing Type II boundaries = converged,
                            // even across a misclassified round.
                            if dot
                                .last_type2_start
                                .is_some_and(|p| (p.0 - s.0).abs() < ex_cfg.converge_eps)
                            {
                                dot.converged = true;
                            }
                            dot.last_type2_start = Some(s);
                            s
                        }
                        None => aggregate_type1(dot.current, ex_cfg.move_back),
                    },
                    DotType::TypeI => aggregate_type1(dot.current, ex_cfg.move_back),
                }
            };
            let moved = (next.0 - dot.current.0).abs();
            dot.current = next;
            dot.rounds += 1;
            if moved < ex_cfg.converge_eps && dot.end.is_some() {
                dot.converged = true;
            }
            updated += 1;
        }

        if updated > 0 {
            // Persist while still holding the per-video lock so a
            // concurrent round cannot interleave a stale snapshot
            // (lock order: per-video state → stores).
            self.persist(video, &state)?;
        }
        Ok(updated)
    }

    /// The current red dots of a video that is already tracked in
    /// memory — the warm read that must keep working in degraded mode
    /// (it touches no storage). `None` when the video is not tracked.
    pub fn cached_dots(&self, video: VideoId) -> Option<Vec<RedDot>> {
        let state = self.videos.read().get(&video).cloned()?;
        let dots = Self::current_dots(&state.lock());
        Some(dots)
    }

    /// Whether the service is in degraded read-only mode: a persistence
    /// I/O error was observed and storage has not recovered since. Warm
    /// reads stay correct (state is in memory); writes would lose data
    /// on a crash, so the HTTP edge refuses them with 503.
    pub fn is_degraded(&self) -> bool {
        self.degraded.load(Ordering::Relaxed)
    }

    /// The fault injector shared by both stores — the chaos/recovery
    /// tests' handle into the live service's storage I/O. No-op unless
    /// faults are armed.
    pub fn fault_injector(&self) -> &FaultInjector {
        &self.fault
    }

    /// Snapshot of a video's refinement state.
    pub fn video_state(&self, video: VideoId) -> Option<VideoState> {
        self.videos
            .read()
            .get(&video)
            .map(|state| state.lock().clone())
    }

    /// Number of videos with chat stored.
    pub fn stored_videos(&self) -> usize {
        self.stores.lock().chat.video_count()
    }

    /// The service's tuning knobs (the HTTP edge reads `top_k` as the
    /// default for re-score requests without an explicit `k`).
    pub fn config(&self) -> &ServiceConfig {
        &self.cfg
    }

    /// Serving counters: store/caches state for dashboards and tests.
    pub fn stats(&self) -> ServiceStats {
        let (record_hits, record_misses, stored, v1_truncated, kv, dead, reclaimed) = {
            let stores = self.stores.lock();
            let (h, m) = stores.chat.cache_stats();
            (
                h,
                m,
                stores.chat.video_count(),
                stores.chat.v1_truncated_records(),
                stores.kv.stats(),
                stores.chat.dead_bytes(),
                stores.chat.reclaimed_bytes(),
            )
        };
        let (corpus_hits, corpus_misses) = {
            let corpora = self.corpora.lock();
            (corpora.hits(), corpora.misses())
        };
        ServiceStats {
            stored_videos: stored,
            tracked_videos: self.videos.read().len(),
            corpus_cache_hits: corpus_hits,
            corpus_cache_misses: corpus_misses,
            record_cache_hits: record_hits,
            record_cache_misses: record_misses,
            v1_truncated_records: v1_truncated,
            kv_wal_bytes: kv.wal_bytes,
            kv_wal_appends: kv.wal_appends,
            kv_shard_rewrites: kv.shard_rewrites,
            chat_dead_bytes: dead,
            chat_reclaimed_bytes: reclaimed,
            degraded: self.is_degraded(),
        }
    }

    /// Maintenance hook: compact the chat log (reclaiming bytes orphaned
    /// by re-crawls) and force the KV store's pending WAL into shard
    /// snapshots. Safe to call any time; returns the chat compaction
    /// outcome.
    pub fn compact_storage(&self) -> std::io::Result<crate::store::CompactStats> {
        let mut stores = self.stores.lock();
        let stats = stores.chat.compact()?;
        stores.kv.snapshot()?;
        // Storage just proved it can write and sync again: leave
        // degraded mode (entered when a persist hit an I/O error).
        self.degraded.store(false, Ordering::Relaxed);
        Ok(stats)
    }

    /// Drop every cached corpus (benchmark/test hook for measuring cold
    /// re-tokenization; hit/miss counters are kept).
    pub fn clear_corpus_cache(&self) {
        self.corpora.lock().clear();
    }

    fn current_dots(state: &VideoState) -> Vec<RedDot> {
        state
            .dots
            .iter()
            .map(|d| RedDot::new(d.current, d.initial.score))
            .collect()
    }

    fn persist(&self, video: VideoId, state: &VideoState) -> std::io::Result<()> {
        let result = self
            .stores
            .lock()
            .kv
            .put(&format!("video:{}", video.0), state);
        if result.is_err() {
            // Refinement state could not be made durable: flip into
            // read-only mode so the HTTP edge stops acknowledging
            // writes it cannot keep. The in-memory state stays valid
            // for warm reads.
            self.degraded.store(true, Ordering::Relaxed);
        }
        result
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use lightor::{
        ExtractorConfig, FeatureSet, HighlightExtractor, HighlightInitializer, InitializerConfig,
        PlayPositionFeatures, TrainingVideo, TypeClassifier,
    };
    use lightor_chatsim::dota2_dataset;
    use lightor_crowdsim::Campaign;
    use lightor_types::GameKind;
    use std::path::PathBuf;

    struct TempDir(PathBuf);
    impl TempDir {
        fn new(tag: &str) -> Self {
            let p = std::env::temp_dir().join(format!(
                "lightor-service-{tag}-{}-{}",
                std::process::id(),
                std::time::SystemTime::now()
                    .duration_since(std::time::UNIX_EPOCH)
                    .unwrap()
                    .as_nanos()
            ));
            std::fs::create_dir_all(&p).unwrap();
            TempDir(p)
        }
    }
    impl Drop for TempDir {
        fn drop(&mut self) {
            let _ = std::fs::remove_dir_all(&self.0);
        }
    }

    fn models() -> ModelBundle {
        let data = dota2_dataset(2, 91);
        let views: Vec<TrainingVideo> = data
            .videos
            .iter()
            .map(|v| TrainingVideo {
                chat: &v.video.chat,
                duration: v.video.meta.duration,
                highlights: &v.video.highlights,
                label_ranges: &v.response_ranges,
            })
            .collect();
        let initializer =
            HighlightInitializer::train(&views, FeatureSet::Full, InitializerConfig::default());
        let mut examples = Vec::new();
        for i in 0..30 {
            let j = (i % 7) as f64;
            examples.push((
                PlayPositionFeatures {
                    after: 5.0 + j,
                    before: 0.0,
                    across: 1.0 + j / 2.0,
                },
                DotType::TypeII,
            ));
            examples.push((
                PlayPositionFeatures {
                    after: 1.0,
                    before: 3.0 + j,
                    across: 2.0,
                },
                DotType::TypeI,
            ));
        }
        let extractor =
            HighlightExtractor::new(TypeClassifier::train(&examples), ExtractorConfig::default());
        ModelBundle {
            initializer,
            extractor,
            provenance: "service-test".into(),
        }
    }

    fn service(dir: &Path) -> LightorService {
        let platform = SimPlatform::top_channels(GameKind::Dota2, 2, 2, 92);
        LightorService::open(dir, models(), platform, ServiceConfig::default()).unwrap()
    }

    #[test]
    fn open_video_crawls_and_initializes() {
        let dir = TempDir::new("open");
        let svc = service(&dir.0);
        let vid = {
            let p = SimPlatform::top_channels(GameKind::Dota2, 2, 2, 92);
            p.recent_videos(p.channels()[0].id)[0]
        };
        let dots = svc.open_video(vid).unwrap().unwrap();
        assert!(!dots.is_empty());
        assert_eq!(svc.stored_videos(), 1);
        // Second open returns the same dots without recrawl.
        let again = svc.open_video(vid).unwrap().unwrap();
        assert_eq!(dots.len(), again.len());
        assert_eq!(svc.stored_videos(), 1);
        // Unknown video.
        assert!(svc.open_video(VideoId(999_999)).unwrap().is_none());
    }

    #[test]
    fn interactions_refine_dots() {
        let dir = TempDir::new("refine");
        let svc = service(&dir.0);
        let platform = SimPlatform::top_channels(GameKind::Dota2, 2, 2, 92);
        let vid = platform.recent_videos(platform.channels()[0].id)[0];
        let truth = platform.ground_truth(vid).unwrap().clone();

        let dots = svc.open_video(vid).unwrap().unwrap();
        let mut campaign = Campaign::new(150, 93);
        // Three rounds of viewers + refinement.
        for _ in 0..3 {
            for dot in &dots {
                let result = campaign.run_task(&truth.video, dot.at, 12);
                for session in &result.sessions {
                    svc.log_session(vid, session);
                }
            }
            svc.refine_video(vid).unwrap();
        }
        let state = svc.video_state(vid).unwrap();
        assert!(state.dots.iter().any(|d| d.rounds > 0));
        assert!(
            state.dots.iter().any(|d| d.end.is_some()),
            "no dot extracted an end boundary"
        );
    }

    #[test]
    fn state_persists_across_restart() {
        let dir = TempDir::new("restart");
        let vid;
        {
            let svc = service(&dir.0);
            let p = SimPlatform::top_channels(GameKind::Dota2, 2, 2, 92);
            vid = p.recent_videos(p.channels()[0].id)[0];
            svc.open_video(vid).unwrap().unwrap();
        }
        // Reopen: the dot state must come back from the KV store.
        let svc2 = service(&dir.0);
        let state = svc2.video_state(vid).expect("state survived restart");
        assert!(!state.dots.is_empty());
    }

    #[test]
    fn concurrent_session_logging_is_safe() {
        let dir = TempDir::new("concurrent");
        let svc = service(&dir.0);
        let platform = SimPlatform::top_channels(GameKind::Dota2, 2, 2, 92);
        let vid = platform.recent_videos(platform.channels()[0].id)[0];
        let truth = platform.ground_truth(vid).unwrap().clone();
        let dots = svc.open_video(vid).unwrap().unwrap();

        let mut campaign = Campaign::new(64, 94);
        let sessions: Vec<_> = (0..4)
            .flat_map(|_| campaign.run_task(&truth.video, dots[0].at, 16).sessions)
            .collect();

        std::thread::scope(|scope| {
            for chunk in sessions.chunks(16) {
                let svc = &svc;
                scope.spawn(move || {
                    for s in chunk {
                        svc.log_session(vid, s);
                    }
                });
            }
        });

        // All buffered plays are attributable to dots; refinement runs.
        let updated = svc.refine_video(vid).unwrap();
        assert!(updated >= 1, "no dot had enough plays after 64 sessions");
    }

    #[test]
    fn warm_rescore_hits_corpus_cache() {
        let dir = TempDir::new("rescore");
        let svc = service(&dir.0);
        let platform = SimPlatform::top_channels(GameKind::Dota2, 2, 2, 92);
        let vid = platform.recent_videos(platform.channels()[0].id)[0];

        let dots = svc.open_video(vid).unwrap().unwrap();
        let before = svc.stats();
        // Rescoring with the service's own k must reproduce the initial
        // placement — and must not tokenize again.
        let rescored = svc
            .rescore_video(vid, ServiceConfig::default().top_k)
            .unwrap()
            .unwrap();
        assert_eq!(rescored, dots);
        let after = svc.stats();
        assert_eq!(after.corpus_cache_hits, before.corpus_cache_hits + 1);
        assert_eq!(after.corpus_cache_misses, before.corpus_cache_misses);

        // Cold rescore (cache dropped): same answer, one more miss.
        svc.clear_corpus_cache();
        let cold = svc
            .rescore_video(vid, ServiceConfig::default().top_k)
            .unwrap()
            .unwrap();
        assert_eq!(cold, dots);
        assert_eq!(
            svc.stats().corpus_cache_misses,
            after.corpus_cache_misses + 1
        );
        // Unknown video.
        assert!(svc.rescore_video(VideoId(999_999), 5).unwrap().is_none());
    }

    #[test]
    fn concurrent_open_different_videos() {
        // Sharded locks: opens and refinement on distinct videos must be
        // safe (and not serialize through one service-wide mutex).
        let dir = TempDir::new("shards");
        let svc = service(&dir.0);
        let platform = SimPlatform::top_channels(GameKind::Dota2, 2, 2, 92);
        let vids: Vec<VideoId> = platform
            .channels()
            .iter()
            .flat_map(|c| platform.recent_videos(c.id).to_vec())
            .collect();
        assert!(vids.len() >= 4);

        std::thread::scope(|scope| {
            for &vid in &vids {
                let svc = &svc;
                scope.spawn(move || {
                    let dots = svc.open_video(vid).unwrap().unwrap();
                    assert!(!dots.is_empty());
                    // Racing double-open must agree with itself.
                    let again = svc.open_video(vid).unwrap().unwrap();
                    assert_eq!(dots, again);
                });
            }
        });
        let stats = svc.stats();
        assert_eq!(stats.tracked_videos, vids.len());
        assert_eq!(stats.stored_videos, vids.len());
    }
}
