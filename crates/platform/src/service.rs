//! The web-service core (paper Section VI-A, Figure 5).
//!
//! Request flow: a viewer opens a recorded video → the service looks the
//! chat up in the store (crawling on miss) → the Highlight Initializer
//! places red dots → the front end renders them → viewer interactions
//! stream back in → periodic refinement rounds run the Extractor's
//! filter/classify/aggregate step over the plays accumulated per dot and
//! persist the updated positions.
//!
//! The service is thread-safe: interaction logging and refinement hold a
//! single `parking_lot` mutex over the mutable state (the workloads here
//! are small; contention is not the bottleneck being studied).

use crate::crawler::Crawler;
use crate::store::{ChatStore, KvStore};
use lightor::{
    aggregate_type1, aggregate_type2, filter_plays, play_position_features, DotType, ModelBundle,
};
use lightor_chatsim::SimPlatform;
use lightor_types::{Play, RedDot, Sec, Session, VideoId};
use parking_lot::Mutex;
use serde::{Deserialize, Serialize};
use std::collections::HashMap;
use std::path::Path;

/// Service tuning knobs.
#[derive(Clone, Copy, Debug, PartialEq, Serialize, Deserialize)]
pub struct ServiceConfig {
    /// Red dots per video.
    pub top_k: usize,
    /// Minimum buffered plays before a dot runs a refinement round.
    pub min_plays_per_round: usize,
}

impl Default for ServiceConfig {
    fn default() -> Self {
        ServiceConfig {
            top_k: 5,
            min_plays_per_round: 8,
        }
    }
}

/// Persistent per-dot refinement state.
#[derive(Clone, Debug, PartialEq, Serialize, Deserialize)]
pub struct DotState {
    /// The dot as the Initializer placed it.
    pub initial: RedDot,
    /// Current (refined) position.
    pub current: Sec,
    /// Extracted end boundary, once a Type II round succeeded.
    pub end: Option<Sec>,
    /// Start of the previous Type II boundary (convergence detection).
    pub last_type2_start: Option<Sec>,
    /// Refinement rounds run so far.
    pub rounds: usize,
    /// Whether the position has stopped moving.
    pub converged: bool,
    /// Plays accumulated since the last round (not persisted).
    #[serde(skip)]
    pending: Vec<Play>,
}

/// Refinement state of one video.
#[derive(Clone, Debug, Default, PartialEq, Serialize, Deserialize)]
pub struct VideoState {
    /// Per-dot state, in initializer rank order.
    pub dots: Vec<DotState>,
}

struct Inner {
    chat_store: ChatStore,
    kv: KvStore,
    videos: HashMap<VideoId, VideoState>,
}

/// The LIGHTOR web service.
pub struct LightorService {
    models: ModelBundle,
    cfg: ServiceConfig,
    platform: SimPlatform,
    inner: Mutex<Inner>,
}

impl LightorService {
    /// Open the service with storage under `dir`, trained `models`, and a
    /// platform to crawl from. Previously persisted dot states are
    /// reloaded from the KV store.
    pub fn open(
        dir: &Path,
        models: ModelBundle,
        platform: SimPlatform,
        cfg: ServiceConfig,
    ) -> std::io::Result<Self> {
        let chat_store = ChatStore::open(dir.join("chat"))?;
        let kv = KvStore::open(dir.join("state.json"))?;
        let mut videos = HashMap::new();
        for key in kv.keys_with_prefix("video:") {
            if let (Some(id_str), Some(state)) =
                (key.strip_prefix("video:"), kv.get::<VideoState>(&key))
            {
                if let Ok(id) = id_str.parse::<u64>() {
                    videos.insert(VideoId(id), state);
                }
            }
        }
        Ok(LightorService {
            models,
            cfg,
            platform,
            inner: Mutex::new(Inner {
                chat_store,
                kv,
                videos,
            }),
        })
    }

    /// Handle a "viewer opened video X" request: returns the current red
    /// dots, crawling chat and initializing dots on first sight.
    /// `Ok(None)` means the platform does not know the video.
    pub fn open_video(&self, video: VideoId) -> std::io::Result<Option<Vec<RedDot>>> {
        let mut inner = self.inner.lock();
        if let Some(state) = inner.videos.get(&video) {
            return Ok(Some(
                state
                    .dots
                    .iter()
                    .map(|d| RedDot::new(d.current, d.initial.score))
                    .collect(),
            ));
        }

        // First sight: crawl on miss, then initialize.
        let crawler = Crawler::new(&self.platform);
        if !crawler.crawl_video(video, &mut inner.chat_store)? {
            return Ok(None);
        }
        let chat = inner.chat_store.get_chat(video)?.expect("just crawled");
        let duration = self
            .platform
            .video_meta(video)
            .map(|m| m.duration)
            .unwrap_or_else(|| chat.last_ts().unwrap_or(Sec::ZERO));
        let dots = self
            .models
            .initializer
            .red_dots(&chat, duration, self.cfg.top_k);
        let state = VideoState {
            dots: dots
                .iter()
                .map(|&d| DotState {
                    initial: d,
                    current: d.at,
                    end: None,
                    last_type2_start: None,
                    rounds: 0,
                    converged: false,
                    pending: Vec::new(),
                })
                .collect(),
        };
        Self::persist(&mut inner, video, &state)?;
        inner.videos.insert(video, state);
        Ok(Some(dots))
    }

    /// Log one viewer session: its plays are buffered against the nearest
    /// red dot (within the extractor's Δ neighbourhood).
    pub fn log_session(&self, video: VideoId, session: &Session) {
        let mut inner = self.inner.lock();
        let Some(state) = inner.videos.get_mut(&video) else {
            return;
        };
        let delta = self.models.extractor.config().neighborhood;
        for play in session.plays() {
            let nearest = state.dots.iter_mut().min_by(|a, b| {
                play.range
                    .distance_to(a.current)
                    .total_cmp(&play.range.distance_to(b.current))
            });
            if let Some(dot) = nearest {
                if play.range.distance_to(dot.current).0 <= delta {
                    dot.pending.push(play);
                }
            }
        }
    }

    /// Run one refinement round on every dot of `video` that has enough
    /// buffered plays. Returns the number of dots updated.
    pub fn refine_video(&self, video: VideoId) -> std::io::Result<usize> {
        let mut inner = self.inner.lock();
        let Some(mut state) = inner.videos.get(&video).cloned() else {
            return Ok(0);
        };
        let ex_cfg = *self.models.extractor.config();
        let classifier = self.models.extractor.classifier();
        let mut updated = 0;

        for dot in &mut state.dots {
            if dot.converged || dot.pending.len() < self.cfg.min_plays_per_round {
                continue;
            }
            let raw: lightor_types::PlaySet =
                lightor_types::PlaySet::new(std::mem::take(&mut dot.pending));
            let filtered = filter_plays(&raw, dot.current, &ex_cfg);
            let next = if filtered.is_empty() {
                aggregate_type1(dot.current, ex_cfg.move_back)
            } else {
                let feats = play_position_features(&filtered, dot.current);
                match classifier.classify(&feats) {
                    DotType::TypeII => match aggregate_type2(&filtered, dot.current) {
                        Some((s, e)) => {
                            dot.end = Some(e);
                            // Two agreeing Type II boundaries = converged,
                            // even across a misclassified round.
                            if dot
                                .last_type2_start
                                .is_some_and(|p| (p.0 - s.0).abs() < ex_cfg.converge_eps)
                            {
                                dot.converged = true;
                            }
                            dot.last_type2_start = Some(s);
                            s
                        }
                        None => aggregate_type1(dot.current, ex_cfg.move_back),
                    },
                    DotType::TypeI => aggregate_type1(dot.current, ex_cfg.move_back),
                }
            };
            let moved = (next.0 - dot.current.0).abs();
            dot.current = next;
            dot.rounds += 1;
            if moved < ex_cfg.converge_eps && dot.end.is_some() {
                dot.converged = true;
            }
            updated += 1;
        }

        if updated > 0 {
            Self::persist(&mut inner, video, &state)?;
        }
        inner.videos.insert(video, state);
        Ok(updated)
    }

    /// Snapshot of a video's refinement state.
    pub fn video_state(&self, video: VideoId) -> Option<VideoState> {
        self.inner.lock().videos.get(&video).cloned()
    }

    /// Number of videos with chat stored.
    pub fn stored_videos(&self) -> usize {
        self.inner.lock().chat_store.video_count()
    }

    fn persist(inner: &mut Inner, video: VideoId, state: &VideoState) -> std::io::Result<()> {
        inner.kv.put(&format!("video:{}", video.0), state)
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use lightor::{
        ExtractorConfig, FeatureSet, HighlightExtractor, HighlightInitializer, InitializerConfig,
        PlayPositionFeatures, TrainingVideo, TypeClassifier,
    };
    use lightor_chatsim::dota2_dataset;
    use lightor_crowdsim::Campaign;
    use lightor_types::GameKind;
    use std::path::PathBuf;

    struct TempDir(PathBuf);
    impl TempDir {
        fn new(tag: &str) -> Self {
            let p = std::env::temp_dir().join(format!(
                "lightor-service-{tag}-{}-{}",
                std::process::id(),
                std::time::SystemTime::now()
                    .duration_since(std::time::UNIX_EPOCH)
                    .unwrap()
                    .as_nanos()
            ));
            std::fs::create_dir_all(&p).unwrap();
            TempDir(p)
        }
    }
    impl Drop for TempDir {
        fn drop(&mut self) {
            let _ = std::fs::remove_dir_all(&self.0);
        }
    }

    fn models() -> ModelBundle {
        let data = dota2_dataset(2, 91);
        let views: Vec<TrainingVideo> = data
            .videos
            .iter()
            .map(|v| TrainingVideo {
                chat: &v.video.chat,
                duration: v.video.meta.duration,
                highlights: &v.video.highlights,
                label_ranges: &v.response_ranges,
            })
            .collect();
        let initializer =
            HighlightInitializer::train(&views, FeatureSet::Full, InitializerConfig::default());
        let mut examples = Vec::new();
        for i in 0..30 {
            let j = (i % 7) as f64;
            examples.push((
                PlayPositionFeatures {
                    after: 5.0 + j,
                    before: 0.0,
                    across: 1.0 + j / 2.0,
                },
                DotType::TypeII,
            ));
            examples.push((
                PlayPositionFeatures {
                    after: 1.0,
                    before: 3.0 + j,
                    across: 2.0,
                },
                DotType::TypeI,
            ));
        }
        let extractor =
            HighlightExtractor::new(TypeClassifier::train(&examples), ExtractorConfig::default());
        ModelBundle {
            initializer,
            extractor,
            provenance: "service-test".into(),
        }
    }

    fn service(dir: &Path) -> LightorService {
        let platform = SimPlatform::top_channels(GameKind::Dota2, 2, 2, 92);
        LightorService::open(dir, models(), platform, ServiceConfig::default()).unwrap()
    }

    #[test]
    fn open_video_crawls_and_initializes() {
        let dir = TempDir::new("open");
        let svc = service(&dir.0);
        let vid = {
            let p = SimPlatform::top_channels(GameKind::Dota2, 2, 2, 92);
            p.recent_videos(p.channels()[0].id)[0]
        };
        let dots = svc.open_video(vid).unwrap().unwrap();
        assert!(!dots.is_empty());
        assert_eq!(svc.stored_videos(), 1);
        // Second open returns the same dots without recrawl.
        let again = svc.open_video(vid).unwrap().unwrap();
        assert_eq!(dots.len(), again.len());
        assert_eq!(svc.stored_videos(), 1);
        // Unknown video.
        assert!(svc.open_video(VideoId(999_999)).unwrap().is_none());
    }

    #[test]
    fn interactions_refine_dots() {
        let dir = TempDir::new("refine");
        let svc = service(&dir.0);
        let platform = SimPlatform::top_channels(GameKind::Dota2, 2, 2, 92);
        let vid = platform.recent_videos(platform.channels()[0].id)[0];
        let truth = platform.ground_truth(vid).unwrap().clone();

        let dots = svc.open_video(vid).unwrap().unwrap();
        let mut campaign = Campaign::new(150, 93);
        // Three rounds of viewers + refinement.
        for _ in 0..3 {
            for dot in &dots {
                let result = campaign.run_task(&truth.video, dot.at, 12);
                for session in &result.sessions {
                    svc.log_session(vid, session);
                }
            }
            svc.refine_video(vid).unwrap();
        }
        let state = svc.video_state(vid).unwrap();
        assert!(state.dots.iter().any(|d| d.rounds > 0));
        assert!(
            state.dots.iter().any(|d| d.end.is_some()),
            "no dot extracted an end boundary"
        );
    }

    #[test]
    fn state_persists_across_restart() {
        let dir = TempDir::new("restart");
        let vid;
        {
            let svc = service(&dir.0);
            let p = SimPlatform::top_channels(GameKind::Dota2, 2, 2, 92);
            vid = p.recent_videos(p.channels()[0].id)[0];
            svc.open_video(vid).unwrap().unwrap();
        }
        // Reopen: the dot state must come back from the KV store.
        let svc2 = service(&dir.0);
        let state = svc2.video_state(vid).expect("state survived restart");
        assert!(!state.dots.is_empty());
    }

    #[test]
    fn concurrent_session_logging_is_safe() {
        let dir = TempDir::new("concurrent");
        let svc = service(&dir.0);
        let platform = SimPlatform::top_channels(GameKind::Dota2, 2, 2, 92);
        let vid = platform.recent_videos(platform.channels()[0].id)[0];
        let truth = platform.ground_truth(vid).unwrap().clone();
        let dots = svc.open_video(vid).unwrap().unwrap();

        let mut campaign = Campaign::new(64, 94);
        let sessions: Vec<_> = (0..4)
            .flat_map(|_| campaign.run_task(&truth.video, dots[0].at, 16).sessions)
            .collect();

        std::thread::scope(|scope| {
            for chunk in sessions.chunks(16) {
                let svc = &svc;
                scope.spawn(move || {
                    for s in chunk {
                        svc.log_session(vid, s);
                    }
                });
            }
        });

        // All buffered plays are attributable to dots; refinement runs.
        let updated = svc.refine_video(vid).unwrap();
        assert!(updated >= 1, "no dot had enough plays after 64 sessions");
    }
}
