//! The web-service core (paper Section VI-A, Figure 5).
//!
//! Request flow: a viewer opens a recorded video → the service looks the
//! chat up in the store (crawling on miss) → the Highlight Initializer
//! places red dots → the front end renders them → viewer interactions
//! stream back in → periodic refinement rounds run the Extractor's
//! filter/classify/aggregate step over the plays accumulated per dot and
//! persist the updated positions.
//!
//! # Concurrency
//!
//! The hot path is sharded so concurrent viewers don't serialize:
//!
//! * per-video refinement state lives behind its own [`VideoEntry`]
//!   (a mutex'd [`VideoState`] plus an RCU-published dot snapshot),
//!   reached through an `RwLock`'d map — sessions and refinement
//!   rounds on *different* videos proceed in parallel, and the map's
//!   write lock is only taken on first sight of a video;
//! * dot *reads* never touch the per-video state mutex: every write
//!   path that changes dot positions republishes an immutable
//!   `Arc<Vec<RedDot>>` snapshot (an RCU-style swap), and
//!   [`LightorService::cached_dots`] clones out of that snapshot — a
//!   refinement round folding a large batch cannot stall `GET
//!   /video/{id}/dots`;
//! * the storage pair (chat log + KV snapshots) sits behind a single
//!   mutex, touched only on cold opens and state persistence;
//! * per-video `Arc<TokenizedChat>` corpora are LRU-cached, so warm
//!   re-scores ([`LightorService::rescore_video`]) never re-tokenize.
//!
//! Lock order is strictly `videos map → per-video state → stores`;
//! the corpus cache, the freeze map, and each entry's snapshot lock
//! are leaf locks. No path acquires them in any other order, which
//! rules out deadlock.
//!
//! # Incremental ingestion
//!
//! [`LightorService::refine_batch`] is the unit of ingestion for both
//! upload paths: it buffers one event batch against the nearest dots,
//! runs a refinement round over whatever has accumulated, republishes
//! the dot snapshot, and persists *before* the caller acknowledges —
//! buffered plays and per-session sequence watermarks are part of
//! [`VideoState`], so a SIGKILL loses only unacknowledged batches and
//! an acknowledged batch replayed after a crash (same `(client, seq)`)
//! is recognized and not folded twice.

use crate::cache::LruCache;
use crate::crawler::Crawler;
use crate::store::{ChatStore, FaultInjector, KvStore, TokenizedRecord};
use crate::wire::{self, BundleDto, BundleEntryDto, ExportRequest, ImportResponse};
use lightor::{
    aggregate_type1, aggregate_type2, filter_plays, play_position_features, DotType, GlobalVocab,
    ModelBundle, TokenizedChat, VocabDelta,
};
use lightor_chatsim::SimPlatform;
use lightor_types::{Play, RedDot, Sec, Session, VideoId};
use parking_lot::{Mutex, RwLock};
use serde::{Deserialize, Serialize};
use std::collections::HashMap;
use std::path::Path;
use std::sync::atomic::{AtomicBool, AtomicU64, Ordering};
use std::sync::Arc;
use std::time::{Duration, Instant};

/// Service tuning knobs.
#[derive(Clone, Copy, Debug, PartialEq, Serialize, Deserialize)]
pub struct ServiceConfig {
    /// Red dots per video.
    pub top_k: usize,
    /// Minimum buffered plays before a dot runs a refinement round.
    pub min_plays_per_round: usize,
    /// Per-video tokenized corpora kept hot (LRU).
    pub corpus_cache_cap: usize,
}

impl Default for ServiceConfig {
    fn default() -> Self {
        ServiceConfig {
            top_k: 5,
            min_plays_per_round: 8,
            corpus_cache_cap: 32,
        }
    }
}

/// Persistent per-dot refinement state.
#[derive(Clone, Debug, PartialEq, Serialize, Deserialize)]
pub struct DotState {
    /// The dot as the Initializer placed it.
    pub initial: RedDot,
    /// Current (refined) position.
    pub current: Sec,
    /// Extracted end boundary, once a Type II round succeeded.
    pub end: Option<Sec>,
    /// Start of the previous Type II boundary (convergence detection).
    pub last_type2_start: Option<Sec>,
    /// Refinement rounds run so far.
    pub rounds: usize,
    /// Whether the position has stopped moving.
    pub converged: bool,
    /// Plays accumulated since the last round. Persisted (with
    /// `default` for pre-streaming states, which never wrote them):
    /// an acknowledged batch whose plays have not yet crossed the
    /// refinement threshold must survive a crash, or its idempotent
    /// replay would be skipped *and* its plays lost.
    #[serde(default)]
    pending: Vec<Play>,
}

/// The acknowledged batch-sequence watermark of one `(video, client)`
/// streaming session: a batch at or below `seq` has already been
/// folded (and made durable), so replaying it is a recognized no-op.
#[derive(Clone, Copy, Debug, PartialEq, Eq, Serialize, Deserialize)]
pub struct SessionSeq {
    /// The client id the watermark belongs to.
    pub client: u64,
    /// Highest acknowledged batch sequence.
    pub seq: u64,
}

/// Refinement state of one video.
#[derive(Clone, Debug, Default, PartialEq, Serialize, Deserialize)]
pub struct VideoState {
    /// Per-dot state, in initializer rank order.
    pub dots: Vec<DotState>,
    /// Per-client acknowledged batch sequences, sorted by client id
    /// (`default` keeps pre-streaming persisted states parseable).
    #[serde(default)]
    pub sessions: Vec<SessionSeq>,
}

/// What one [`LightorService::refine_batch`] call did.
#[derive(Clone, Copy, Debug, Default, PartialEq, Eq)]
pub struct BatchOutcome {
    /// Plays buffered against dots by this batch.
    pub plays_buffered: usize,
    /// Dots that ran a refinement round.
    pub dots_refined: usize,
    /// The batch's sequence was at or below the acknowledged
    /// watermark: nothing was folded (idempotent replay).
    pub replayed: bool,
}

/// One tracked video: its mutable refinement state plus the published
/// read-side dot snapshot. Writers mutate `state` under its mutex and
/// republish; readers clone out of `dots` without ever touching the
/// state mutex (RCU-style — the snapshot `Arc` is swapped atomically
/// under a leaf lock held for nanoseconds).
struct VideoEntry {
    state: Mutex<VideoState>,
    dots: RwLock<Arc<Vec<RedDot>>>,
}

impl VideoEntry {
    fn new(state: VideoState) -> Arc<Self> {
        let snap = Arc::new(snapshot_dots(&state));
        Arc::new(VideoEntry {
            state: Mutex::new(state),
            dots: RwLock::new(snap),
        })
    }

    /// Swap in a fresh snapshot. Callers hold the state mutex, which
    /// serializes publishers — readers never wait on it.
    fn publish(&self, state: &VideoState) {
        *self.dots.write() = Arc::new(snapshot_dots(state));
    }

    /// The published dots (never blocks on the state mutex).
    fn snapshot(&self) -> Vec<RedDot> {
        self.dots.read().as_ref().clone()
    }
}

/// The read-side projection of a state: current positions, initial
/// scores.
fn snapshot_dots(state: &VideoState) -> Vec<RedDot> {
    state
        .dots
        .iter()
        .map(|d| RedDot::new(d.current, d.initial.score))
        .collect()
}

/// Point-in-time serving counters (see [`LightorService::stats`]).
#[derive(Clone, Copy, Debug, Default, PartialEq, Serialize, Deserialize)]
pub struct ServiceStats {
    /// Videos with chat stored.
    pub stored_videos: usize,
    /// Videos with live refinement state.
    pub tracked_videos: usize,
    /// Corpus-cache hits (warm scores that skipped tokenization).
    pub corpus_cache_hits: u64,
    /// Corpus-cache misses (corpus loads that went to storage).
    pub corpus_cache_misses: u64,
    /// Corpus loads served from persisted v3 tokenized records —
    /// zero re-tokenization, term ids straight off disk.
    pub tokenized_hits: u64,
    /// Corpus loads that had to re-tokenize raw chat (no usable v3
    /// companion yet).
    pub tokenized_misses: u64,
    /// Lazy v2→v3 upgrades persisted: cold tokenizations written back
    /// so no future process pays that cost again.
    pub tokenized_lazy_upgrades: u64,
    /// Wall time of the boot-time training pass, milliseconds (0 until
    /// the serve binary reports it).
    pub train_boot_ms: u64,
    /// Chat-record cache hits in the store.
    pub record_cache_hits: u64,
    /// Chat-record cache misses in the store.
    pub record_cache_misses: u64,
    /// Legacy v1 records flagged as truncated at open.
    pub v1_truncated_records: usize,
    /// Bytes currently pending in the KV write-ahead log.
    pub kv_wal_bytes: u64,
    /// KV WAL appends since open (every persisted refinement is one).
    pub kv_wal_appends: u64,
    /// KV shard snapshot rewrites since open (amortized persistence).
    pub kv_shard_rewrites: u64,
    /// Chat-log bytes dead (orphaned by re-crawls, not yet compacted).
    pub chat_dead_bytes: u64,
    /// Chat-log bytes reclaimed by compactions since open.
    pub chat_reclaimed_bytes: u64,
    /// Whether the service is in degraded read-only mode (storage I/O
    /// failed; warm reads keep working, writes are refused).
    pub degraded: bool,
}

/// The storage pair: cold-open and persistence only.
struct Stores {
    chat: ChatStore,
    kv: KvStore,
}

/// The LIGHTOR web service.
pub struct LightorService {
    models: ModelBundle,
    cfg: ServiceConfig,
    platform: SimPlatform,
    stores: Mutex<Stores>,
    videos: RwLock<HashMap<VideoId, Arc<VideoEntry>>>,
    corpora: Mutex<LruCache<VideoId, Arc<TokenizedChat>>>,
    /// Process-wide interned vocabulary: every corpus build and every
    /// absorbed v3 vocab delta shares it, so a term is tokenized at
    /// most once per process (and, with v3 companions, once *ever*).
    vocab: Arc<GlobalVocab>,
    /// Videos whose persisted vocab delta has been absorbed into
    /// `vocab` this process (or whose build fed it directly). Decodes
    /// of these skip term materialization entirely — the terms are
    /// warm-up data, needed at most once per process per video. Leaf
    /// lock, taken only inside `corpus_for`.
    absorbed: Mutex<std::collections::HashSet<VideoId>>,
    /// Corpus loads decoded from persisted v3 records (no tokenizing).
    tok_hits: AtomicU64,
    /// Corpus loads that re-tokenized chat (then upgraded lazily).
    tok_misses: AtomicU64,
    /// v3 companions persisted by the lazy-upgrade path.
    tok_upgrades: AtomicU64,
    /// Boot-time training wall time, reported by the serve binary.
    train_boot_ms: AtomicU64,
    /// One injector shared by both stores — the chaos/recovery tests'
    /// handle into the storage I/O of a live service.
    fault: FaultInjector,
    /// Set when persistence hits an I/O error: warm reads keep working,
    /// writes are refused until storage recovers (successful compact).
    degraded: AtomicBool,
    /// Per-video write-freeze deadlines — the migration cutover window.
    /// Frozen videos answer writes with 503 + Retry-After at the HTTP
    /// edge until the deadline passes (expiry is lazy, on lookup), so a
    /// stalled migration can never block refinement for longer than the
    /// TTL it asked for. Leaf lock: never held across any other lock.
    frozen: Mutex<HashMap<VideoId, Instant>>,
}

impl LightorService {
    /// Open the service with storage under `dir`, trained `models`, and a
    /// platform to crawl from. Previously persisted dot states are
    /// reloaded from the KV store.
    pub fn open(
        dir: &Path,
        models: ModelBundle,
        platform: SimPlatform,
        cfg: ServiceConfig,
    ) -> std::io::Result<Self> {
        let mut chat = ChatStore::open(dir.join("chat"))?;
        // Older deployments kept one monolithic `state.json`; hand it to
        // the KV store under the new name and let it migrate the file
        // into the sharded layout.
        let state_dir = dir.join("state");
        let legacy = dir.join("state.json");
        if legacy.is_file() && !state_dir.exists() {
            std::fs::rename(&legacy, &state_dir)?;
            // Make the rename itself crash-durable before the KV store
            // starts migrating the file's contents.
            crate::store::sync_dir(dir)?;
        }
        let mut kv = KvStore::open(state_dir)?;
        // Both stores share one injector so a test can arm chat-log and
        // KV faults through a single handle on the live service.
        let fault = FaultInjector::new();
        chat.set_fault_injector(fault.clone());
        kv.set_fault_injector(fault.clone());
        let mut videos = HashMap::new();
        for key in kv.keys_with_prefix("video:") {
            if let (Some(id_str), Some(state)) =
                (key.strip_prefix("video:"), kv.get::<VideoState>(&key))
            {
                if let Ok(id) = id_str.parse::<u64>() {
                    videos.insert(VideoId(id), VideoEntry::new(state));
                }
            }
        }
        Ok(LightorService {
            models,
            cfg: ServiceConfig {
                corpus_cache_cap: cfg.corpus_cache_cap.max(1),
                ..cfg
            },
            platform,
            stores: Mutex::new(Stores { chat, kv }),
            videos: RwLock::new(videos),
            corpora: Mutex::new(LruCache::new(cfg.corpus_cache_cap.max(1))),
            vocab: Arc::new(GlobalVocab::new()),
            absorbed: Mutex::new(std::collections::HashSet::new()),
            tok_hits: AtomicU64::new(0),
            tok_misses: AtomicU64::new(0),
            tok_upgrades: AtomicU64::new(0),
            train_boot_ms: AtomicU64::new(0),
            fault,
            degraded: AtomicBool::new(false),
            frozen: Mutex::new(HashMap::new()),
        })
    }

    /// Handle a "viewer opened video X" request: returns the current red
    /// dots, crawling chat and initializing dots on first sight.
    /// `Ok(None)` means the platform does not know the video.
    pub fn open_video(&self, video: VideoId) -> std::io::Result<Option<Vec<RedDot>>> {
        // Warm path: the published snapshot, no storage or model work —
        // and no per-video state mutex either.
        if let Some(entry) = self.videos.read().get(&video).cloned() {
            return Ok(Some(entry.snapshot()));
        }

        // First sight: crawl on miss, then load the corpus through the
        // shared path (persisted v3 companion if one shipped in a
        // bundle, tokenize-and-upgrade otherwise). The stores lock is
        // scoped to the crawl; scoring runs without any service-wide
        // lock held.
        {
            let mut stores = self.stores.lock();
            let crawler = Crawler::new(&self.platform);
            if !crawler.crawl_video(video, &mut stores.chat)? {
                return Ok(None);
            }
        }
        let (corpus, duration) = self.corpus_for(video)?.expect("just crawled");
        let dots = self
            .models
            .initializer
            .red_dots_corpus(&corpus, duration, self.cfg.top_k);
        let state = VideoState {
            dots: dots
                .iter()
                .map(|&d| DotState {
                    initial: d,
                    current: d.at,
                    end: None,
                    last_type2_start: None,
                    rounds: 0,
                    converged: false,
                    pending: Vec::new(),
                })
                .collect(),
            sessions: Vec::new(),
        };
        // Publish, then persist under the published state's own lock so
        // a racing refinement round cannot be overwritten by this
        // fresh-init snapshot. If another thread won the publish race,
        // serve (and never persist over) its state.
        let mut map = self.videos.write();
        if let Some(existing) = map.get(&video).cloned() {
            drop(map);
            return Ok(Some(existing.snapshot()));
        }
        let entry = VideoEntry::new(state);
        map.insert(video, entry.clone());
        let published = entry.state.lock();
        drop(map);
        self.persist(video, &published)?;
        Ok(Some(dots))
    }

    /// Re-run the Initializer for an already-stored video (model refresh,
    /// changed `k`, …) without touching refinement state. Warm calls hit
    /// the corpus cache and never re-tokenize; `Ok(None)` when the video
    /// has no stored chat.
    pub fn rescore_video(&self, video: VideoId, k: usize) -> std::io::Result<Option<Vec<RedDot>>> {
        let Some((corpus, duration)) = self.corpus_for(video)? else {
            return Ok(None);
        };
        Ok(Some(
            self.models
                .initializer
                .red_dots_corpus(&corpus, duration, k),
        ))
    }

    /// The cached corpus for a stored video.
    ///
    /// Resolution order — each step strictly cheaper than the next:
    /// LRU hit (no storage) → persisted v3 tokenized record (decode
    /// only, zero re-tokenization) → tokenize the chat view against the
    /// shared vocabulary and lazily persist the result as a v3
    /// companion so no future load (this process or the next) pays the
    /// tokenization again. Companion write failures are swallowed: the
    /// corpus is correct either way, and the upgrade retries on the
    /// next cold load — a read path must not flip the service into
    /// degraded mode over an optional cache write.
    fn corpus_for(&self, video: VideoId) -> std::io::Result<Option<(Arc<TokenizedChat>, Sec)>> {
        let meta_duration = self.platform.video_meta(video).map(|m| m.duration);
        if let Some(corpus) = self.corpora.lock().get(&video) {
            let duration = meta_duration
                .unwrap_or_else(|| Sec(corpus.timestamps().last().copied().unwrap_or(0.0)));
            return Ok(Some((corpus, duration)));
        }
        // A record's vocab terms are pure warm-up for the shared
        // vocabulary — needed at most once per process per video. After
        // the first absorb, decode the cheap columns-only variant and
        // skip one String allocation per term.
        let need_terms = !self.absorbed.lock().contains(&video);
        let (view, tok) = {
            let stores = self.stores.lock();
            match stores.chat.get_chat_view(video)? {
                Some(v) => {
                    let tok = if need_terms {
                        stores.chat.get_tokenized(video)?
                    } else {
                        stores.chat.get_tokenized_columns(video)?
                    };
                    (v, tok)
                }
                None => return Ok(None),
            }
        };
        let duration = meta_duration.unwrap_or_else(|| view.last_ts().unwrap_or(Sec::ZERO));
        if let Some(rec) = tok {
            // The store orphans companions on chat overwrite, so a
            // mismatched message count means corruption — reject and
            // rebuild rather than serve misaligned columns.
            if rec.len() == view.len() {
                // Re-warm the shared vocabulary with the delta this
                // record carried, so later cold builds re-use its terms
                // (ids may differ across processes; each record's ids
                // are self-consistent, which is all scoring needs).
                if need_terms {
                    self.vocab.absorb(&rec.vocab_terms);
                    self.absorbed.lock().insert(video);
                }
                let ts: Vec<f64> = (0..view.len()).map(|i| view.ts(i).0).collect();
                if let Some(corpus) = TokenizedChat::from_columns(
                    ts,
                    rec.word_counts,
                    &rec.token_ends,
                    &rec.token_ids,
                    rec.dim as usize,
                ) {
                    self.tok_hits.fetch_add(1, Ordering::Relaxed);
                    let corpus = Arc::new(corpus);
                    self.corpora.lock().insert(video, corpus.clone());
                    return Ok(Some((corpus, duration)));
                }
            }
        }
        self.tok_misses.fetch_add(1, Ordering::Relaxed);
        let (corpus, delta) = TokenizedChat::build_from_view_global(&view, &self.vocab);
        let corpus = Arc::new(corpus);
        let record = Self::tokenized_record(video, &corpus, &delta);
        if self.stores.lock().chat.put_tokenized(&record).is_ok() {
            self.tok_upgrades.fetch_add(1, Ordering::Relaxed);
        }
        // The build fed the shared vocab directly; the record we just
        // wrote never needs its terms re-read in this process.
        self.absorbed.lock().insert(video);
        self.corpora.lock().insert(video, corpus.clone());
        Ok(Some((corpus, duration)))
    }

    /// Flatten a freshly built corpus (plus the vocab delta its build
    /// produced) into the v3 persistence columns.
    fn tokenized_record(
        video: VideoId,
        corpus: &TokenizedChat,
        delta: &VocabDelta,
    ) -> TokenizedRecord {
        TokenizedRecord {
            video,
            dim: corpus.dim() as u32,
            // The corpus CSR layout IS the v3 column layout.
            token_ends: corpus.token_ends().to_vec(),
            token_ids: corpus.token_ids().to_vec(),
            word_counts: corpus.word_counts().to_vec(),
            vocab_base: delta.base,
            vocab_terms: delta.terms.clone(),
        }
    }

    /// Load every stored video's corpus, preferring persisted v3
    /// records: returns `(loaded, rebuilt)` — `loaded` corpora came
    /// straight off disk with zero re-tokenization, `rebuilt` had to
    /// tokenize (and were lazily persisted for next boot). The serve
    /// binary prints this as its corpus readiness line; on a restart
    /// over a populated data dir the whole catalog should be `loaded`.
    pub fn warm_corpora(&self) -> std::io::Result<(usize, usize)> {
        let videos = self.stores.lock().chat.videos();
        let mut loaded = 0usize;
        let mut rebuilt = 0usize;
        for video in videos {
            let misses_before = self.tok_misses.load(Ordering::Relaxed);
            if self.corpus_for(video)?.is_some() {
                if self.tok_misses.load(Ordering::Relaxed) > misses_before {
                    rebuilt += 1;
                } else {
                    loaded += 1;
                }
            }
        }
        Ok((loaded, rebuilt))
    }

    /// Record the boot-time training pass's wall time (serve binary).
    pub fn set_train_boot_ms(&self, ms: u64) {
        self.train_boot_ms.store(ms, Ordering::Relaxed);
    }

    /// Log one viewer session: its plays are buffered against the nearest
    /// red dot (within the extractor's Δ neighbourhood). Only the one
    /// video's state locks; other videos stay fully concurrent.
    ///
    /// Returns how many plays were buffered, or `None` when the video is
    /// not tracked (no one has fetched its dots yet) — the HTTP edge
    /// turns that into a 422 instead of silently dropping the upload.
    pub fn log_session(&self, video: VideoId, session: &Session) -> Option<usize> {
        let entry = self.videos.read().get(&video).cloned()?;
        let mut state = entry.state.lock();
        Some(self.buffer_plays(&mut state, session))
    }

    /// Buffer one session's plays against the nearest dots. Caller
    /// holds the video's state lock.
    fn buffer_plays(&self, state: &mut VideoState, session: &Session) -> usize {
        let delta = self.models.extractor.config().neighborhood;
        let mut buffered = 0;
        for play in session.plays() {
            let nearest = state.dots.iter_mut().min_by(|a, b| {
                play.range
                    .distance_to(a.current)
                    .total_cmp(&play.range.distance_to(b.current))
            });
            if let Some(dot) = nearest {
                if play.range.distance_to(dot.current).0 <= delta {
                    dot.pending.push(play);
                    buffered += 1;
                }
            }
        }
        buffered
    }

    /// Run one refinement round on every dot of `video` that has enough
    /// buffered plays. Returns the number of dots updated. Holds only
    /// that video's state lock while computing.
    pub fn refine_video(&self, video: VideoId) -> std::io::Result<usize> {
        let Some(entry) = self.videos.read().get(&video).cloned() else {
            return Ok(0);
        };
        let mut state = entry.state.lock();
        let updated = self.refine_locked(&mut state);
        if updated > 0 {
            // Republish the read snapshot, then persist — both while
            // still holding the per-video lock so a concurrent round
            // cannot interleave a stale snapshot (lock order:
            // per-video state → stores).
            entry.publish(&state);
            self.persist(video, &state)?;
        }
        Ok(updated)
    }

    /// One refinement round over every dot with enough buffered plays.
    /// Caller holds the video's state lock; caller republishes and
    /// persists if the return is nonzero.
    fn refine_locked(&self, state: &mut VideoState) -> usize {
        let ex_cfg = *self.models.extractor.config();
        let classifier = self.models.extractor.classifier();
        let mut updated = 0;

        for dot in &mut state.dots {
            if dot.converged || dot.pending.len() < self.cfg.min_plays_per_round {
                continue;
            }
            let raw: lightor_types::PlaySet =
                lightor_types::PlaySet::new(std::mem::take(&mut dot.pending));
            let filtered = filter_plays(&raw, dot.current, &ex_cfg);
            let next = if filtered.is_empty() {
                aggregate_type1(dot.current, ex_cfg.move_back)
            } else {
                let feats = play_position_features(&filtered, dot.current);
                match classifier.classify(&feats) {
                    DotType::TypeII => match aggregate_type2(&filtered, dot.current) {
                        Some((s, e)) => {
                            dot.end = Some(e);
                            // Two agreeing Type II boundaries = converged,
                            // even across a misclassified round.
                            if dot
                                .last_type2_start
                                .is_some_and(|p| (p.0 - s.0).abs() < ex_cfg.converge_eps)
                            {
                                dot.converged = true;
                            }
                            dot.last_type2_start = Some(s);
                            s
                        }
                        None => aggregate_type1(dot.current, ex_cfg.move_back),
                    },
                    DotType::TypeI => aggregate_type1(dot.current, ex_cfg.move_back),
                }
            };
            let moved = (next.0 - dot.current.0).abs();
            dot.current = next;
            dot.rounds += 1;
            if moved < ex_cfg.converge_eps && dot.end.is_some() {
                dot.converged = true;
            }
            updated += 1;
        }
        updated
    }

    /// Fold one event batch into a video's refinement state: the unit
    /// of ingestion for both the buffered `POST /sessions` path and the
    /// streamed NDJSON path. Buffers the batch's plays, runs a
    /// refinement round over whatever has accumulated, republishes the
    /// dot snapshot if anything moved, and persists *before* returning
    /// so the caller's acknowledgement is durable.
    ///
    /// With `seq = Some(n)`, the batch carries a per-`(video, client)`
    /// sequence number: a batch at or below the acknowledged watermark
    /// is recognized as an idempotent replay (`replayed: true`,
    /// nothing folded) — a client resuming from its last ack after a
    /// crash introduces no duplicate refinement. `seq = None` batches
    /// are unsequenced and always folded.
    ///
    /// `Ok(None)` when the video is not tracked (no one has fetched
    /// its dots yet); the HTTP edge turns that into a typed 422.
    pub fn refine_batch(
        &self,
        video: VideoId,
        seq: Option<u64>,
        session: &Session,
    ) -> std::io::Result<Option<BatchOutcome>> {
        let Some(entry) = self.videos.read().get(&video).cloned() else {
            return Ok(None);
        };
        let mut state = entry.state.lock();
        if let Some(seq) = seq {
            let client = session.user.0;
            match state.sessions.binary_search_by_key(&client, |s| s.client) {
                Ok(i) if state.sessions[i].seq >= seq => {
                    return Ok(Some(BatchOutcome {
                        replayed: true,
                        ..Default::default()
                    }));
                }
                Ok(i) => state.sessions[i].seq = seq,
                Err(i) => state.sessions.insert(i, SessionSeq { client, seq }),
            }
        }
        let plays_buffered = self.buffer_plays(&mut state, session);
        let dots_refined = self.refine_locked(&mut state);
        if dots_refined > 0 {
            entry.publish(&state);
        }
        // Durable before ack: sequenced batches persist even when no
        // dot crossed the refinement threshold, so the watermark (and
        // the buffered pending plays) survive a SIGKILL. A persist
        // error flips degraded mode and the batch is never
        // acknowledged.
        if dots_refined > 0 || seq.is_some() {
            self.persist(video, &state)?;
        }
        Ok(Some(BatchOutcome {
            plays_buffered,
            dots_refined,
            replayed: false,
        }))
    }

    /// The current red dots of a video that is already tracked in
    /// memory — the warm read that must keep working in degraded mode
    /// (it touches no storage). Reads the RCU-published snapshot and
    /// never takes the per-video state mutex, so a refinement round
    /// folding a large batch cannot stall it. `None` when the video is
    /// not tracked.
    pub fn cached_dots(&self, video: VideoId) -> Option<Vec<RedDot>> {
        let entry = self.videos.read().get(&video).cloned()?;
        Some(entry.snapshot())
    }

    /// Whether the service is in degraded read-only mode: a persistence
    /// I/O error was observed and storage has not recovered since. Warm
    /// reads stay correct (state is in memory); writes would lose data
    /// on a crash, so the HTTP edge refuses them with 503.
    pub fn is_degraded(&self) -> bool {
        self.degraded.load(Ordering::Relaxed)
    }

    /// The fault injector shared by both stores — the chaos/recovery
    /// tests' handle into the live service's storage I/O. No-op unless
    /// faults are armed.
    pub fn fault_injector(&self) -> &FaultInjector {
        &self.fault
    }

    /// Snapshot of a video's refinement state.
    pub fn video_state(&self, video: VideoId) -> Option<VideoState> {
        self.videos
            .read()
            .get(&video)
            .map(|entry| entry.state.lock().clone())
    }

    /// Number of videos with chat stored.
    pub fn stored_videos(&self) -> usize {
        self.stores.lock().chat.video_count()
    }

    /// The service's tuning knobs (the HTTP edge reads `top_k` as the
    /// default for re-score requests without an explicit `k`).
    pub fn config(&self) -> &ServiceConfig {
        &self.cfg
    }

    /// Serving counters: store/caches state for dashboards and tests.
    pub fn stats(&self) -> ServiceStats {
        let (record_hits, record_misses, stored, v1_truncated, kv, dead, reclaimed) = {
            let stores = self.stores.lock();
            let (h, m) = stores.chat.cache_stats();
            (
                h,
                m,
                stores.chat.video_count(),
                stores.chat.v1_truncated_records(),
                stores.kv.stats(),
                stores.chat.dead_bytes(),
                stores.chat.reclaimed_bytes(),
            )
        };
        let (corpus_hits, corpus_misses) = {
            let corpora = self.corpora.lock();
            (corpora.hits(), corpora.misses())
        };
        ServiceStats {
            stored_videos: stored,
            tracked_videos: self.videos.read().len(),
            corpus_cache_hits: corpus_hits,
            corpus_cache_misses: corpus_misses,
            tokenized_hits: self.tok_hits.load(Ordering::Relaxed),
            tokenized_misses: self.tok_misses.load(Ordering::Relaxed),
            tokenized_lazy_upgrades: self.tok_upgrades.load(Ordering::Relaxed),
            train_boot_ms: self.train_boot_ms.load(Ordering::Relaxed),
            record_cache_hits: record_hits,
            record_cache_misses: record_misses,
            v1_truncated_records: v1_truncated,
            kv_wal_bytes: kv.wal_bytes,
            kv_wal_appends: kv.wal_appends,
            kv_shard_rewrites: kv.shard_rewrites,
            chat_dead_bytes: dead,
            chat_reclaimed_bytes: reclaimed,
            degraded: self.is_degraded(),
        }
    }

    /// Maintenance hook: compact the chat log (reclaiming bytes orphaned
    /// by re-crawls) and force the KV store's pending WAL into shard
    /// snapshots. Safe to call any time; returns the chat compaction
    /// outcome.
    pub fn compact_storage(&self) -> std::io::Result<crate::store::CompactStats> {
        let mut stores = self.stores.lock();
        let stats = stores.chat.compact()?;
        stores.kv.snapshot()?;
        // Storage just proved it can write and sync again: leave
        // degraded mode (entered when a persist hit an I/O error).
        self.degraded.store(false, Ordering::Relaxed);
        Ok(stats)
    }

    /// Drop every cached corpus (benchmark/test hook for measuring cold
    /// re-tokenization; hit/miss counters are kept).
    pub fn clear_corpus_cache(&self) {
        self.corpora.lock().clear();
    }

    /// Freeze writes to `videos` for `ttl` — the migration cutover
    /// window. While frozen, the HTTP edge refuses session uploads for
    /// those videos with `503 Retry-After` so the final WAL-tail delta
    /// the exporter ships is complete. The TTL structurally bounds the
    /// window: a crashed or stalled migration driver cannot leave a
    /// video frozen forever.
    pub fn freeze_videos(&self, videos: &[VideoId], ttl: Duration) {
        let now = Instant::now();
        let deadline = now + ttl;
        let mut frozen = self.frozen.lock();
        // Sweep expired deadlines while we hold the lock anyway:
        // `frozen_for` only reaps the video it looks up, so a
        // supervisor freezing different subsets on every delta tick
        // would otherwise grow the map without bound.
        frozen.retain(|_, d| *d > now);
        for &v in videos {
            frozen.insert(v, deadline);
        }
    }

    /// Videos currently frozen (expired deadlines swept first).
    pub fn frozen_count(&self) -> usize {
        let now = Instant::now();
        let mut frozen = self.frozen.lock();
        frozen.retain(|_, d| *d > now);
        frozen.len()
    }

    /// Remaining freeze time on `video`, or `None` when it is not
    /// frozen. Expired freezes are reaped on lookup.
    pub fn frozen_for(&self, video: VideoId) -> Option<Duration> {
        let mut frozen = self.frozen.lock();
        let deadline = *frozen.get(&video)?;
        let now = Instant::now();
        if now >= deadline {
            frozen.remove(&video);
            return None;
        }
        Some(deadline - now)
    }

    /// Lift every active freeze — the handoff completed (or was
    /// abandoned) before the TTLs ran out.
    pub fn unfreeze_all(&self) {
        self.frozen.lock().clear();
    }

    /// Export a consistent migration bundle: per-video refinement state
    /// newer than `req.since_seq` plus (on full exports, `since_seq ==
    /// 0`) the raw chat records, CRC-framed. `req.freeze_ms > 0` arms
    /// the write freeze on the exported videos first, so the returned
    /// bundle is the final word on their state for the freeze window —
    /// the cutover protocol is: bulk export (no freeze) → import →
    /// freeze + delta export (`since_seq` = bulk's `as_of_seq`) →
    /// import delta → swap ring → unfreeze.
    pub fn export_bundle(&self, req: &ExportRequest) -> std::io::Result<BundleDto> {
        let mut requested: Vec<VideoId> = req.videos.iter().copied().map(VideoId).collect();
        requested.sort_unstable_by_key(|v| v.0);
        requested.dedup();
        if req.freeze_ms == 0 {
            // Freeze-less exports (a replication delta loop hits this
            // path every tick) still sweep expired freeze deadlines,
            // so earlier frozen cutovers don't linger in the map.
            // Freezing exports sweep inside `freeze_videos`.
            let now = Instant::now();
            self.frozen.lock().retain(|_, d| *d > now);
        } else {
            let targets: Vec<VideoId> = if requested.is_empty() {
                self.videos.read().keys().copied().collect()
            } else {
                requested.clone()
            };
            self.freeze_videos(&targets, Duration::from_millis(req.freeze_ms));
        }
        let stores = self.stores.lock();
        let ids = if requested.is_empty() {
            Self::all_video_ids(&stores.chat, &stores.kv)
        } else {
            requested
        };
        let changed: HashMap<String, serde_json::Value> = stores
            .kv
            .export_since("video:", req.since_seq)
            .into_iter()
            .collect();
        let mut entries = Vec::new();
        for v in ids {
            let state = changed.get(&format!("video:{}", v.0)).cloned();
            let (chat_hex, tokenized_hex) = if req.since_seq == 0 {
                (
                    stores.chat.export_record(v)?.map(|b| wire::hex_encode(&b)),
                    stores
                        .chat
                        .export_tokenized(v)?
                        .map(|b| wire::hex_encode(&b)),
                )
            } else {
                (None, None)
            };
            if state.is_some() || chat_hex.is_some() {
                entries.push(BundleEntryDto {
                    video: v.0,
                    state,
                    chat_hex,
                    tokenized_hex,
                });
            }
        }
        let crc32 = wire::bundle_crc(&entries);
        Ok(BundleDto {
            format_version: 2,
            as_of_seq: stores.kv.current_seq(),
            entries,
            crc32,
        })
    }

    /// Apply a migration bundle: verify its CRC, then append chat
    /// records (and their tokenized v3 companions, when the bundle
    /// carries them), persist refinement states, and publish them to
    /// the in-memory map so reads serve the migrated videos
    /// immediately. Idempotent — byte-identical chat and tokenized
    /// records already stored are skipped (re-imports don't orphan log
    /// bytes) and state re-puts are plain overwrites.
    pub fn import_bundle(&self, bundle: &BundleDto) -> std::io::Result<ImportResponse> {
        use std::io::{Error, ErrorKind};
        if bundle.format_version != 2 {
            return Err(Error::new(
                ErrorKind::InvalidData,
                format!(
                    "unsupported bundle format_version {} (this build speaks 2)",
                    bundle.format_version
                ),
            ));
        }
        if wire::bundle_crc(&bundle.entries) != bundle.crc32 {
            return Err(Error::new(
                ErrorKind::InvalidData,
                "bundle CRC mismatch — refusing to apply corrupted entries",
            ));
        }
        let mut states_applied = 0;
        let mut chats_applied = 0;
        let mut tokenized_applied = 0;
        let mut restored: Vec<(VideoId, VideoState)> = Vec::new();
        {
            let mut stores = self.stores.lock();
            for entry in &bundle.entries {
                let video = VideoId(entry.video);
                if let Some(hex) = &entry.chat_hex {
                    let bytes = wire::hex_decode(hex).ok_or_else(|| {
                        Error::new(
                            ErrorKind::InvalidData,
                            format!("bundle chat payload for video {} is not hex", entry.video),
                        )
                    })?;
                    if stores.chat.export_record(video)?.as_deref() != Some(bytes.as_slice()) {
                        stores.chat.import_record(video, bytes)?;
                        chats_applied += 1;
                    }
                }
                // Tokenized companion after the chat record (the store
                // requires the chat to exist first); idempotent at the
                // byte level like chat imports.
                if let Some(hex) = &entry.tokenized_hex {
                    let bytes = wire::hex_decode(hex).ok_or_else(|| {
                        Error::new(
                            ErrorKind::InvalidData,
                            format!(
                                "bundle tokenized payload for video {} is not hex",
                                entry.video
                            ),
                        )
                    })?;
                    if stores.chat.export_tokenized(video)?.as_deref() != Some(bytes.as_slice()) {
                        stores.chat.import_tokenized(video, bytes)?;
                        tokenized_applied += 1;
                    }
                }
                if let Some(state) = &entry.state {
                    let parsed: VideoState = serde_json::from_value_ref(state).map_err(|e| {
                        Error::new(
                            ErrorKind::InvalidData,
                            format!("bundle state for video {}: {e:?}", entry.video),
                        )
                    })?;
                    stores.kv.put(&format!("video:{}", entry.video), state)?;
                    states_applied += 1;
                    restored.push((video, parsed));
                }
            }
        }
        // Publish after the stores lock is released (lock order is
        // videos map → stores; never the reverse).
        if !restored.is_empty() {
            let mut map = self.videos.write();
            for (video, state) in restored {
                map.insert(video, VideoEntry::new(state));
            }
        }
        Ok(ImportResponse {
            videos: bundle.entries.len(),
            states_applied,
            chats_applied,
            tokenized_applied,
        })
    }

    /// Rebuild a full migration bundle straight from a (possibly dead)
    /// service's data directory — the crash-replacement source when the
    /// owning process is gone. Opening the stores replays the KV WAL
    /// tail and drops any torn chat-log tail, so the bundle reflects
    /// exactly the acknowledged state at the crash: "last snapshot +
    /// WAL tail" with no live process required.
    pub fn bundle_from_dir(dir: &Path) -> std::io::Result<BundleDto> {
        let chat = ChatStore::open(dir.join("chat"))?;
        let kv = KvStore::open(dir.join("state"))?;
        let mut entries = Vec::new();
        for v in Self::all_video_ids(&chat, &kv) {
            let state = kv.get::<serde_json::Value>(&format!("video:{}", v.0));
            let chat_hex = chat.export_record(v)?.map(|b| wire::hex_encode(&b));
            let tokenized_hex = chat.export_tokenized(v)?.map(|b| wire::hex_encode(&b));
            if state.is_some() || chat_hex.is_some() {
                entries.push(BundleEntryDto {
                    video: v.0,
                    state,
                    chat_hex,
                    tokenized_hex,
                });
            }
        }
        let crc32 = wire::bundle_crc(&entries);
        Ok(BundleDto {
            format_version: 2,
            as_of_seq: kv.current_seq(),
            entries,
            crc32,
        })
    }

    /// Union of videos with stored chat and videos with persisted
    /// refinement state, sorted by id.
    fn all_video_ids(chat: &ChatStore, kv: &KvStore) -> Vec<VideoId> {
        let mut ids = chat.videos();
        for key in kv.keys_with_prefix("video:") {
            if let Some(id) = key
                .strip_prefix("video:")
                .and_then(|s| s.parse::<u64>().ok())
            {
                ids.push(VideoId(id));
            }
        }
        ids.sort_unstable_by_key(|v| v.0);
        ids.dedup();
        ids
    }

    fn persist(&self, video: VideoId, state: &VideoState) -> std::io::Result<()> {
        let result = self
            .stores
            .lock()
            .kv
            .put(&format!("video:{}", video.0), state);
        if result.is_err() {
            // Refinement state could not be made durable: flip into
            // read-only mode so the HTTP edge stops acknowledging
            // writes it cannot keep. The in-memory state stays valid
            // for warm reads.
            self.degraded.store(true, Ordering::Relaxed);
        }
        result
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use lightor::{
        ExtractorConfig, FeatureSet, HighlightExtractor, HighlightInitializer, InitializerConfig,
        PlayPositionFeatures, TrainingVideo, TypeClassifier,
    };
    use lightor_chatsim::dota2_dataset;
    use lightor_crowdsim::Campaign;
    use lightor_types::GameKind;
    use std::path::PathBuf;

    struct TempDir(PathBuf);
    impl TempDir {
        fn new(tag: &str) -> Self {
            let p = std::env::temp_dir().join(format!(
                "lightor-service-{tag}-{}-{}",
                std::process::id(),
                std::time::SystemTime::now()
                    .duration_since(std::time::UNIX_EPOCH)
                    .unwrap()
                    .as_nanos()
            ));
            std::fs::create_dir_all(&p).unwrap();
            TempDir(p)
        }
    }
    impl Drop for TempDir {
        fn drop(&mut self) {
            let _ = std::fs::remove_dir_all(&self.0);
        }
    }

    fn models() -> ModelBundle {
        let data = dota2_dataset(2, 91);
        let views: Vec<TrainingVideo> = data
            .videos
            .iter()
            .map(|v| TrainingVideo {
                chat: &v.video.chat,
                duration: v.video.meta.duration,
                highlights: &v.video.highlights,
                label_ranges: &v.response_ranges,
            })
            .collect();
        let initializer =
            HighlightInitializer::train(&views, FeatureSet::Full, InitializerConfig::default());
        let mut examples = Vec::new();
        for i in 0..30 {
            let j = (i % 7) as f64;
            examples.push((
                PlayPositionFeatures {
                    after: 5.0 + j,
                    before: 0.0,
                    across: 1.0 + j / 2.0,
                },
                DotType::TypeII,
            ));
            examples.push((
                PlayPositionFeatures {
                    after: 1.0,
                    before: 3.0 + j,
                    across: 2.0,
                },
                DotType::TypeI,
            ));
        }
        let extractor =
            HighlightExtractor::new(TypeClassifier::train(&examples), ExtractorConfig::default());
        ModelBundle {
            initializer,
            extractor,
            provenance: "service-test".into(),
        }
    }

    fn service(dir: &Path) -> LightorService {
        let platform = SimPlatform::top_channels(GameKind::Dota2, 2, 2, 92);
        LightorService::open(dir, models(), platform, ServiceConfig::default()).unwrap()
    }

    #[test]
    fn open_video_crawls_and_initializes() {
        let dir = TempDir::new("open");
        let svc = service(&dir.0);
        let vid = {
            let p = SimPlatform::top_channels(GameKind::Dota2, 2, 2, 92);
            p.recent_videos(p.channels()[0].id)[0]
        };
        let dots = svc.open_video(vid).unwrap().unwrap();
        assert!(!dots.is_empty());
        assert_eq!(svc.stored_videos(), 1);
        // Second open returns the same dots without recrawl.
        let again = svc.open_video(vid).unwrap().unwrap();
        assert_eq!(dots.len(), again.len());
        assert_eq!(svc.stored_videos(), 1);
        // Unknown video.
        assert!(svc.open_video(VideoId(999_999)).unwrap().is_none());
    }

    #[test]
    fn interactions_refine_dots() {
        let dir = TempDir::new("refine");
        let svc = service(&dir.0);
        let platform = SimPlatform::top_channels(GameKind::Dota2, 2, 2, 92);
        let vid = platform.recent_videos(platform.channels()[0].id)[0];
        let truth = platform.ground_truth(vid).unwrap().clone();

        let dots = svc.open_video(vid).unwrap().unwrap();
        let mut campaign = Campaign::new(150, 93);
        // Three rounds of viewers + refinement.
        for _ in 0..3 {
            for dot in &dots {
                let result = campaign.run_task(&truth.video, dot.at, 12);
                for session in &result.sessions {
                    svc.log_session(vid, session);
                }
            }
            svc.refine_video(vid).unwrap();
        }
        let state = svc.video_state(vid).unwrap();
        assert!(state.dots.iter().any(|d| d.rounds > 0));
        assert!(
            state.dots.iter().any(|d| d.end.is_some()),
            "no dot extracted an end boundary"
        );
    }

    #[test]
    fn state_persists_across_restart() {
        let dir = TempDir::new("restart");
        let vid;
        {
            let svc = service(&dir.0);
            let p = SimPlatform::top_channels(GameKind::Dota2, 2, 2, 92);
            vid = p.recent_videos(p.channels()[0].id)[0];
            svc.open_video(vid).unwrap().unwrap();
        }
        // Reopen: the dot state must come back from the KV store.
        let svc2 = service(&dir.0);
        let state = svc2.video_state(vid).expect("state survived restart");
        assert!(!state.dots.is_empty());
    }

    #[test]
    fn concurrent_session_logging_is_safe() {
        let dir = TempDir::new("concurrent");
        let svc = service(&dir.0);
        let platform = SimPlatform::top_channels(GameKind::Dota2, 2, 2, 92);
        let vid = platform.recent_videos(platform.channels()[0].id)[0];
        let truth = platform.ground_truth(vid).unwrap().clone();
        let dots = svc.open_video(vid).unwrap().unwrap();

        let mut campaign = Campaign::new(64, 94);
        let sessions: Vec<_> = (0..4)
            .flat_map(|_| campaign.run_task(&truth.video, dots[0].at, 16).sessions)
            .collect();

        std::thread::scope(|scope| {
            for chunk in sessions.chunks(16) {
                let svc = &svc;
                scope.spawn(move || {
                    for s in chunk {
                        svc.log_session(vid, s);
                    }
                });
            }
        });

        // All buffered plays are attributable to dots; refinement runs.
        let updated = svc.refine_video(vid).unwrap();
        assert!(updated >= 1, "no dot had enough plays after 64 sessions");
    }

    #[test]
    fn warm_rescore_hits_corpus_cache() {
        let dir = TempDir::new("rescore");
        let svc = service(&dir.0);
        let platform = SimPlatform::top_channels(GameKind::Dota2, 2, 2, 92);
        let vid = platform.recent_videos(platform.channels()[0].id)[0];

        let dots = svc.open_video(vid).unwrap().unwrap();
        let before = svc.stats();
        // Rescoring with the service's own k must reproduce the initial
        // placement — and must not tokenize again.
        let rescored = svc
            .rescore_video(vid, ServiceConfig::default().top_k)
            .unwrap()
            .unwrap();
        assert_eq!(rescored, dots);
        let after = svc.stats();
        assert_eq!(after.corpus_cache_hits, before.corpus_cache_hits + 1);
        assert_eq!(after.corpus_cache_misses, before.corpus_cache_misses);

        // Cold rescore (cache dropped): same answer, one more miss.
        svc.clear_corpus_cache();
        let cold = svc
            .rescore_video(vid, ServiceConfig::default().top_k)
            .unwrap()
            .unwrap();
        assert_eq!(cold, dots);
        assert_eq!(
            svc.stats().corpus_cache_misses,
            after.corpus_cache_misses + 1
        );
        // Unknown video.
        assert!(svc.rescore_video(VideoId(999_999), 5).unwrap().is_none());
    }

    #[test]
    fn concurrent_open_different_videos() {
        // Sharded locks: opens and refinement on distinct videos must be
        // safe (and not serialize through one service-wide mutex).
        let dir = TempDir::new("shards");
        let svc = service(&dir.0);
        let platform = SimPlatform::top_channels(GameKind::Dota2, 2, 2, 92);
        let vids: Vec<VideoId> = platform
            .channels()
            .iter()
            .flat_map(|c| platform.recent_videos(c.id).to_vec())
            .collect();
        assert!(vids.len() >= 4);

        std::thread::scope(|scope| {
            for &vid in &vids {
                let svc = &svc;
                scope.spawn(move || {
                    let dots = svc.open_video(vid).unwrap().unwrap();
                    assert!(!dots.is_empty());
                    // Racing double-open must agree with itself.
                    let again = svc.open_video(vid).unwrap().unwrap();
                    assert_eq!(dots, again);
                });
            }
        });
        let stats = svc.stats();
        assert_eq!(stats.tracked_videos, vids.len());
        assert_eq!(stats.stored_videos, vids.len());
    }

    #[test]
    fn freeze_expires_by_ttl_and_lifts_on_unfreeze() {
        let dir = TempDir::new("freeze");
        let svc = service(&dir.0);
        let vid = VideoId(42);
        assert!(svc.frozen_for(vid).is_none());

        svc.freeze_videos(&[vid], std::time::Duration::from_millis(40));
        let remaining = svc.frozen_for(vid).expect("freeze is armed");
        assert!(remaining <= std::time::Duration::from_millis(40));
        std::thread::sleep(std::time::Duration::from_millis(60));
        assert!(svc.frozen_for(vid).is_none(), "TTL bounds the freeze");

        svc.freeze_videos(&[vid], std::time::Duration::from_secs(60));
        assert!(svc.frozen_for(vid).is_some());
        svc.unfreeze_all();
        assert!(svc.frozen_for(vid).is_none());
    }

    #[test]
    fn freeze_map_is_swept_by_repeated_freezes_and_exports() {
        let dir = TempDir::new("freeze-sweep");
        let svc = service(&dir.0);

        // A supervisor freezing a different subset on every cutover
        // must not accumulate expired deadlines: each `freeze_videos`
        // sweeps what already lapsed.
        svc.freeze_videos(
            &[VideoId(1), VideoId(2), VideoId(3)],
            std::time::Duration::from_millis(30),
        );
        assert_eq!(svc.frozen_count(), 3);
        std::thread::sleep(std::time::Duration::from_millis(50));
        svc.freeze_videos(&[VideoId(4)], std::time::Duration::from_secs(60));
        assert_eq!(
            svc.frozen_count(),
            1,
            "expired freezes swept on the next freeze, not retained"
        );

        // A freeze-less export (the delta-loop path) sweeps too.
        svc.freeze_videos(&[VideoId(5)], std::time::Duration::from_millis(30));
        svc.unfreeze_all();
        svc.freeze_videos(&[VideoId(6)], std::time::Duration::from_millis(30));
        std::thread::sleep(std::time::Duration::from_millis(50));
        svc.export_bundle(&crate::wire::ExportRequest {
            videos: vec![],
            since_seq: 0,
            freeze_ms: 0,
        })
        .unwrap();
        assert_eq!(svc.frozen.lock().len(), 0, "export swept the lapsed freeze");
    }

    #[test]
    fn export_beyond_watermark_returns_a_well_formed_empty_delta() {
        let dir = TempDir::new("exp-edge-seq");
        let svc = service(&dir.0);
        let platform = SimPlatform::top_channels(GameKind::Dota2, 2, 2, 92);
        let vid = platform.recent_videos(platform.channels()[0].id)[0];
        svc.open_video(vid).unwrap().unwrap();

        let full = svc
            .export_bundle(&crate::wire::ExportRequest {
                videos: vec![],
                since_seq: 0,
                freeze_ms: 0,
            })
            .unwrap();
        assert!(!full.entries.is_empty());

        // `since_seq` at the watermark: nothing changed since — the
        // supervisor's steady-state delta tick. Must be empty, not a
        // full re-export.
        let at = svc
            .export_bundle(&crate::wire::ExportRequest {
                videos: vec![],
                since_seq: full.as_of_seq,
                freeze_ms: 0,
            })
            .unwrap();
        assert!(at.entries.is_empty(), "no writes since the watermark");
        assert_eq!(at.as_of_seq, full.as_of_seq, "watermark still reported");

        // `since_seq` beyond the watermark (e.g. the primary was
        // restored from an older snapshot): still a well-formed empty
        // bundle, not an error.
        let beyond = svc
            .export_bundle(&crate::wire::ExportRequest {
                videos: vec![],
                since_seq: full.as_of_seq + 1_000_000,
                freeze_ms: 0,
            })
            .unwrap();
        assert!(beyond.entries.is_empty());
        assert_eq!(beyond.format_version, 2);
        assert_eq!(beyond.as_of_seq, full.as_of_seq);
        assert_eq!(beyond.crc32, crate::wire::bundle_crc(&[]));

        // The empty delta is importable — a delta loop ships whatever
        // it exported without inspecting it first.
        let dst_dir = TempDir::new("exp-edge-dst");
        let dst = service(&dst_dir.0);
        let applied = dst.import_bundle(&beyond).unwrap();
        assert_eq!(applied.videos, 0);
        assert_eq!(applied.states_applied, 0);
    }

    #[test]
    fn export_of_unknown_videos_returns_a_well_formed_empty_bundle() {
        let dir = TempDir::new("exp-edge-vids");
        let svc = service(&dir.0);
        let platform = SimPlatform::top_channels(GameKind::Dota2, 2, 2, 92);
        let vid = platform.recent_videos(platform.channels()[0].id)[0];
        svc.open_video(vid).unwrap().unwrap();

        // Unknown ids: nothing to ship, full export or delta alike.
        for since in [0, 10_000] {
            let bundle = svc
                .export_bundle(&crate::wire::ExportRequest {
                    videos: vec![999_991, 999_992],
                    since_seq: since,
                    freeze_ms: 0,
                })
                .unwrap();
            assert!(bundle.entries.is_empty(), "since_seq={since}");
            assert_eq!(bundle.format_version, 2);
            assert_eq!(bundle.crc32, crate::wire::bundle_crc(&[]));
            assert!(bundle.as_of_seq > 0, "watermark reflects real state");
        }

        // An empty video list on a service with no tracked videos at
        // all (fresh data dir) is the supervisor bootstrapping against
        // an idle primary — empty bundle, zero watermark.
        let idle_dir = TempDir::new("exp-edge-idle");
        let idle = service(&idle_dir.0);
        let bundle = idle
            .export_bundle(&crate::wire::ExportRequest {
                videos: vec![],
                since_seq: 0,
                freeze_ms: 0,
            })
            .unwrap();
        assert!(bundle.entries.is_empty());
        assert_eq!(bundle.as_of_seq, 0);
    }

    #[test]
    fn export_import_migrates_a_video_with_its_refined_state() {
        let src_dir = TempDir::new("exp-src");
        let dst_dir = TempDir::new("exp-dst");
        let src = service(&src_dir.0);
        let dst = service(&dst_dir.0);
        let platform = SimPlatform::top_channels(GameKind::Dota2, 2, 2, 92);
        let vid = platform.recent_videos(platform.channels()[0].id)[0];
        let truth = platform.ground_truth(vid).unwrap().clone();

        // Refine on the source so the bundle carries non-initial state.
        let dots = src.open_video(vid).unwrap().unwrap();
        let mut campaign = Campaign::new(60, 95);
        for dot in &dots {
            let result = campaign.run_task(&truth.video, dot.at, 12);
            for session in &result.sessions {
                src.log_session(vid, session);
            }
        }
        src.refine_video(vid).unwrap();
        let refined = src.cached_dots(vid).unwrap();

        // Bulk copy: full bundle (chat + state), no freeze.
        let bulk = src
            .export_bundle(&crate::wire::ExportRequest {
                videos: vec![vid.0],
                since_seq: 0,
                freeze_ms: 0,
            })
            .unwrap();
        assert_eq!(bulk.entries.len(), 1);
        assert!(bulk.entries[0].state.is_some());
        assert!(bulk.entries[0].chat_hex.is_some());
        let applied = dst.import_bundle(&bulk).unwrap();
        assert_eq!(applied.states_applied, 1);
        assert_eq!(applied.chats_applied, 1);
        assert_eq!(dst.cached_dots(vid).unwrap(), refined);
        assert_eq!(dst.stored_videos(), 1);

        // More refinement lands on the source after the bulk copy …
        for dot in &refined {
            let result = campaign.run_task(&truth.video, dot.at, 12);
            for session in &result.sessions {
                src.log_session(vid, session);
            }
        }
        src.refine_video(vid).unwrap();

        // … and the frozen delta ships only the state that changed.
        let delta = src
            .export_bundle(&crate::wire::ExportRequest {
                videos: vec![vid.0],
                since_seq: bulk.as_of_seq,
                freeze_ms: 500,
            })
            .unwrap();
        assert!(src.frozen_for(vid).is_some(), "delta export armed freeze");
        assert_eq!(delta.entries.len(), 1);
        assert!(delta.entries[0].state.is_some());
        assert!(
            delta.entries[0].chat_hex.is_none(),
            "chat is immutable post-crawl; deltas ship state only"
        );
        dst.import_bundle(&delta).unwrap();
        assert_eq!(dst.cached_dots(vid).unwrap(), src.cached_dots(vid).unwrap());
        src.unfreeze_all();

        // Re-import is idempotent: no new chat bytes appended.
        let again = dst.import_bundle(&bulk).unwrap();
        assert_eq!(again.chats_applied, 0);
    }

    #[test]
    fn import_refuses_corrupted_bundles() {
        let src_dir = TempDir::new("crc-src");
        let dst_dir = TempDir::new("crc-dst");
        let src = service(&src_dir.0);
        let dst = service(&dst_dir.0);
        let p = SimPlatform::top_channels(GameKind::Dota2, 2, 2, 92);
        let vid = p.recent_videos(p.channels()[0].id)[0];
        src.open_video(vid).unwrap().unwrap();

        let mut bundle = src
            .export_bundle(&crate::wire::ExportRequest {
                videos: vec![],
                since_seq: 0,
                freeze_ms: 0,
            })
            .unwrap();
        bundle.entries[0].video ^= 1;
        let err = dst.import_bundle(&bundle).unwrap_err();
        assert_eq!(err.kind(), std::io::ErrorKind::InvalidData);
        assert_eq!(dst.stored_videos(), 0, "nothing applied from a bad bundle");

        bundle.entries[0].video ^= 1;
        bundle.format_version = 99;
        let err = dst.import_bundle(&bundle).unwrap_err();
        assert_eq!(err.kind(), std::io::ErrorKind::InvalidData);
    }

    #[test]
    fn bundle_from_dir_restores_a_dead_services_state() {
        let dead_dir = TempDir::new("dead");
        let fresh_dir = TempDir::new("fresh");
        let vid;
        let refined;
        {
            let svc = service(&dead_dir.0);
            let platform = SimPlatform::top_channels(GameKind::Dota2, 2, 2, 92);
            vid = platform.recent_videos(platform.channels()[0].id)[0];
            let truth = platform.ground_truth(vid).unwrap().clone();
            let dots = svc.open_video(vid).unwrap().unwrap();
            let mut campaign = Campaign::new(60, 96);
            for dot in &dots {
                let result = campaign.run_task(&truth.video, dot.at, 12);
                for session in &result.sessions {
                    svc.log_session(vid, session);
                }
            }
            svc.refine_video(vid).unwrap();
            refined = svc.cached_dots(vid).unwrap();
            // Dropped here: the "dead" process. Its directory is all
            // that survives.
        }
        let bundle = LightorService::bundle_from_dir(&dead_dir.0).unwrap();
        assert!(!bundle.entries.is_empty());
        let fresh = service(&fresh_dir.0);
        let applied = fresh.import_bundle(&bundle).unwrap();
        assert_eq!(applied.states_applied, 1);
        assert_eq!(applied.chats_applied, 1);
        assert_eq!(
            fresh.cached_dots(vid).unwrap(),
            refined,
            "refined dots survive the crash-restore"
        );
    }

    #[test]
    fn dot_reads_bypass_the_state_mutex() {
        // The RCU contract: `cached_dots` reads the published snapshot
        // and must complete even while another thread holds the
        // per-video state mutex (e.g. a refinement round folding a
        // large batch).
        let dir = TempDir::new("rcu");
        let svc = service(&dir.0);
        let p = SimPlatform::top_channels(GameKind::Dota2, 2, 2, 92);
        let vid = p.recent_videos(p.channels()[0].id)[0];
        let dots = svc.open_video(vid).unwrap().unwrap();

        let entry = svc.videos.read().get(&vid).cloned().unwrap();
        let (tx, rx) = std::sync::mpsc::channel();
        let result = std::thread::scope(|scope| {
            let guard = entry.state.lock(); // a writer mid-fold
            let svc_ref = &svc;
            scope.spawn(move || {
                let _ = tx.send(svc_ref.cached_dots(vid));
            });
            let read = rx.recv_timeout(Duration::from_secs(5));
            // Drop the writer before asserting so a regression fails
            // the test instead of deadlocking the scope join.
            drop(guard);
            read
        });
        let read = result.expect("dot read completed while the state mutex was held");
        assert_eq!(read.unwrap(), dots);
    }

    #[test]
    fn refine_batch_is_idempotent_and_matches_the_buffered_path() {
        let dir_a = TempDir::new("batch-a");
        let dir_b = TempDir::new("batch-b");
        let a = service(&dir_a.0); // sequenced, batch-at-a-time
        let b = service(&dir_b.0); // unsequenced (the buffered path)
        let platform = SimPlatform::top_channels(GameKind::Dota2, 2, 2, 92);
        let vid = platform.recent_videos(platform.channels()[0].id)[0];
        let truth = platform.ground_truth(vid).unwrap().clone();
        let dots = a.open_video(vid).unwrap().unwrap();
        b.open_video(vid).unwrap().unwrap();

        let mut campaign = Campaign::new(80, 97);
        let sessions: Vec<Session> = dots
            .iter()
            .flat_map(|dot| campaign.run_task(&truth.video, dot.at, 12).sessions)
            .collect();

        let mut acked = Vec::new();
        for (i, session) in sessions.iter().enumerate() {
            let seq = (i + 1) as u64;
            let oa = a.refine_batch(vid, Some(seq), session).unwrap().unwrap();
            let ob = b.refine_batch(vid, None, session).unwrap().unwrap();
            assert_eq!(oa, ob, "batch {i}: sequenced and unsequenced agree");
            assert!(!oa.replayed);
            acked.push((seq, session));
        }
        // Streamed and buffered ingestion produce bit-identical dot
        // state (watermarks differ by design — compare the dots).
        let sa = a.video_state(vid).unwrap();
        let sb = b.video_state(vid).unwrap();
        assert_eq!(
            serde_json::to_string(&sa.dots).unwrap(),
            serde_json::to_string(&sb.dots).unwrap(),
            "both paths refine to bit-identical dot state"
        );

        // Full replay (a client resuming from seq 0 after losing its
        // ack log): every batch is recognized, nothing folds twice.
        let before = serde_json::to_string(&a.video_state(vid).unwrap()).unwrap();
        for (seq, session) in acked {
            let o = a.refine_batch(vid, Some(seq), session).unwrap().unwrap();
            assert!(o.replayed, "seq {seq} recognized as a replay");
            assert_eq!(o.plays_buffered, 0);
            assert_eq!(o.dots_refined, 0);
        }
        let after = serde_json::to_string(&a.video_state(vid).unwrap()).unwrap();
        assert_eq!(before, after, "replays changed nothing");

        // Untracked video: typed None, not a panic or silent drop.
        assert!(a
            .refine_batch(vid, Some(1), &sessions[0])
            .unwrap()
            .is_some());
        assert!(a
            .refine_batch(VideoId(999_999), Some(1), &sessions[0])
            .unwrap()
            .is_none());
    }

    #[test]
    fn pending_plays_and_watermarks_survive_restart() {
        use lightor_types::{Interaction, UserId};
        let dir = TempDir::new("batch-restart");
        let vid;
        let dot_at;
        {
            let svc = service(&dir.0);
            let p = SimPlatform::top_channels(GameKind::Dota2, 2, 2, 92);
            vid = p.recent_videos(p.channels()[0].id)[0];
            let dots = svc.open_video(vid).unwrap().unwrap();
            dot_at = dots[0].at;
            // One small sequenced batch: too few plays to trigger a
            // refinement round, but acknowledged — so both the buffered
            // plays and the watermark must be durable before the ack.
            let session = Session::new(
                UserId(7),
                vec![
                    Interaction::Play {
                        video_ts: Sec(dot_at.0 - 1.0),
                    },
                    Interaction::Pause {
                        video_ts: Sec(dot_at.0 + 5.0),
                    },
                ],
            );
            let o = svc.refine_batch(vid, Some(1), &session).unwrap().unwrap();
            assert_eq!(o.plays_buffered, 1);
            assert_eq!(o.dots_refined, 0, "below min_plays_per_round");
            // Dropped here: the SIGKILL stand-in.
        }
        let svc = service(&dir.0);
        let state = svc.video_state(vid).unwrap();
        assert_eq!(
            state.dots.iter().map(|d| d.pending.len()).sum::<usize>(),
            1,
            "acknowledged-but-unrefined plays survive the crash"
        );
        assert_eq!(
            state.sessions,
            vec![SessionSeq { client: 7, seq: 1 }],
            "the ack watermark survives the crash"
        );
        // Replaying the acknowledged batch after restart is a no-op.
        let session = Session::new(
            UserId(7),
            vec![Interaction::Play {
                video_ts: Sec(dot_at.0 - 1.0),
            }],
        );
        let o = svc.refine_batch(vid, Some(1), &session).unwrap().unwrap();
        assert!(o.replayed);
        let state = svc.video_state(vid).unwrap();
        assert_eq!(
            state.dots.iter().map(|d| d.pending.len()).sum::<usize>(),
            1,
            "replay buffered nothing"
        );
    }
}
