//! A small bounded LRU cache with hit/miss accounting.
//!
//! Shared by the serving path's two read-through caches: decoded
//! [`ChatLogView`](lightor_types::ChatLogView) records in the
//! [`ChatStore`](crate::store::ChatStore) and per-video
//! `Arc<TokenizedChat>` corpora in the
//! [`LightorService`](crate::service::LightorService).
//!
//! Design: a `HashMap` keyed lookup plus a monotone access tick per
//! entry; eviction scans for the minimum tick. That makes `get`/`insert`
//! O(1) and eviction O(capacity) — the right trade for the small
//! capacities (tens to a few hundred entries) these caches run at,
//! where a linked-list LRU's pointer chasing would cost more than the
//! scan. Values are handed out by clone, so cache them as `Arc`s (or
//! other cheaply clonable handles) when the payload is large.

use std::collections::HashMap;
use std::hash::Hash;

/// Bounded least-recently-used cache.
#[derive(Debug)]
pub struct LruCache<K, V> {
    cap: usize,
    tick: u64,
    map: HashMap<K, (u64, V)>,
    hits: u64,
    misses: u64,
}

impl<K: Eq + Hash + Clone, V: Clone> LruCache<K, V> {
    /// Create a cache holding at most `cap` entries (`cap` ≥ 1).
    pub fn new(cap: usize) -> Self {
        assert!(cap >= 1, "LruCache capacity must be at least 1");
        LruCache {
            cap,
            tick: 0,
            map: HashMap::with_capacity(cap),
            hits: 0,
            misses: 0,
        }
    }

    /// Look a key up, refreshing its recency on hit.
    pub fn get(&mut self, key: &K) -> Option<V> {
        self.tick += 1;
        match self.map.get_mut(key) {
            Some((t, v)) => {
                *t = self.tick;
                self.hits += 1;
                Some(v.clone())
            }
            None => {
                self.misses += 1;
                None
            }
        }
    }

    /// Insert (or replace) an entry, evicting the least recently used
    /// entry when full.
    pub fn insert(&mut self, key: K, value: V) {
        self.tick += 1;
        if self.map.len() >= self.cap && !self.map.contains_key(&key) {
            if let Some(oldest) = self
                .map
                .iter()
                .min_by_key(|(_, (t, _))| *t)
                .map(|(k, _)| k.clone())
            {
                self.map.remove(&oldest);
            }
        }
        self.map.insert(key, (self.tick, value));
    }

    /// Drop one entry, returning its value if present.
    pub fn remove(&mut self, key: &K) -> Option<V> {
        self.map.remove(key).map(|(_, v)| v)
    }

    /// Drop every entry (counters are kept).
    pub fn clear(&mut self) {
        self.map.clear();
    }

    /// Number of cached entries.
    pub fn len(&self) -> usize {
        self.map.len()
    }

    /// True when nothing is cached.
    pub fn is_empty(&self) -> bool {
        self.map.is_empty()
    }

    /// Lifetime `get` hits.
    pub fn hits(&self) -> u64 {
        self.hits
    }

    /// Lifetime `get` misses.
    pub fn misses(&self) -> u64 {
        self.misses
    }
}

impl<K, V> LruCache<K, V> {
    /// The configured capacity.
    pub fn capacity(&self) -> usize {
        self.cap
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn hit_miss_accounting() {
        let mut c: LruCache<u32, String> = LruCache::new(2);
        assert_eq!(c.get(&1), None);
        c.insert(1, "a".into());
        assert_eq!(c.get(&1).as_deref(), Some("a"));
        assert_eq!((c.hits(), c.misses()), (1, 1));
    }

    #[test]
    fn evicts_least_recently_used() {
        let mut c: LruCache<u32, u32> = LruCache::new(2);
        c.insert(1, 10);
        c.insert(2, 20);
        c.get(&1); // 2 is now the LRU entry
        c.insert(3, 30);
        assert_eq!(c.get(&2), None, "LRU entry must be evicted");
        assert_eq!(c.get(&1), Some(10));
        assert_eq!(c.get(&3), Some(30));
        assert_eq!(c.len(), 2);
    }

    #[test]
    fn replace_does_not_evict() {
        let mut c: LruCache<u32, u32> = LruCache::new(2);
        c.insert(1, 10);
        c.insert(2, 20);
        c.insert(1, 11); // replacement, not growth
        assert_eq!(c.len(), 2);
        assert_eq!(c.get(&1), Some(11));
        assert_eq!(c.get(&2), Some(20));
    }

    #[test]
    fn remove_and_clear() {
        let mut c: LruCache<u32, u32> = LruCache::new(4);
        c.insert(1, 10);
        assert_eq!(c.remove(&1), Some(10));
        assert_eq!(c.remove(&1), None);
        c.insert(2, 20);
        c.clear();
        assert!(c.is_empty());
        assert_eq!(c.capacity(), 4);
    }
}
