//! Deployment substrate for LIGHTOR (paper Section VI).
//!
//! The paper ships LIGHTOR either as a browser extension backed by a web
//! service, or embedded in a streaming platform. Both need the same
//! server-side machinery, which this crate provides:
//!
//! * [`store`] — an embedded storage layer: a CRC-checked append-only
//!   segment log with compaction ([`store::SegmentLog`]), a per-video
//!   chat store with crash recovery by segment scan and dead-byte
//!   reclaim ([`store::ChatStore`]), and a prefix-sharded,
//!   WAL-fronted KV store for models and red dots
//!   ([`store::KvStore`]);
//! * [`crawler`] — the offline/online chat crawler that pulls replays
//!   from the (simulated) platform into the chat store;
//! * [`service`] — the web-service core: serve red dots on video open
//!   (crawling and initializing on miss), log viewer interactions, and
//!   run extraction rounds that refine dot positions continuously.

#![warn(missing_docs)]

pub mod cache;
pub mod crawler;
pub mod service;
pub mod store;
pub mod wire;

pub use cache::LruCache;
pub use crawler::{CrawlStats, Crawler};
pub use service::{LightorService, ServiceConfig, ServiceStats, VideoState};
pub use store::{
    ChatStore, CompactStats, Fault, FaultInjector, FaultKind, KvConfig, KvStats, KvStore,
    SegmentLog,
};
