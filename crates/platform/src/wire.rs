//! Wire DTOs for the browser-extension front end (paper Figure 5).
//!
//! The extension speaks JSON to the back end: it sends the video id on
//! page load, receives the red dots to render, and streams interaction
//! events back. These types pin that contract.

use lightor_types::{Interaction, RedDot, Sec, Session, UserId, VideoId};
use serde::{Deserialize, Serialize};

/// `GET /video/{id}/dots` response.
#[derive(Clone, Debug, PartialEq, Serialize, Deserialize)]
pub struct DotsResponse {
    /// The requested video.
    pub video: u64,
    /// Dots to draw on the progress bar.
    pub dots: Vec<DotDto>,
}

/// One red dot on the progress bar.
#[derive(Clone, Copy, Debug, PartialEq, Serialize, Deserialize)]
pub struct DotDto {
    /// Position in seconds.
    pub at_seconds: f64,
    /// Model confidence (0..1), usable for dot styling.
    pub score: f64,
}

impl From<RedDot> for DotDto {
    fn from(d: RedDot) -> Self {
        DotDto {
            at_seconds: d.at.0,
            score: d.score,
        }
    }
}

impl From<DotDto> for RedDot {
    fn from(d: DotDto) -> Self {
        RedDot::new(d.at_seconds, d.score)
    }
}

/// One player event as the extension reports it.
#[derive(Clone, Copy, Debug, PartialEq, Serialize, Deserialize)]
#[serde(tag = "type", rename_all = "snake_case")]
pub enum EventDto {
    /// Playback started.
    Play {
        /// Position in seconds.
        at: f64,
    },
    /// Playback paused.
    Pause {
        /// Position in seconds.
        at: f64,
    },
    /// Progress bar dragged.
    Seek {
        /// Position before the drag.
        from: f64,
        /// Position after the drag.
        to: f64,
    },
    /// Player closed.
    Leave {
        /// Position in seconds.
        at: f64,
    },
}

impl From<Interaction> for EventDto {
    fn from(i: Interaction) -> Self {
        match i {
            Interaction::Play { video_ts } => EventDto::Play { at: video_ts.0 },
            Interaction::Pause { video_ts } => EventDto::Pause { at: video_ts.0 },
            Interaction::SeekForward { from, to } | Interaction::SeekBackward { from, to } => {
                EventDto::Seek {
                    from: from.0,
                    to: to.0,
                }
            }
            Interaction::Leave { video_ts } => EventDto::Leave { at: video_ts.0 },
        }
    }
}

impl From<EventDto> for Interaction {
    fn from(e: EventDto) -> Self {
        match e {
            EventDto::Play { at } => Interaction::Play { video_ts: Sec(at) },
            EventDto::Pause { at } => Interaction::Pause { video_ts: Sec(at) },
            EventDto::Seek { from, to } => {
                if to >= from {
                    Interaction::SeekForward {
                        from: Sec(from),
                        to: Sec(to),
                    }
                } else {
                    Interaction::SeekBackward {
                        from: Sec(from),
                        to: Sec(to),
                    }
                }
            }
            EventDto::Leave { at } => Interaction::Leave { video_ts: Sec(at) },
        }
    }
}

/// `GET /stats` response: serving counters for dashboards.
#[derive(Clone, Copy, Debug, PartialEq, Serialize, Deserialize)]
pub struct StatsResponse {
    /// Videos with chat stored.
    pub stored_videos: usize,
    /// Videos with live refinement state.
    pub tracked_videos: usize,
    /// Warm scores served without re-tokenizing.
    pub corpus_cache_hits: u64,
    /// Tokenization runs (cold scores).
    pub corpus_cache_misses: u64,
    /// Chat records served from the decoded-record cache.
    pub record_cache_hits: u64,
    /// Chat records decoded from the log.
    pub record_cache_misses: u64,
    /// Legacy records that lost text to the v1 format's u16 ceiling.
    pub v1_truncated_records: usize,
    /// Bytes pending in the KV write-ahead log (durable, not yet
    /// folded into shard snapshots).
    pub kv_wal_bytes: u64,
    /// KV WAL appends since open.
    pub kv_wal_appends: u64,
    /// KV shard snapshot rewrites since open.
    pub kv_shard_rewrites: u64,
    /// Chat-log bytes orphaned by re-crawls, not yet compacted.
    pub chat_dead_bytes: u64,
    /// Chat-log bytes reclaimed by compactions since open.
    pub chat_reclaimed_bytes: u64,
}

impl From<crate::service::ServiceStats> for StatsResponse {
    fn from(s: crate::service::ServiceStats) -> Self {
        StatsResponse {
            stored_videos: s.stored_videos,
            tracked_videos: s.tracked_videos,
            corpus_cache_hits: s.corpus_cache_hits,
            corpus_cache_misses: s.corpus_cache_misses,
            record_cache_hits: s.record_cache_hits,
            record_cache_misses: s.record_cache_misses,
            v1_truncated_records: s.v1_truncated_records,
            kv_wal_bytes: s.kv_wal_bytes,
            kv_wal_appends: s.kv_wal_appends,
            kv_shard_rewrites: s.kv_shard_rewrites,
            chat_dead_bytes: s.chat_dead_bytes,
            chat_reclaimed_bytes: s.chat_reclaimed_bytes,
        }
    }
}

/// `POST /video/{id}/session` request body.
#[derive(Clone, Debug, PartialEq, Serialize, Deserialize)]
pub struct SessionUpload {
    /// The video being watched.
    pub video: u64,
    /// Anonymous client id.
    pub client: u64,
    /// Ordered player events.
    pub events: Vec<EventDto>,
}

impl SessionUpload {
    /// Convert into the domain session type.
    pub fn into_session(self) -> (VideoId, Session) {
        (
            VideoId(self.video),
            Session::new(
                UserId(self.client),
                self.events.into_iter().map(Interaction::from).collect(),
            ),
        )
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn dot_round_trip() {
        let dot = RedDot::new(123.5, 0.87);
        let dto: DotDto = dot.into();
        let back: RedDot = dto.into();
        assert_eq!(dot, back);
        let js = serde_json::to_string(&dto).unwrap();
        assert!(js.contains("123.5"));
    }

    #[test]
    fn seek_direction_is_inferred() {
        let fwd: Interaction = EventDto::Seek {
            from: 10.0,
            to: 50.0,
        }
        .into();
        assert!(matches!(fwd, Interaction::SeekForward { .. }));
        let back: Interaction = EventDto::Seek {
            from: 50.0,
            to: 10.0,
        }
        .into();
        assert!(matches!(back, Interaction::SeekBackward { .. }));
    }

    #[test]
    fn session_upload_converts() {
        let upload = SessionUpload {
            video: 7,
            client: 99,
            events: vec![
                EventDto::Play { at: 100.0 },
                EventDto::Seek {
                    from: 110.0,
                    to: 90.0,
                },
                EventDto::Pause { at: 120.0 },
            ],
        };
        let js = serde_json::to_string(&upload).unwrap();
        let parsed: SessionUpload = serde_json::from_str(&js).unwrap();
        let (vid, session) = parsed.into_session();
        assert_eq!(vid, VideoId(7));
        assert_eq!(session.user, UserId(99));
        assert_eq!(session.plays().len(), 2);
    }

    #[test]
    fn stats_response_round_trips() {
        let stats = crate::service::ServiceStats {
            stored_videos: 3,
            tracked_videos: 2,
            corpus_cache_hits: 10,
            corpus_cache_misses: 3,
            record_cache_hits: 7,
            record_cache_misses: 4,
            v1_truncated_records: 1,
            kv_wal_bytes: 512,
            kv_wal_appends: 21,
            kv_shard_rewrites: 2,
            chat_dead_bytes: 4096,
            chat_reclaimed_bytes: 8192,
        };
        let dto: StatsResponse = stats.into();
        let js = serde_json::to_string(&dto).unwrap();
        let back: StatsResponse = serde_json::from_str(&js).unwrap();
        assert_eq!(dto, back);
        assert_eq!(back.stored_videos, 3);
        assert_eq!(back.corpus_cache_hits, 10);
        assert_eq!(back.kv_wal_appends, 21);
        assert_eq!(back.kv_shard_rewrites, 2);
        assert_eq!(back.chat_reclaimed_bytes, 8192);
    }

    #[test]
    fn event_json_is_tagged() {
        let js = serde_json::to_string(&EventDto::Play { at: 1.0 }).unwrap();
        assert!(js.contains("\"type\":\"play\""), "{js}");
    }
}
