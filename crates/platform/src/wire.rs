//! Wire DTOs for the browser-extension front end (paper Figure 5).
//!
//! The extension speaks JSON to the back end: it sends the video id on
//! page load, receives the red dots to render, and streams interaction
//! events back. These types pin that contract.

use lightor_types::{Interaction, RedDot, Sec, Session, UserId, VideoId};
use serde::{Deserialize, Serialize};

/// `GET /video/{id}/dots` response.
#[derive(Clone, Debug, PartialEq, Serialize, Deserialize)]
pub struct DotsResponse {
    /// The requested video.
    pub video: u64,
    /// Dots to draw on the progress bar.
    pub dots: Vec<DotDto>,
}

/// One red dot on the progress bar.
#[derive(Clone, Copy, Debug, PartialEq, Serialize, Deserialize)]
pub struct DotDto {
    /// Position in seconds.
    pub at_seconds: f64,
    /// Model confidence (0..1), usable for dot styling.
    pub score: f64,
}

impl From<RedDot> for DotDto {
    fn from(d: RedDot) -> Self {
        DotDto {
            at_seconds: d.at.0,
            score: d.score,
        }
    }
}

impl From<DotDto> for RedDot {
    fn from(d: DotDto) -> Self {
        RedDot::new(d.at_seconds, d.score)
    }
}

/// One player event as the extension reports it.
#[derive(Clone, Copy, Debug, PartialEq, Serialize, Deserialize)]
#[serde(tag = "type", rename_all = "snake_case")]
pub enum EventDto {
    /// Playback started.
    Play {
        /// Position in seconds.
        at: f64,
    },
    /// Playback paused.
    Pause {
        /// Position in seconds.
        at: f64,
    },
    /// Progress bar dragged.
    Seek {
        /// Position before the drag.
        from: f64,
        /// Position after the drag.
        to: f64,
    },
    /// Player closed.
    Leave {
        /// Position in seconds.
        at: f64,
    },
}

impl From<Interaction> for EventDto {
    fn from(i: Interaction) -> Self {
        match i {
            Interaction::Play { video_ts } => EventDto::Play { at: video_ts.0 },
            Interaction::Pause { video_ts } => EventDto::Pause { at: video_ts.0 },
            Interaction::SeekForward { from, to } | Interaction::SeekBackward { from, to } => {
                EventDto::Seek {
                    from: from.0,
                    to: to.0,
                }
            }
            Interaction::Leave { video_ts } => EventDto::Leave { at: video_ts.0 },
        }
    }
}

impl From<EventDto> for Interaction {
    fn from(e: EventDto) -> Self {
        match e {
            EventDto::Play { at } => Interaction::Play { video_ts: Sec(at) },
            EventDto::Pause { at } => Interaction::Pause { video_ts: Sec(at) },
            EventDto::Seek { from, to } => {
                if to >= from {
                    Interaction::SeekForward {
                        from: Sec(from),
                        to: Sec(to),
                    }
                } else {
                    Interaction::SeekBackward {
                        from: Sec(from),
                        to: Sec(to),
                    }
                }
            }
            EventDto::Leave { at } => Interaction::Leave { video_ts: Sec(at) },
        }
    }
}

/// Per-route HTTP serving counters, as `GET /stats` reports them.
///
/// One entry per route the front end exposes (plus a catch-all
/// `"other"` bucket for unroutable requests). Latency fields are
/// cumulative so dashboards can derive rates and means from any two
/// snapshots.
#[derive(Clone, Debug, PartialEq, Serialize, Deserialize)]
pub struct RouteStatsDto {
    /// Route template, e.g. `"GET /video/{id}/dots"`.
    pub route: String,
    /// Requests routed here since the server started.
    pub requests: u64,
    /// Responses with a 4xx/5xx status.
    pub errors: u64,
    /// Total handler latency, microseconds (cumulative).
    pub latency_total_us: u64,
    /// Largest single-request handler latency, microseconds.
    pub latency_max_us: u64,
}

/// `GET /stats` response: serving counters for dashboards.
#[derive(Clone, Debug, PartialEq, Serialize, Deserialize)]
pub struct StatsResponse {
    /// Videos with chat stored.
    pub stored_videos: usize,
    /// Videos with live refinement state.
    pub tracked_videos: usize,
    /// Warm scores served without touching storage.
    pub corpus_cache_hits: u64,
    /// Corpus loads that went to storage (v3 decode or re-tokenize).
    pub corpus_cache_misses: u64,
    /// Corpus loads decoded from persisted v3 tokenized records — zero
    /// re-tokenization.
    pub tokenized_hits: u64,
    /// Corpus loads that re-tokenized raw chat (no usable v3 record).
    pub tokenized_misses: u64,
    /// Cold tokenizations lazily persisted as v3 records (v2→v3
    /// upgrades).
    pub tokenized_lazy_upgrades: u64,
    /// Boot-time training wall time, milliseconds (0 when unreported).
    pub train_boot_ms: u64,
    /// Chat records served from the decoded-record cache.
    pub record_cache_hits: u64,
    /// Chat records decoded from the log.
    pub record_cache_misses: u64,
    /// Legacy records that lost text to the v1 format's u16 ceiling.
    pub v1_truncated_records: usize,
    /// Bytes pending in the KV write-ahead log (durable, not yet
    /// folded into shard snapshots).
    pub kv_wal_bytes: u64,
    /// KV WAL appends since open.
    pub kv_wal_appends: u64,
    /// KV shard snapshot rewrites since open.
    pub kv_shard_rewrites: u64,
    /// Chat-log bytes orphaned by re-crawls, not yet compacted.
    pub chat_dead_bytes: u64,
    /// Chat-log bytes reclaimed by compactions since open.
    pub chat_reclaimed_bytes: u64,
    /// Whether the backend is in degraded read-only mode (storage I/O
    /// failed; warm reads keep working, writes are refused with 503).
    pub degraded: bool,
    /// Listener `accept()` failures since the server started (resource
    /// exhaustion, interrupted syscalls) — nonzero means the accept
    /// loop has been shedding connections.
    pub accept_errors: u64,
    /// NDJSON lines accepted on `POST /sessions/stream` since start.
    /// (`serde(default)` on the stream counters keeps pre-streaming
    /// stats JSON parseable.)
    #[serde(default)]
    pub stream_lines_accepted: u64,
    /// NDJSON lines rejected with a typed per-line error.
    #[serde(default)]
    pub stream_lines_rejected: u64,
    /// Event batches folded into refinement state via the incremental
    /// path (buffered `POST /sessions` uploads count here too — both
    /// paths share `refine_batch`).
    #[serde(default)]
    pub stream_batches_folded: u64,
    /// Batches recognized as idempotent replays (sequence at or below
    /// the per-session watermark) and skipped.
    #[serde(default)]
    pub stream_batches_replayed: u64,
    /// Streams currently open (headers received, body still arriving).
    #[serde(default)]
    pub stream_open: u64,
    /// Per-route HTTP counters, when an HTTP front end is serving.
    /// Empty for embedded (in-process) deployments.
    pub http: Vec<RouteStatsDto>,
}

impl From<crate::service::ServiceStats> for StatsResponse {
    fn from(s: crate::service::ServiceStats) -> Self {
        StatsResponse {
            stored_videos: s.stored_videos,
            tracked_videos: s.tracked_videos,
            corpus_cache_hits: s.corpus_cache_hits,
            corpus_cache_misses: s.corpus_cache_misses,
            tokenized_hits: s.tokenized_hits,
            tokenized_misses: s.tokenized_misses,
            tokenized_lazy_upgrades: s.tokenized_lazy_upgrades,
            train_boot_ms: s.train_boot_ms,
            record_cache_hits: s.record_cache_hits,
            record_cache_misses: s.record_cache_misses,
            v1_truncated_records: s.v1_truncated_records,
            kv_wal_bytes: s.kv_wal_bytes,
            kv_wal_appends: s.kv_wal_appends,
            kv_shard_rewrites: s.kv_shard_rewrites,
            chat_dead_bytes: s.chat_dead_bytes,
            chat_reclaimed_bytes: s.chat_reclaimed_bytes,
            degraded: s.degraded,
            accept_errors: 0,
            stream_lines_accepted: 0,
            stream_lines_rejected: 0,
            stream_batches_folded: 0,
            stream_batches_replayed: 0,
            stream_open: 0,
            http: Vec::new(),
        }
    }
}

/// One backend shard as the router's `GET /stats` reports it.
#[derive(Clone, Debug, PartialEq, Serialize, Deserialize)]
pub struct BackendStatsDto {
    /// The backend's address, e.g. `"127.0.0.1:7879"`.
    pub addr: String,
    /// Health-state name: `"healthy"`, `"suspect"`, `"down"`, or
    /// `"recovering"`.
    pub health: String,
    /// Requests the router proxied to this backend.
    pub proxied: u64,
    /// Proxied requests that failed at the transport level (after
    /// retries, where eligible).
    pub proxy_errors: u64,
    /// Retry attempts spent on this backend (beyond first tries).
    pub retries: u64,
    /// Active health probes that failed.
    pub probe_failures: u64,
    /// Times the circuit breaker tripped this backend into `down`.
    pub breaker_trips: u64,
    /// True when the aggregation sweep could not reach this backend
    /// (down, or the sweep request failed) — the aggregate is partial,
    /// not failed, and this marker says which slice is missing.
    pub unreachable: bool,
    /// The backend's own `/stats`, when it answered the aggregation
    /// sweep; `None` for a shard that is down.
    pub stats: Option<StatsResponse>,
}

/// Router `GET /stats` response: per-shard health and counters plus
/// each live backend's own stats.
#[derive(Clone, Debug, PartialEq, Serialize, Deserialize)]
pub struct RouterStatsResponse {
    /// Requests the router accepted (all routes).
    pub requests: u64,
    /// Responses the router answered 5xx (shard down, retries
    /// exhausted, backend transport failure).
    pub errors_5xx: u64,
    /// Listener `accept()` failures at the router itself.
    pub accept_errors: u64,
    /// Version of the ring currently routing (bumps on every applied
    /// `POST /admin/ring`).
    pub ring_version: u64,
    /// One entry per configured backend, in ring order.
    pub backends: Vec<BackendStatsDto>,
}

/// One backend's health as the router's `GET /healthz` reports it.
#[derive(Clone, Debug, PartialEq, Serialize, Deserialize)]
pub struct BackendHealthDto {
    /// The backend's address.
    pub addr: String,
    /// Health-state name: `"healthy"`, `"suspect"`, `"down"`, or
    /// `"recovering"`.
    pub health: String,
    /// Milliseconds since this backend last changed health state —
    /// how long it has been in `health`. A supervisor comparing
    /// replication lag against shard health needs to know whether
    /// "down" means "down for 80 ms" (probe blip) or "down for 20 s"
    /// (promote now). `serde(default)` keeps pre-supervisor health
    /// JSON parseable.
    #[serde(default)]
    pub last_transition_ms: u64,
}

/// Router `GET /healthz` response: overall status plus per-shard
/// health. The router itself is `"ok"` as long as it can answer;
/// `degraded` flags that at least one shard is not healthy.
#[derive(Clone, Debug, PartialEq, Serialize, Deserialize)]
pub struct RouterHealthzResponse {
    /// `"ok"` when every shard is healthy, `"degraded"` otherwise.
    pub status: String,
    /// Version of the ring currently routing (bumps on every applied
    /// `POST /admin/ring`).
    pub ring_version: u64,
    /// Per-shard health, in ring order.
    pub backends: Vec<BackendHealthDto>,
}

/// `POST /video/{id}/rescore` request body (optional: an empty body
/// means "the service's configured k").
#[derive(Clone, Copy, Debug, PartialEq, Serialize, Deserialize)]
pub struct RescoreRequest {
    /// How many red dots to place.
    pub k: usize,
}

/// `POST /admin/compact` response.
#[derive(Clone, Copy, Debug, PartialEq, Serialize, Deserialize)]
pub struct CompactResponse {
    /// Bytes given back to the filesystem.
    pub reclaimed_bytes: u64,
    /// Dead records dropped.
    pub dropped_records: usize,
    /// Live records carried over.
    pub live_records: usize,
}

impl From<crate::store::CompactStats> for CompactResponse {
    fn from(s: crate::store::CompactStats) -> Self {
        CompactResponse {
            reclaimed_bytes: s.reclaimed_bytes,
            dropped_records: s.dropped_records,
            live_records: s.live_records,
        }
    }
}

/// `POST /admin/export` request body: which slice of this backend's
/// state to bundle up for migration.
#[derive(Clone, Debug, PartialEq, Serialize, Deserialize)]
pub struct ExportRequest {
    /// Video ids to export; empty means every video this backend
    /// tracks.
    pub videos: Vec<u64>,
    /// Export only state mutated after this KV watermark (`0` = full
    /// export, including chat records). A delta export against a
    /// nonzero watermark ships refinement-state changes only — chat
    /// records are immutable once crawled, so the bulk copy already
    /// has them.
    pub since_seq: u64,
    /// Freeze writes to the exported videos for up to this many
    /// milliseconds (`0` = no freeze). The freeze is the cutover
    /// window: frozen videos answer writes with `503 Retry-After`
    /// until the TTL expires or the freeze is lifted, bounding how
    /// long a migration can block refinement.
    pub freeze_ms: u64,
}

/// One video's migratable state inside a [`BundleDto`].
#[derive(Clone, Debug, PartialEq, Serialize, Deserialize)]
pub struct BundleEntryDto {
    /// The video this entry belongs to.
    pub video: u64,
    /// The video's refinement state (`video:{id}` KV value), when it
    /// changed since the request's watermark.
    pub state: Option<serde_json::Value>,
    /// The video's raw chat record, hex-encoded (the JSON layer has no
    /// binary transport). `None` on delta exports and for videos whose
    /// chat was never crawled.
    pub chat_hex: Option<String>,
    /// The video's raw v3 tokenized-corpus record, hex-encoded, so the
    /// destination never re-tokenizes migrated chat. `None` on delta
    /// exports and for videos not yet tokenized on the source
    /// (`serde(default)` keeps pre-v2 bundle JSON parseable).
    #[serde(default)]
    pub tokenized_hex: Option<String>,
}

/// A consistent migration bundle: the `POST /admin/export` response,
/// shippable verbatim as the `POST /admin/import` request body.
#[derive(Clone, Debug, PartialEq, Serialize, Deserialize)]
pub struct BundleDto {
    /// Bundle layout version (currently 2; version 2 added the
    /// per-entry tokenized section and folded it into the CRC).
    pub format_version: u32,
    /// The source's KV op watermark at export time — pass as
    /// `since_seq` on the next delta export to ship only what changed
    /// after this bundle.
    pub as_of_seq: u64,
    /// Per-video state, sorted by video id.
    pub entries: Vec<BundleEntryDto>,
    /// CRC-32 over the canonical serialization of `entries` (see
    /// [`bundle_crc`]); verified on import before anything is applied.
    pub crc32: u32,
}

/// `POST /admin/import` response.
#[derive(Clone, Copy, Debug, PartialEq, Serialize, Deserialize)]
pub struct ImportResponse {
    /// Entries in the bundle.
    pub videos: usize,
    /// Refinement states applied to the KV store.
    pub states_applied: usize,
    /// Chat records appended to the chat store.
    pub chats_applied: usize,
    /// Tokenized (v3) companion records appended (byte-identical
    /// re-imports are skipped, like chat records).
    #[serde(default)]
    pub tokenized_applied: usize,
}

/// `POST /admin/ring` request body: the new backend set. The router
/// rebuilds the ring from these addresses, carrying over the health
/// state and connection pools of addresses it already knows.
#[derive(Clone, Debug, PartialEq, Serialize, Deserialize)]
pub struct RingUpdateRequest {
    /// Backend addresses (`host:port`) of the new ring, in ring order.
    pub backends: Vec<String>,
}

/// `POST /admin/ring` response.
#[derive(Clone, Debug, PartialEq, Serialize, Deserialize)]
pub struct RingUpdateResponse {
    /// The new ring's version (monotonic; the boot ring is version 1).
    pub version: u64,
    /// The addresses now routing.
    pub backends: Vec<String>,
}

/// One replicated range as the supervisor's `GET /stats` reports it:
/// a primary, its warm standby, and how far behind the standby is.
#[derive(Clone, Debug, PartialEq, Serialize, Deserialize)]
pub struct ReplicaStatusDto {
    /// The primary's address (`host:port`) — the ring member being
    /// shadowed.
    pub primary: String,
    /// The warm standby's address — receives bulk + delta bundles and
    /// is promoted into the ring if the primary dies.
    pub standby: String,
    /// Lifecycle phase: `"bootstrapping"` (no bulk copy yet),
    /// `"replicating"` (delta loop running), `"promoting"` (primary
    /// down, promotion in flight), `"promoted"` (standby swapped into
    /// the ring), or `"retired"` (primary left the ring without a
    /// promotion — a manual ring update superseded the supervisor).
    pub phase: String,
    /// The primary's KV watermark as of the last bundle the standby
    /// imported (`as_of_seq` of that bundle). 0 until bootstrapped.
    pub synced_seq: u64,
    /// KV ops the standby was behind at the last observation: the
    /// primary's watermark minus `synced_seq`. 0 while fully caught
    /// up, and frozen at its last value once the primary is gone.
    pub lag_ops: u64,
    /// Milliseconds since the standby last imported a bundle. Grows
    /// between delta ticks; resets on every successful sync.
    pub lag_ms: u64,
    /// Delta bundles shipped since the supervisor started.
    pub deltas_shipped: u64,
    /// Bulk (full) syncs since the supervisor started — 1 after a
    /// clean bootstrap, more if the standby was re-seeded.
    pub bulk_syncs: u64,
}

/// One completed promotion as the supervisor's `GET /stats` reports
/// it.
#[derive(Clone, Debug, PartialEq, Serialize, Deserialize)]
pub struct PromotionDto {
    /// The dead primary the ring dropped.
    pub from: String,
    /// The standby that took over its range.
    pub to: String,
    /// The ring version the swap produced.
    pub ring_version: u64,
    /// Milliseconds since the promotion completed.
    pub ms_ago: u64,
    /// Where the final pre-swap delta came from: `"live"` (the primary
    /// still answered `/admin/export`), `"data_dir"` (rebuilt from the
    /// dead primary's data directory via WAL-tail replay), or `"none"`
    /// (neither reachable — the standby was promoted at its last
    /// synced watermark).
    pub final_delta_source: String,
}

/// Supervisor `GET /stats` response: the reconciliation loop's
/// counters plus one [`ReplicaStatusDto`] per watched range.
#[derive(Clone, Debug, PartialEq, Serialize, Deserialize)]
pub struct SupervisorStatsResponse {
    /// Reconciliation ticks (observe → plan → act) completed.
    pub ticks: u64,
    /// Actions executed (bulk syncs + deltas + promotions + retires).
    pub actions: u64,
    /// Promotions driven to completion since start.
    pub promotions: u64,
    /// The most recent completed promotion, if any.
    pub last_promotion: Option<PromotionDto>,
    /// Per-range replication status, in configuration order.
    pub ranges: Vec<ReplicaStatusDto>,
}

/// CRC-32 over the canonical serialization of a bundle's entries:
/// per entry, the decimal video id, the state's JSON text (or `-`),
/// the chat hex (or `-`), and the tokenized hex (or `-`), each
/// newline-terminated. Deterministic across processes — the JSON tree
/// preserves map order end to end — so the importer can verify the
/// shipped bytes before applying any of them.
pub fn bundle_crc(entries: &[BundleEntryDto]) -> u32 {
    let mut buf = Vec::new();
    for e in entries {
        buf.extend_from_slice(e.video.to_string().as_bytes());
        buf.push(b'\n');
        match &e.state {
            Some(v) => buf.extend_from_slice(serde_json::value_to_string(v).as_bytes()),
            None => buf.push(b'-'),
        }
        buf.push(b'\n');
        match &e.chat_hex {
            Some(h) => buf.extend_from_slice(h.as_bytes()),
            None => buf.push(b'-'),
        }
        buf.push(b'\n');
        match &e.tokenized_hex {
            Some(h) => buf.extend_from_slice(h.as_bytes()),
            None => buf.push(b'-'),
        }
        buf.push(b'\n');
    }
    crate::store::crc32(&buf)
}

/// Lowercase hex encoding — how bundles carry raw chat-record bytes
/// through JSON (no binary or base64 support in the vendored layer).
pub fn hex_encode(bytes: &[u8]) -> String {
    const HEX: &[u8; 16] = b"0123456789abcdef";
    let mut s = String::with_capacity(bytes.len() * 2);
    for &b in bytes {
        s.push(HEX[usize::from(b >> 4)] as char);
        s.push(HEX[usize::from(b & 0xF)] as char);
    }
    s
}

/// Decode [`hex_encode`] output; `None` on odd length or a non-hex
/// digit (case-insensitive).
pub fn hex_decode(s: &str) -> Option<Vec<u8>> {
    if !s.len().is_multiple_of(2) {
        return None;
    }
    let digits = s.as_bytes();
    let mut out = Vec::with_capacity(s.len() / 2);
    for pair in digits.chunks_exact(2) {
        let hi = (pair[0] as char).to_digit(16)?;
        let lo = (pair[1] as char).to_digit(16)?;
        out.push((hi * 16 + lo) as u8);
    }
    Some(out)
}

/// Why a [`SessionUpload`] was rejected (a 422-style semantic error:
/// the JSON was well-formed, the content is garbage).
///
/// The paper's pipeline filters *abnormal* viewer behaviour
/// statistically (Section V-B), but non-finite or negative timestamps
/// are not behaviour at all — they are client bugs, and letting them
/// into the play buffers would poison every downstream aggregate
/// (`f64` comparisons against NaN are always false, so a single NaN
/// play survives every filter). They are rejected at the wire edge.
#[derive(Clone, Debug, PartialEq)]
pub enum UploadError {
    /// An event carries a NaN or infinite timestamp.
    NonFiniteTimestamp {
        /// Index of the offending event in `events`.
        event: usize,
    },
    /// An event carries a negative timestamp (video time starts at 0).
    NegativeTimestamp {
        /// Index of the offending event in `events`.
        event: usize,
    },
    /// The session has no events — nothing to learn from.
    NoEvents,
    /// The server does not track this video (fetch its dots first).
    ///
    /// Never produced by [`SessionUpload::validate`] (the DTO cannot
    /// know the catalog); the serving layer raises it when the lookup
    /// misses.
    UnknownVideo {
        /// The id the client sent.
        video: u64,
    },
}

impl UploadError {
    /// Stable machine-readable code for error payloads.
    pub fn code(&self) -> &'static str {
        match self {
            UploadError::NonFiniteTimestamp { .. } => "non_finite_timestamp",
            UploadError::NegativeTimestamp { .. } => "negative_timestamp",
            UploadError::NoEvents => "no_events",
            UploadError::UnknownVideo { .. } => "unknown_video",
        }
    }
}

impl std::fmt::Display for UploadError {
    fn fmt(&self, f: &mut std::fmt::Formatter<'_>) -> std::fmt::Result {
        match self {
            UploadError::NonFiniteTimestamp { event } => {
                write!(f, "event {event} has a NaN or infinite timestamp")
            }
            UploadError::NegativeTimestamp { event } => {
                write!(f, "event {event} has a negative timestamp")
            }
            UploadError::NoEvents => write!(f, "session carries no events"),
            UploadError::UnknownVideo { video } => {
                write!(f, "video {video} is not tracked; fetch its dots first")
            }
        }
    }
}

impl std::error::Error for UploadError {}

/// `POST /video/{id}/session` request body.
#[derive(Clone, Debug, PartialEq, Serialize, Deserialize)]
pub struct SessionUpload {
    /// The video being watched.
    pub video: u64,
    /// Anonymous client id.
    pub client: u64,
    /// Ordered player events.
    pub events: Vec<EventDto>,
}

impl SessionUpload {
    /// Check every event timestamp is finite and non-negative.
    ///
    /// Returns the first offending event, in upload order, so clients
    /// get an actionable pointer instead of a blanket rejection.
    pub fn validate(&self) -> Result<(), UploadError> {
        if self.events.is_empty() {
            return Err(UploadError::NoEvents);
        }
        for (event, e) in self.events.iter().enumerate() {
            let ts: &[f64] = match e {
                EventDto::Play { at } | EventDto::Pause { at } | EventDto::Leave { at } => {
                    std::slice::from_ref(at)
                }
                EventDto::Seek { from, to } => &[*from, *to],
            };
            for &t in ts {
                if !t.is_finite() {
                    return Err(UploadError::NonFiniteTimestamp { event });
                }
                if t < 0.0 {
                    return Err(UploadError::NegativeTimestamp { event });
                }
            }
        }
        Ok(())
    }

    /// Validate, then convert into the domain session type.
    ///
    /// This is the ingestion path: garbage timestamps come back as a
    /// typed [`UploadError`] (a 422 at the HTTP edge) instead of
    /// poisoning the play buffers.
    pub fn try_into_session(self) -> Result<(VideoId, Session), UploadError> {
        self.validate()?;
        Ok(self.into_session_unchecked())
    }

    /// Convert into the domain session type without validating.
    ///
    /// Trusted-caller convenience (simulators, tests); network input
    /// must go through [`SessionUpload::try_into_session`].
    pub fn into_session(self) -> (VideoId, Session) {
        self.into_session_unchecked()
    }

    fn into_session_unchecked(self) -> (VideoId, Session) {
        (
            VideoId(self.video),
            Session::new(
                UserId(self.client),
                self.events.into_iter().map(Interaction::from).collect(),
            ),
        )
    }
}

/// One NDJSON line on `POST /sessions/stream`: an event batch for one
/// video from one client, optionally carrying a client-assigned batch
/// sequence for idempotent replay.
#[derive(Clone, Debug, PartialEq, Serialize, Deserialize)]
pub struct StreamBatchDto {
    /// The video being watched.
    pub video: u64,
    /// Anonymous client id (the replay watermark is per
    /// `(video, client)`).
    pub client: u64,
    /// Client-assigned batch sequence, strictly increasing per
    /// `(video, client)` session. A batch at or below the acknowledged
    /// watermark is recognized as a replay and not folded twice.
    /// `None` (or absent) opts out of replay protection.
    #[serde(default)]
    pub seq: Option<u64>,
    /// Ordered player events in this batch.
    pub events: Vec<EventDto>,
}

impl StreamBatchDto {
    /// The batch's events as a buffered-style [`SessionUpload`] — the
    /// two ingestion paths validate and fold identically through this.
    pub fn as_upload(&self) -> SessionUpload {
        SessionUpload {
            video: self.video,
            client: self.client,
            events: self.events.clone(),
        }
    }
}

/// One rejected NDJSON line inside a [`StreamAccepted`] ack.
#[derive(Clone, Debug, PartialEq, Serialize, Deserialize)]
pub struct LineRejectDto {
    /// 1-based line number within the stream.
    pub line: u64,
    /// Stable machine-readable code (`bad_json`, `line_too_long`, the
    /// [`UploadError`] codes, …).
    pub code: String,
    /// Human-readable detail.
    pub message: String,
}

/// `POST /sessions/stream` success ack (200): per-stream totals plus
/// every rejected line. Rejected lines do not fail the stream until
/// the error budget is exhausted.
#[derive(Clone, Debug, PartialEq, Serialize, Deserialize)]
pub struct StreamAccepted {
    /// NDJSON lines accepted and folded (or recognized as replays).
    pub lines_accepted: u64,
    /// Lines rejected with a typed per-line error.
    pub lines_rejected: u64,
    /// Batches folded into refinement state.
    pub batches_folded: u64,
    /// Batches recognized as idempotent replays and skipped.
    pub batches_replayed: u64,
    /// Plays buffered against dots across the stream.
    pub plays_buffered: u64,
    /// Refinement rounds completed across the stream.
    pub dots_refined: u64,
    /// Highest acknowledged batch sequence (0 when unsequenced) — the
    /// client resumes replay from the next sequence after a crash.
    pub last_seq: u64,
    /// The rejected lines, in stream order.
    pub rejected: Vec<LineRejectDto>,
}

/// `POST /sessions/stream` terminal failure (the stream was cut):
/// which line ended it and everything rejected up to that point.
#[derive(Clone, Debug, PartialEq, Serialize, Deserialize)]
pub struct StreamRejected {
    /// Stable machine-readable code (`error_budget_exhausted`, …).
    pub error: String,
    /// 1-based line number the stream died on.
    pub line: u64,
    /// The rejected lines, in stream order.
    pub rejected: Vec<LineRejectDto>,
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn dot_round_trip() {
        let dot = RedDot::new(123.5, 0.87);
        let dto: DotDto = dot.into();
        let back: RedDot = dto.into();
        assert_eq!(dot, back);
        let js = serde_json::to_string(&dto).unwrap();
        assert!(js.contains("123.5"));
    }

    #[test]
    fn seek_direction_is_inferred() {
        let fwd: Interaction = EventDto::Seek {
            from: 10.0,
            to: 50.0,
        }
        .into();
        assert!(matches!(fwd, Interaction::SeekForward { .. }));
        let back: Interaction = EventDto::Seek {
            from: 50.0,
            to: 10.0,
        }
        .into();
        assert!(matches!(back, Interaction::SeekBackward { .. }));
    }

    #[test]
    fn session_upload_converts() {
        let upload = SessionUpload {
            video: 7,
            client: 99,
            events: vec![
                EventDto::Play { at: 100.0 },
                EventDto::Seek {
                    from: 110.0,
                    to: 90.0,
                },
                EventDto::Pause { at: 120.0 },
            ],
        };
        let js = serde_json::to_string(&upload).unwrap();
        let parsed: SessionUpload = serde_json::from_str(&js).unwrap();
        let (vid, session) = parsed.into_session();
        assert_eq!(vid, VideoId(7));
        assert_eq!(session.user, UserId(99));
        assert_eq!(session.plays().len(), 2);
    }

    #[test]
    fn stats_response_round_trips() {
        let stats = crate::service::ServiceStats {
            stored_videos: 3,
            tracked_videos: 2,
            corpus_cache_hits: 10,
            corpus_cache_misses: 3,
            tokenized_hits: 6,
            tokenized_misses: 2,
            tokenized_lazy_upgrades: 2,
            train_boot_ms: 1234,
            record_cache_hits: 7,
            record_cache_misses: 4,
            v1_truncated_records: 1,
            kv_wal_bytes: 512,
            kv_wal_appends: 21,
            kv_shard_rewrites: 2,
            chat_dead_bytes: 4096,
            chat_reclaimed_bytes: 8192,
            degraded: true,
        };
        let dto: StatsResponse = stats.into();
        let js = serde_json::to_string(&dto).unwrap();
        let back: StatsResponse = serde_json::from_str(&js).unwrap();
        assert_eq!(dto, back);
        assert_eq!(back.stored_videos, 3);
        assert_eq!(back.corpus_cache_hits, 10);
        assert_eq!(back.kv_wal_appends, 21);
        assert_eq!(back.kv_shard_rewrites, 2);
        assert_eq!(back.chat_reclaimed_bytes, 8192);
        assert_eq!(back.tokenized_hits, 6);
        assert_eq!(back.tokenized_lazy_upgrades, 2);
        assert_eq!(back.train_boot_ms, 1234);
        assert!(back.degraded);
        assert_eq!(back.accept_errors, 0);
        assert_eq!(back.stream_lines_accepted, 0);

        // Pre-streaming stats JSON (no stream_* fields) must parse
        // with the counters defaulted, not fail.
        let js = js
            .split(",\"stream_lines_accepted\"")
            .next()
            .unwrap()
            .to_string()
            + ",\"http\":[]}";
        let old: StatsResponse = serde_json::from_str(&js).unwrap();
        assert_eq!(old.stream_open, 0);
        assert_eq!(old.stored_videos, 3);
    }

    #[test]
    fn stream_dtos_round_trip() {
        let batch = StreamBatchDto {
            video: 7,
            client: 99,
            seq: Some(3),
            events: vec![EventDto::Play { at: 1.0 }, EventDto::Pause { at: 9.0 }],
        };
        let js = serde_json::to_string(&batch).unwrap();
        let back: StreamBatchDto = serde_json::from_str(&js).unwrap();
        assert_eq!(batch, back);
        assert_eq!(back.as_upload().events.len(), 2);
        // An unsequenced line (no `seq` key at all) parses with None.
        let unseq: StreamBatchDto =
            serde_json::from_str(r#"{"video":7,"client":99,"events":[{"type":"play","at":1.0}]}"#)
                .unwrap();
        assert_eq!(unseq.seq, None);

        let ack = StreamAccepted {
            lines_accepted: 5,
            lines_rejected: 2,
            batches_folded: 4,
            batches_replayed: 1,
            plays_buffered: 40,
            dots_refined: 2,
            last_seq: 5,
            rejected: vec![LineRejectDto {
                line: 3,
                code: "bad_json".into(),
                message: "line 3 is not valid JSON".into(),
            }],
        };
        let back: StreamAccepted =
            serde_json::from_str(&serde_json::to_string(&ack).unwrap()).unwrap();
        assert_eq!(ack, back);

        let cut = StreamRejected {
            error: "error_budget_exhausted".into(),
            line: 19,
            rejected: Vec::new(),
        };
        let back: StreamRejected =
            serde_json::from_str(&serde_json::to_string(&cut).unwrap()).unwrap();
        assert_eq!(cut, back);
    }

    #[test]
    fn router_stats_round_trip() {
        let dto = RouterStatsResponse {
            requests: 100,
            errors_5xx: 3,
            accept_errors: 1,
            ring_version: 2,
            backends: vec![
                BackendStatsDto {
                    addr: "127.0.0.1:7879".into(),
                    health: "healthy".into(),
                    proxied: 60,
                    proxy_errors: 0,
                    retries: 2,
                    probe_failures: 0,
                    breaker_trips: 0,
                    unreachable: false,
                    stats: Some(
                        crate::service::ServiceStats {
                            stored_videos: 1,
                            ..Default::default()
                        }
                        .into(),
                    ),
                },
                BackendStatsDto {
                    addr: "127.0.0.1:7880".into(),
                    health: "down".into(),
                    proxied: 40,
                    proxy_errors: 3,
                    retries: 6,
                    probe_failures: 9,
                    breaker_trips: 1,
                    unreachable: true,
                    stats: None,
                },
            ],
        };
        let js = serde_json::to_string(&dto).unwrap();
        let back: RouterStatsResponse = serde_json::from_str(&js).unwrap();
        assert_eq!(dto, back);
        assert_eq!(back.ring_version, 2);
        assert!(back.backends[0].stats.is_some());
        assert!(!back.backends[0].unreachable);
        assert!(back.backends[1].stats.is_none(), "down shard has no stats");
        assert!(back.backends[1].unreachable, "partial aggregate is marked");
    }

    #[test]
    fn router_healthz_round_trip() {
        let dto = RouterHealthzResponse {
            status: "degraded".into(),
            ring_version: 1,
            backends: vec![
                BackendHealthDto {
                    addr: "127.0.0.1:7879".into(),
                    health: "healthy".into(),
                    last_transition_ms: 12_500,
                },
                BackendHealthDto {
                    addr: "127.0.0.1:7880".into(),
                    health: "suspect".into(),
                    last_transition_ms: 80,
                },
            ],
        };
        let js = serde_json::to_string(&dto).unwrap();
        let back: RouterHealthzResponse = serde_json::from_str(&js).unwrap();
        assert_eq!(dto, back);
        assert!(js.contains("\"suspect\""), "{js}");
        assert!(js.contains("\"last_transition_ms\":80"), "{js}");
        // Pre-supervisor health rows have no transition stamp; the
        // field must default rather than fail the parse.
        let old: BackendHealthDto =
            serde_json::from_str(r#"{"addr":"127.0.0.1:7879","health":"down"}"#).unwrap();
        assert_eq!(old.last_transition_ms, 0);
    }

    #[test]
    fn supervisor_stats_round_trip() {
        let dto = SupervisorStatsResponse {
            ticks: 412,
            actions: 39,
            promotions: 1,
            last_promotion: Some(PromotionDto {
                from: "127.0.0.1:7881".into(),
                to: "127.0.0.1:7891".into(),
                ring_version: 2,
                ms_ago: 1_800,
                final_delta_source: "data_dir".into(),
            }),
            ranges: vec![
                ReplicaStatusDto {
                    primary: "127.0.0.1:7880".into(),
                    standby: "127.0.0.1:7890".into(),
                    phase: "replicating".into(),
                    synced_seq: 941,
                    lag_ops: 3,
                    lag_ms: 120,
                    deltas_shipped: 37,
                    bulk_syncs: 1,
                },
                ReplicaStatusDto {
                    primary: "127.0.0.1:7881".into(),
                    standby: "127.0.0.1:7891".into(),
                    phase: "promoted".into(),
                    synced_seq: 502,
                    lag_ops: 0,
                    lag_ms: 1_900,
                    deltas_shipped: 12,
                    bulk_syncs: 1,
                },
            ],
        };
        let js = serde_json::to_string(&dto).unwrap();
        let back: SupervisorStatsResponse = serde_json::from_str(&js).unwrap();
        assert_eq!(dto, back);
        assert!(js.contains("\"phase\":\"promoted\""), "{js}");
        assert!(js.contains("\"final_delta_source\":\"data_dir\""), "{js}");

        // No promotion yet: the option serializes as null and parses
        // back.
        let quiet = SupervisorStatsResponse {
            ticks: 1,
            actions: 0,
            promotions: 0,
            last_promotion: None,
            ranges: Vec::new(),
        };
        let js = serde_json::to_string(&quiet).unwrap();
        let back: SupervisorStatsResponse = serde_json::from_str(&js).unwrap();
        assert_eq!(quiet, back);
    }

    #[test]
    fn event_json_is_tagged() {
        let js = serde_json::to_string(&EventDto::Play { at: 1.0 }).unwrap();
        assert!(js.contains("\"type\":\"play\""), "{js}");
    }

    fn upload(events: Vec<EventDto>) -> SessionUpload {
        SessionUpload {
            video: 7,
            client: 99,
            events,
        }
    }

    #[test]
    fn bad_payload_matrix_is_rejected_with_typed_errors() {
        // (events, expected code, offending index) — every way a client
        // can hand us garbage timestamps, plus the empty session.
        let cases: Vec<(Vec<EventDto>, &str, Option<usize>)> = vec![
            (vec![], "no_events", None),
            (
                vec![EventDto::Play { at: f64::NAN }],
                "non_finite_timestamp",
                Some(0),
            ),
            (
                vec![
                    EventDto::Play { at: 1.0 },
                    EventDto::Pause { at: f64::INFINITY },
                ],
                "non_finite_timestamp",
                Some(1),
            ),
            (
                vec![EventDto::Leave {
                    at: f64::NEG_INFINITY,
                }],
                "non_finite_timestamp",
                Some(0),
            ),
            (
                vec![
                    EventDto::Play { at: 5.0 },
                    EventDto::Seek {
                        from: 5.0,
                        to: f64::NAN,
                    },
                ],
                "non_finite_timestamp",
                Some(1),
            ),
            (
                vec![EventDto::Play { at: -0.5 }],
                "negative_timestamp",
                Some(0),
            ),
            (
                vec![
                    EventDto::Play { at: 0.0 },
                    EventDto::Seek {
                        from: -3.0,
                        to: 9.0,
                    },
                ],
                "negative_timestamp",
                Some(1),
            ),
            (
                vec![EventDto::Pause { at: -1e9 }],
                "negative_timestamp",
                Some(0),
            ),
        ];
        for (events, code, index) in cases {
            let up = upload(events);
            let err = up.validate().expect_err(code);
            assert_eq!(err.code(), code, "{err}");
            match (&err, index) {
                (UploadError::NonFiniteTimestamp { event }, Some(i))
                | (UploadError::NegativeTimestamp { event }, Some(i)) => {
                    assert_eq!(*event, i, "{err}")
                }
                (UploadError::NoEvents, None) => {}
                other => panic!("unexpected error shape: {other:?}"),
            }
            // try_into_session must agree with validate.
            assert_eq!(up.try_into_session().unwrap_err().code(), code);
        }
    }

    #[test]
    fn good_payload_passes_validation() {
        let up = upload(vec![
            EventDto::Play { at: 0.0 },
            EventDto::Seek {
                from: 10.0,
                to: 700.5,
            },
            EventDto::Pause { at: 725.0 },
            EventDto::Leave { at: 725.0 },
        ]);
        up.validate().unwrap();
        let (vid, session) = up.try_into_session().unwrap();
        assert_eq!(vid, VideoId(7));
        assert_eq!(session.events.len(), 4);
    }

    #[test]
    fn upload_error_display_and_codes_are_stable() {
        let e = UploadError::UnknownVideo { video: 42 };
        assert_eq!(e.code(), "unknown_video");
        assert!(e.to_string().contains("42"));
        assert!(UploadError::NoEvents.to_string().contains("no events"));
    }

    #[test]
    fn hex_round_trips_and_rejects_garbage() {
        let all: Vec<u8> = (0..=255u8).collect();
        let hex = hex_encode(&all);
        assert_eq!(hex.len(), 512);
        assert_eq!(hex_decode(&hex).unwrap(), all);
        assert_eq!(hex_decode(""), Some(Vec::new()));
        assert_eq!(hex_decode(&hex.to_ascii_uppercase()).unwrap(), all);
        assert!(hex_decode("abc").is_none(), "odd length");
        assert!(hex_decode("zz").is_none(), "non-hex digit");
    }

    #[test]
    fn bundle_round_trips_and_crc_detects_tampering() {
        let entries = vec![
            BundleEntryDto {
                video: 7,
                state: Some(serde_json::Value::Map(vec![(
                    "dots".to_owned(),
                    serde_json::Value::Seq(vec![serde_json::Value::F64(12.5)]),
                )])),
                chat_hex: Some(hex_encode(b"raw chat record bytes")),
                tokenized_hex: Some(hex_encode(b"raw v3 record bytes")),
            },
            BundleEntryDto {
                video: 9,
                state: None,
                chat_hex: None,
                tokenized_hex: None,
            },
        ];
        let dto = BundleDto {
            format_version: 2,
            as_of_seq: 42,
            crc32: bundle_crc(&entries),
            entries,
        };
        let js = serde_json::to_string(&dto).unwrap();
        let back: BundleDto = serde_json::from_str(&js).unwrap();
        assert_eq!(dto, back);
        // The CRC survives the wire round trip (the canonical form is
        // process-independent)...
        assert_eq!(bundle_crc(&back.entries), back.crc32);
        // ...and flips when any entry is altered.
        let mut tampered = back.clone();
        tampered.entries[0].video = 8;
        assert_ne!(bundle_crc(&tampered.entries), tampered.crc32);
        let mut tampered = back.clone();
        tampered.entries[0].chat_hex = Some(hex_encode(b"other bytes"));
        assert_ne!(bundle_crc(&tampered.entries), tampered.crc32);
        let mut tampered = back.clone();
        tampered.entries[0].tokenized_hex = None;
        assert_ne!(
            bundle_crc(&tampered.entries),
            tampered.crc32,
            "the tokenized section is covered by the CRC"
        );
    }

    #[test]
    fn export_import_ring_dtos_round_trip() {
        let req = ExportRequest {
            videos: vec![3, 5],
            since_seq: 17,
            freeze_ms: 400,
        };
        let back: ExportRequest =
            serde_json::from_str(&serde_json::to_string(&req).unwrap()).unwrap();
        assert_eq!(req, back);

        let resp = ImportResponse {
            videos: 2,
            states_applied: 2,
            chats_applied: 1,
            tokenized_applied: 1,
        };
        let back: ImportResponse =
            serde_json::from_str(&serde_json::to_string(&resp).unwrap()).unwrap();
        assert_eq!(resp, back);

        let ring = RingUpdateRequest {
            backends: vec!["127.0.0.1:7801".into(), "127.0.0.1:7802".into()],
        };
        let back: RingUpdateRequest =
            serde_json::from_str(&serde_json::to_string(&ring).unwrap()).unwrap();
        assert_eq!(ring, back);

        let resp = RingUpdateResponse {
            version: 2,
            backends: ring.backends.clone(),
        };
        let back: RingUpdateResponse =
            serde_json::from_str(&serde_json::to_string(&resp).unwrap()).unwrap();
        assert_eq!(resp, back);
    }

    #[test]
    fn route_stats_round_trip() {
        let dto = RouteStatsDto {
            route: "GET /video/{id}/dots".into(),
            requests: 12,
            errors: 1,
            latency_total_us: 3400,
            latency_max_us: 900,
        };
        let js = serde_json::to_string(&dto).unwrap();
        let back: RouteStatsDto = serde_json::from_str(&js).unwrap();
        assert_eq!(dto, back);
    }
}
