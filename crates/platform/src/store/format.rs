//! The chat record codec: versioned payload formats for [`super::ChatStore`].
//!
//! Two formats coexist in one log (records are self-describing, so logs
//! written by older builds keep working after an upgrade):
//!
//! **v1 (legacy, row-oriented)** — no header, one framed row per message:
//!
//! ```text
//! [video_id: u64][n: u32] n × ([ts: f64][user: u64][len: u16][utf8 text])
//! ```
//!
//! Decoding allocates one `String` per message, and the `u16` length
//! field silently truncated texts longer than 65 535 bytes at encode
//! time. v1 is *decode-only* in production; [`encode_v1`] is retained
//! for migration tests and as the benchmark baseline. The v1 decode
//! path flags records that contain a maximum-length text as suspected
//! truncation victims so stores can surface the data loss.
//!
//! **v2 (current, columnar)** — a header followed by parallel arrays and
//! one contiguous text blob (all little-endian):
//!
//! ```text
//! [magic: u32 = "LCv2"][version: u16 = 2][flags: u16 = 0]
//! [video_id: u64][n: u32]
//! [ts: f64 × n][user: u64 × n][text_end: u32 × n]
//! [blob_len: u32][utf8 blob]
//! ```
//!
//! `text_end[i]` is the cumulative end offset of message `i`'s text in
//! the blob (u32, so texts up to 4 GiB aggregate — no silent `u16`
//! truncation). A v2 record decodes into a zero-copy
//! [`ChatLogView`] with O(1) allocations: the view `Arc`s the payload
//! buffer and reads the arrays in place.
//!
//! Format detection ([`sniff`] / [`decode`]) tries v2 first — magic,
//! version, and an exact length equation must all hold — then falls
//! back to a strict v1 walk that must consume the payload exactly.
//! A false positive would need a v1 video id whose low bytes equal the
//! magic *and* a byte stream satisfying the v2 length equation, which
//! the strict checks make practically impossible.

use bytes::{Buf, BufMut, BytesMut};
use lightor_types::{ChatLog, ChatLogView, ChatMessage, ColumnarLayout, Sec, UserId, VideoId};
use std::sync::Arc;

/// v2 header magic: `b"LCv2"` read as a little-endian u32.
pub const V2_MAGIC: u32 = u32::from_le_bytes(*b"LCv2");
/// Current record format version.
pub const V2_VERSION: u16 = 2;
/// Byte length of the fixed v2 header (magic + version + flags + video + n).
const V2_HEADER: usize = 4 + 2 + 2 + 8 + 4;

/// Which codec a record was written with.
#[derive(Clone, Copy, Debug, PartialEq, Eq)]
pub enum Format {
    /// Legacy row-oriented records (owned-`String` decode).
    V1,
    /// Columnar zero-copy records.
    V2,
}

/// Cheap per-record metadata extracted without materializing messages.
#[derive(Clone, Copy, Debug, PartialEq, Eq)]
pub struct RecordInfo {
    /// The video the record stores.
    pub video: VideoId,
    /// Codec the record was written with.
    pub format: Format,
    /// v1 only: the record holds a maximum-length (65 535-byte) text,
    /// i.e. it was very likely truncated by the v1 encoder.
    pub truncated: bool,
}

/// Encode a chat replay with the current (v2, columnar) format.
pub fn encode_v2(video: VideoId, chat: &ChatLog) -> Vec<u8> {
    let n = chat.len();
    let blob_len: usize = chat.messages().iter().map(|m| m.text.len()).sum();
    let mut buf = BytesMut::with_capacity(V2_HEADER + 20 * n + 4 + blob_len);
    buf.put_u32_le(V2_MAGIC);
    buf.put_u16_le(V2_VERSION);
    buf.put_u16_le(0); // flags, reserved
    buf.put_u64_le(video.0);
    buf.put_u32_le(n as u32);
    for m in chat.messages() {
        buf.put_f64_le(m.ts.0);
    }
    for m in chat.messages() {
        buf.put_u64_le(m.user.0);
    }
    let mut end = 0u32;
    for m in chat.messages() {
        end += m.text.len() as u32;
        buf.put_u32_le(end);
    }
    buf.put_u32_le(blob_len as u32);
    for m in chat.messages() {
        buf.put_slice(m.text.as_bytes());
    }
    buf.to_vec()
}

/// Encode a zero-copy view with the current (v2, columnar) format.
///
/// The view is already columnar, so this is header + four raw section
/// copies — no per-message walk, no UTF-8 revalidation, no `String`s.
/// This is the crawler's hot path now that generators emit views
/// directly. (Unlike a `to_chat_log()` round trip, invalid UTF-8 bytes
/// are preserved verbatim rather than lossy-replaced.)
pub fn encode_v2_view(video: VideoId, chat: &ChatLogView) -> Vec<u8> {
    let n = chat.len();
    let text = chat.text_section();
    let mut buf = BytesMut::with_capacity(V2_HEADER + 20 * n + 4 + text.len());
    buf.put_u32_le(V2_MAGIC);
    buf.put_u16_le(V2_VERSION);
    buf.put_u16_le(0); // flags, reserved
    buf.put_u64_le(video.0);
    buf.put_u32_le(n as u32);
    buf.put_slice(chat.ts_section());
    buf.put_slice(chat.user_section());
    buf.put_slice(chat.ends_section());
    buf.put_u32_le(text.len() as u32);
    buf.put_slice(text);
    buf.to_vec()
}

/// Encode with the legacy v1 format. Texts longer than 65 535 bytes are
/// truncated (the defect that motivated v2) — kept only so migration
/// tests and benchmarks can fabricate old logs.
pub fn encode_v1(video: VideoId, chat: &ChatLog) -> Vec<u8> {
    let mut buf = BytesMut::new();
    buf.put_u64_le(video.0);
    buf.put_u32_le(chat.len() as u32);
    for m in chat.messages() {
        buf.put_f64_le(m.ts.0);
        buf.put_u64_le(m.user.0);
        let text = m.text.as_bytes();
        let len = text.len().min(u16::MAX as usize);
        buf.put_u16_le(len as u16);
        buf.put_slice(&text[..len]);
    }
    buf.to_vec()
}

/// Compute the v2 layout of `payload` if (and only if) it is a valid v2
/// record. Pure offset arithmetic — no per-message work.
fn v2_layout(payload: &[u8]) -> Option<(VideoId, ColumnarLayout)> {
    if payload.len() < V2_HEADER + 4 {
        return None;
    }
    let mut p = payload;
    if p.get_u32_le() != V2_MAGIC || p.get_u16_le() != V2_VERSION {
        return None;
    }
    let _flags = p.get_u16_le();
    let video = VideoId(p.get_u64_le());
    let n = p.get_u32_le() as usize;
    let ts_off = V2_HEADER;
    let user_off = ts_off.checked_add(n.checked_mul(8)?)?;
    let ends_off = user_off.checked_add(n.checked_mul(8)?)?;
    let blob_len_off = ends_off.checked_add(n.checked_mul(4)?)?;
    let text_off = blob_len_off.checked_add(4)?;
    if text_off > payload.len() {
        return None;
    }
    let text_len = read_u32_at(payload, blob_len_off) as usize;
    // Exact length equation: nothing may trail the blob.
    if text_off.checked_add(text_len)? != payload.len() {
        return None;
    }
    Some((
        video,
        ColumnarLayout {
            n,
            ts_off,
            user_off,
            ends_off,
            text_off,
            text_len,
        },
    ))
}

fn read_u32_at(buf: &[u8], off: usize) -> u32 {
    u32::from_le_bytes(buf[off..off + 4].try_into().expect("bounds checked"))
}

/// Decode a v2 record into a zero-copy view sharing `payload`.
pub fn decode_v2(payload: &Arc<[u8]>) -> Option<(VideoId, ChatLogView)> {
    let (video, layout) = v2_layout(payload)?;
    let view = ChatLogView::new(payload.clone(), layout)?;
    Some((video, view))
}

/// The legacy owned-`String` v1 decode (also the benchmark baseline).
/// Strict: the payload must be consumed exactly.
pub fn decode_v1_owned(mut payload: &[u8]) -> Option<(VideoId, ChatLog, bool)> {
    if payload.remaining() < 12 {
        return None;
    }
    let video = VideoId(payload.get_u64_le());
    let n = payload.get_u32_le() as usize;
    let mut truncated = false;
    let mut messages = Vec::with_capacity(n.min(1 << 20));
    for _ in 0..n {
        if payload.remaining() < 18 {
            return None;
        }
        let ts = payload.get_f64_le();
        let user = payload.get_u64_le();
        let len = payload.get_u16_le() as usize;
        if payload.remaining() < len {
            return None;
        }
        truncated |= len == u16::MAX as usize;
        let text = String::from_utf8_lossy(&payload[..len]).into_owned();
        payload.advance(len);
        messages.push(ChatMessage::new(Sec(ts), UserId(user), text));
    }
    if payload.remaining() > 0 {
        return None;
    }
    Some((video, ChatLog::new(messages), truncated))
}

/// Walk a v1 record without allocating message strings; returns the
/// video id and whether any text hit the v1 length ceiling.
fn v1_walk(mut payload: &[u8]) -> Option<(VideoId, bool)> {
    if payload.remaining() < 12 {
        return None;
    }
    let video = VideoId(payload.get_u64_le());
    let n = payload.get_u32_le() as usize;
    let mut truncated = false;
    for _ in 0..n {
        if payload.remaining() < 18 {
            return None;
        }
        payload.advance(16); // ts + user
        let len = payload.get_u16_le() as usize;
        if payload.remaining() < len {
            return None;
        }
        truncated |= len == u16::MAX as usize;
        payload.advance(len);
    }
    if payload.remaining() > 0 {
        return None;
    }
    Some((video, truncated))
}

/// Identify a record and extract its metadata without materializing
/// messages — the index-rebuild path (`ChatStore::open`) runs this over
/// every record, so it must not allocate per message.
pub fn sniff(payload: &[u8]) -> Option<RecordInfo> {
    if let Some((video, _)) = v2_layout(payload) {
        return Some(RecordInfo {
            video,
            format: Format::V2,
            truncated: false,
        });
    }
    v1_walk(payload).map(|(video, truncated)| RecordInfo {
        video,
        format: Format::V1,
        truncated,
    })
}

/// Decode a record of either format into a [`ChatLogView`].
///
/// v2 records share `payload` zero-copy; v1 records are materialized
/// once and re-columnarized (the price of the migration path).
pub fn decode(payload: &Arc<[u8]>) -> Option<(VideoId, ChatLogView, Format)> {
    if let Some((video, view)) = decode_v2(payload) {
        return Some((video, view, Format::V2));
    }
    let (video, chat, _) = decode_v1_owned(payload)?;
    Some((video, ChatLogView::from_chat_log(&chat), Format::V1))
}

#[cfg(test)]
mod tests {
    use super::*;

    fn sample_chat() -> ChatLog {
        ChatLog::new(vec![
            ChatMessage::new(1.5, UserId(7), "first message"),
            ChatMessage::new(3.25, UserId(8), "second 消息 with unicode"),
            ChatMessage::new(9.0, UserId::BOT, "spam spam"),
        ])
    }

    #[test]
    fn v2_round_trip_zero_copy() {
        let chat = sample_chat();
        let payload: Arc<[u8]> = encode_v2(VideoId(42), &chat).into();
        let (video, view) = decode_v2(&payload).expect("valid v2");
        assert_eq!(video, VideoId(42));
        assert_eq!(view, chat);
        // Zero-copy: the view shares the payload allocation.
        assert!(Arc::ptr_eq(view.buffer(), &payload));
    }

    #[test]
    fn v2_view_encode_matches_chat_log_encode() {
        let chat = sample_chat();
        let view = ChatLogView::from_chat_log(&chat);
        // Byte-for-byte the same record either way in.
        assert_eq!(
            encode_v2_view(VideoId(42), &view),
            encode_v2(VideoId(42), &chat)
        );
        let payload: Arc<[u8]> = encode_v2_view(VideoId(42), &view).into();
        let (video, back) = decode_v2(&payload).expect("valid v2");
        assert_eq!(video, VideoId(42));
        assert_eq!(back, chat);
        // Empty view round-trips too.
        let empty: Arc<[u8]> = encode_v2_view(VideoId(7), &ChatLogView::empty()).into();
        assert!(decode_v2(&empty).unwrap().1.is_empty());
    }

    #[test]
    fn v2_empty_log() {
        let payload: Arc<[u8]> = encode_v2(VideoId(1), &ChatLog::empty()).into();
        let (video, view) = decode_v2(&payload).unwrap();
        assert_eq!(video, VideoId(1));
        assert!(view.is_empty());
    }

    #[test]
    fn sniff_identifies_both_formats() {
        let chat = sample_chat();
        let v2 = encode_v2(VideoId(5), &chat);
        let v1 = encode_v1(VideoId(6), &chat);
        assert_eq!(
            sniff(&v2),
            Some(RecordInfo {
                video: VideoId(5),
                format: Format::V2,
                truncated: false
            })
        );
        assert_eq!(
            sniff(&v1),
            Some(RecordInfo {
                video: VideoId(6),
                format: Format::V1,
                truncated: false
            })
        );
        assert_eq!(sniff(&[]), None);
        assert_eq!(sniff(&v2[..v2.len() - 1]), None);
    }

    #[test]
    fn v1_truncation_is_flagged() {
        let long = "x".repeat(70_000);
        let chat = ChatLog::new(vec![ChatMessage::new(0.0, UserId(1), long)]);
        let v1 = encode_v1(VideoId(9), &chat);
        let info = sniff(&v1).unwrap();
        assert!(info.truncated, "max-length v1 text must be flagged");
        let (_, decoded, truncated) = decode_v1_owned(&v1).unwrap();
        assert!(truncated);
        assert_eq!(decoded.messages()[0].text.len(), u16::MAX as usize);
        // v2 keeps the full text.
        let payload: Arc<[u8]> = encode_v2(VideoId(9), &chat).into();
        let (_, view) = decode_v2(&payload).unwrap();
        assert_eq!(view.text(0).len(), 70_000);
    }

    #[test]
    fn decode_handles_either_format() {
        let chat = sample_chat();
        for (payload, fmt) in [
            (encode_v2(VideoId(3), &chat), Format::V2),
            (encode_v1(VideoId(3), &chat), Format::V1),
        ] {
            let arc: Arc<[u8]> = payload.into();
            let (video, view, format) = decode(&arc).expect("decodable");
            assert_eq!(video, VideoId(3));
            assert_eq!(format, fmt);
            assert_eq!(view, chat);
        }
    }

    #[test]
    fn truncated_payloads_are_rejected() {
        let chat = sample_chat();
        let v2 = encode_v2(VideoId(5), &chat);
        for cut in [1, 3, v2.len() - 1] {
            let arc: Arc<[u8]> = v2[..v2.len() - cut].to_vec().into();
            assert!(decode(&arc).is_none(), "cut {cut} bytes");
        }
        let v1 = encode_v1(VideoId(5), &chat);
        assert!(decode_v1_owned(&v1[..v1.len() - 3]).is_none());
        assert!(decode_v1_owned(&v1[..4]).is_none());
        assert!(decode_v1_owned(&[]).is_none());
    }
}
