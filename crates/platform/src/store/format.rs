//! The chat record codec: versioned payload formats for [`super::ChatStore`].
//!
//! Two formats coexist in one log (records are self-describing, so logs
//! written by older builds keep working after an upgrade):
//!
//! **v1 (legacy, row-oriented)** — no header, one framed row per message:
//!
//! ```text
//! [video_id: u64][n: u32] n × ([ts: f64][user: u64][len: u16][utf8 text])
//! ```
//!
//! Decoding allocates one `String` per message, and the `u16` length
//! field silently truncated texts longer than 65 535 bytes at encode
//! time. v1 is *decode-only* in production; [`encode_v1`] is retained
//! for migration tests and as the benchmark baseline. The v1 decode
//! path flags records that contain a maximum-length text as suspected
//! truncation victims so stores can surface the data loss.
//!
//! **v2 (current, columnar)** — a header followed by parallel arrays and
//! one contiguous text blob (all little-endian):
//!
//! ```text
//! [magic: u32 = "LCv2"][version: u16 = 2][flags: u16 = 0]
//! [video_id: u64][n: u32]
//! [ts: f64 × n][user: u64 × n][text_end: u32 × n]
//! [blob_len: u32][utf8 blob]
//! ```
//!
//! `text_end[i]` is the cumulative end offset of message `i`'s text in
//! the blob (u32, so texts up to 4 GiB aggregate — no silent `u16`
//! truncation). A v2 record decodes into a zero-copy
//! [`ChatLogView`] with O(1) allocations: the view `Arc`s the payload
//! buffer and reads the arrays in place.
//!
//! **v3 (tokenized corpus, companion record)** — not a chat format: a
//! v3 record rides in the same log *next to* a video's v2 chat record
//! and persists the tokenized corpus (interned term ids) so reopening
//! a store never re-tokenizes raw text. Layout (all little-endian):
//!
//! ```text
//! [magic: u32 = "LTv3"][version: u16 = 3][flags: u16 = 0]
//! [video_id: u64][n: u32][dim: u32][token_total: u32]
//! [token_end: u32 × n][token_id: u32 × token_total][word_count: u32 × n]
//! [vocab_base: u32][vocab_count: u32][term_end: u32 × vocab_count]
//! [blob_len: u32][utf8 term blob]
//! ```
//!
//! `token_end[i]` is the cumulative end offset of message `i`'s term
//! ids in the `token_id` array (same framing idea as v2's `text_end`);
//! `dim` is the dense feature dimension the ids were built against
//! (every id < `dim`). The trailing *vocab delta* carries the terms the
//! global vocabulary interned while tokenizing this record —
//! `vocab_base` is the id of the first delta term, `term_end` frames
//! each term's UTF-8 slice in the blob — so a fresh process can replay
//! deltas in log order and rebuild a vocabulary consistent with every
//! persisted record (see `lightor::vocab::GlobalVocab::absorb`).
//!
//! v3 records are written **lazily**: the first time a corpus is built
//! from a v2 chat record (a "cold" tokenization), the service persists
//! the result as a v3 companion. Re-crawling a video orphans its v3
//! record (the chat bytes changed, so the tokenization is stale);
//! the store's scan enforces that by log order. Decoding a v3 record
//! validates every length equation, offset monotonicity, id bound and
//! UTF-8 term slice — a corrupt record decodes to `None` and the
//! service falls back to re-tokenizing the chat record.
//!
//! Format detection ([`sniff`] / [`decode`]) tries v2 first — magic,
//! version, and an exact length equation must all hold — then v3 (a
//! distinct magic plus its own length equations), then falls
//! back to a strict v1 walk that must consume the payload exactly.
//! A false positive would need a v1 video id whose low bytes equal the
//! magic *and* a byte stream satisfying the v2 length equation, which
//! the strict checks make practically impossible.

use bytes::{Buf, BufMut, BytesMut};
use lightor_types::{ChatLog, ChatLogView, ChatMessage, ColumnarLayout, Sec, UserId, VideoId};
use std::sync::Arc;

/// v2 header magic: `b"LCv2"` read as a little-endian u32.
pub const V2_MAGIC: u32 = u32::from_le_bytes(*b"LCv2");
/// Current record format version.
pub const V2_VERSION: u16 = 2;
/// Byte length of the fixed v2 header (magic + version + flags + video + n).
const V2_HEADER: usize = 4 + 2 + 2 + 8 + 4;

/// v3 header magic: `b"LTv3"` read as a little-endian u32 ("T" for
/// tokenized — distinct from the chat magic so sniffing never confuses
/// the two).
pub const V3_MAGIC: u32 = u32::from_le_bytes(*b"LTv3");
/// Tokenized-corpus record format version.
pub const V3_VERSION: u16 = 3;
/// Fixed v3 header (magic + version + flags + video + n + dim + token_total).
const V3_HEADER: usize = 4 + 2 + 2 + 8 + 4 + 4 + 4;

/// Which codec a record was written with.
#[derive(Clone, Copy, Debug, PartialEq, Eq)]
pub enum Format {
    /// Legacy row-oriented records (owned-`String` decode).
    V1,
    /// Columnar zero-copy records.
    V2,
    /// Tokenized-corpus companion records (not chat data).
    V3,
}

/// Cheap per-record metadata extracted without materializing messages.
#[derive(Clone, Copy, Debug, PartialEq, Eq)]
pub struct RecordInfo {
    /// The video the record stores.
    pub video: VideoId,
    /// Codec the record was written with.
    pub format: Format,
    /// v1 only: the record holds a maximum-length (65 535-byte) text,
    /// i.e. it was very likely truncated by the v1 encoder.
    pub truncated: bool,
}

/// Encode a chat replay with the current (v2, columnar) format.
pub fn encode_v2(video: VideoId, chat: &ChatLog) -> Vec<u8> {
    let n = chat.len();
    let blob_len: usize = chat.messages().iter().map(|m| m.text.len()).sum();
    let mut buf = BytesMut::with_capacity(V2_HEADER + 20 * n + 4 + blob_len);
    buf.put_u32_le(V2_MAGIC);
    buf.put_u16_le(V2_VERSION);
    buf.put_u16_le(0); // flags, reserved
    buf.put_u64_le(video.0);
    buf.put_u32_le(n as u32);
    for m in chat.messages() {
        buf.put_f64_le(m.ts.0);
    }
    for m in chat.messages() {
        buf.put_u64_le(m.user.0);
    }
    let mut end = 0u32;
    for m in chat.messages() {
        end += m.text.len() as u32;
        buf.put_u32_le(end);
    }
    buf.put_u32_le(blob_len as u32);
    for m in chat.messages() {
        buf.put_slice(m.text.as_bytes());
    }
    buf.to_vec()
}

/// Encode a zero-copy view with the current (v2, columnar) format.
///
/// The view is already columnar, so this is header + four raw section
/// copies — no per-message walk, no UTF-8 revalidation, no `String`s.
/// This is the crawler's hot path now that generators emit views
/// directly. (Unlike a `to_chat_log()` round trip, invalid UTF-8 bytes
/// are preserved verbatim rather than lossy-replaced.)
pub fn encode_v2_view(video: VideoId, chat: &ChatLogView) -> Vec<u8> {
    let n = chat.len();
    let text = chat.text_section();
    let mut buf = BytesMut::with_capacity(V2_HEADER + 20 * n + 4 + text.len());
    buf.put_u32_le(V2_MAGIC);
    buf.put_u16_le(V2_VERSION);
    buf.put_u16_le(0); // flags, reserved
    buf.put_u64_le(video.0);
    buf.put_u32_le(n as u32);
    buf.put_slice(chat.ts_section());
    buf.put_slice(chat.user_section());
    buf.put_slice(chat.ends_section());
    buf.put_u32_le(text.len() as u32);
    buf.put_slice(text);
    buf.to_vec()
}

/// Encode with the legacy v1 format. Texts longer than 65 535 bytes are
/// truncated (the defect that motivated v2) — kept only so migration
/// tests and benchmarks can fabricate old logs.
pub fn encode_v1(video: VideoId, chat: &ChatLog) -> Vec<u8> {
    let mut buf = BytesMut::new();
    buf.put_u64_le(video.0);
    buf.put_u32_le(chat.len() as u32);
    for m in chat.messages() {
        buf.put_f64_le(m.ts.0);
        buf.put_u64_le(m.user.0);
        let text = m.text.as_bytes();
        let len = text.len().min(u16::MAX as usize);
        buf.put_u16_le(len as u16);
        buf.put_slice(&text[..len]);
    }
    buf.to_vec()
}

/// Compute the v2 layout of `payload` if (and only if) it is a valid v2
/// record. Pure offset arithmetic — no per-message work.
fn v2_layout(payload: &[u8]) -> Option<(VideoId, ColumnarLayout)> {
    if payload.len() < V2_HEADER + 4 {
        return None;
    }
    let mut p = payload;
    if p.get_u32_le() != V2_MAGIC || p.get_u16_le() != V2_VERSION {
        return None;
    }
    let _flags = p.get_u16_le();
    let video = VideoId(p.get_u64_le());
    let n = p.get_u32_le() as usize;
    let ts_off = V2_HEADER;
    let user_off = ts_off.checked_add(n.checked_mul(8)?)?;
    let ends_off = user_off.checked_add(n.checked_mul(8)?)?;
    let blob_len_off = ends_off.checked_add(n.checked_mul(4)?)?;
    let text_off = blob_len_off.checked_add(4)?;
    if text_off > payload.len() {
        return None;
    }
    let text_len = read_u32_at(payload, blob_len_off) as usize;
    // Exact length equation: nothing may trail the blob.
    if text_off.checked_add(text_len)? != payload.len() {
        return None;
    }
    Some((
        video,
        ColumnarLayout {
            n,
            ts_off,
            user_off,
            ends_off,
            text_off,
            text_len,
        },
    ))
}

fn read_u32_at(buf: &[u8], off: usize) -> u32 {
    u32::from_le_bytes(buf[off..off + 4].try_into().expect("bounds checked"))
}

/// Decode a v2 record into a zero-copy view sharing `payload`.
pub fn decode_v2(payload: &Arc<[u8]>) -> Option<(VideoId, ChatLogView)> {
    let (video, layout) = v2_layout(payload)?;
    let view = ChatLogView::new(payload.clone(), layout)?;
    Some((video, view))
}

/// Decoded contents of a v3 tokenized-corpus record.
///
/// Columns mirror `lightor::TokenizedChat::from_columns` inputs:
/// `token_ends[i]` frames message `i`'s slice of `token_ids`, every id
/// is `< dim`, and `word_counts[i]` is the message's whitespace word
/// count (the paper's message-length feature). The vocab delta
/// (`vocab_base` + `vocab_terms`) is what the global vocabulary
/// interned while producing this record; replaying deltas in log order
/// reconstructs a vocabulary consistent with all persisted ids.
#[derive(Clone, Debug, PartialEq, Eq)]
pub struct TokenizedRecord {
    /// The video whose corpus this record persists.
    pub video: VideoId,
    /// Dense feature dimension the ids were built against.
    pub dim: u32,
    /// Cumulative per-message end offsets into `token_ids` (length n).
    pub token_ends: Vec<u32>,
    /// Interned term ids, all messages concatenated.
    pub token_ids: Vec<u32>,
    /// Per-message whitespace word counts (length n).
    pub word_counts: Vec<u32>,
    /// Id of the first term in `vocab_terms`.
    pub vocab_base: u32,
    /// Terms this record's tokenization added to the global vocabulary.
    pub vocab_terms: Vec<String>,
}

impl TokenizedRecord {
    /// Number of messages the record covers.
    pub fn len(&self) -> usize {
        self.token_ends.len()
    }

    /// Whether the record covers zero messages.
    pub fn is_empty(&self) -> bool {
        self.token_ends.is_empty()
    }
}

/// Encode a tokenized corpus as a v3 record.
pub fn encode_v3(record: &TokenizedRecord) -> Vec<u8> {
    let n = record.token_ends.len();
    debug_assert_eq!(record.word_counts.len(), n);
    debug_assert_eq!(
        record.token_ends.last().copied().unwrap_or(0) as usize,
        record.token_ids.len()
    );
    let blob_len: usize = record.vocab_terms.iter().map(|t| t.len()).sum();
    let mut buf = BytesMut::with_capacity(
        V3_HEADER + 4 * (2 * n + record.token_ids.len() + record.vocab_terms.len()) + 12 + blob_len,
    );
    buf.put_u32_le(V3_MAGIC);
    buf.put_u16_le(V3_VERSION);
    buf.put_u16_le(0); // flags, reserved
    buf.put_u64_le(record.video.0);
    buf.put_u32_le(n as u32);
    buf.put_u32_le(record.dim);
    buf.put_u32_le(record.token_ids.len() as u32);
    for &end in &record.token_ends {
        buf.put_u32_le(end);
    }
    for &id in &record.token_ids {
        buf.put_u32_le(id);
    }
    for &wc in &record.word_counts {
        buf.put_u32_le(wc);
    }
    buf.put_u32_le(record.vocab_base);
    buf.put_u32_le(record.vocab_terms.len() as u32);
    let mut end = 0u32;
    for t in &record.vocab_terms {
        end += t.len() as u32;
        buf.put_u32_le(end);
    }
    buf.put_u32_le(blob_len as u32);
    for t in &record.vocab_terms {
        buf.put_slice(t.as_bytes());
    }
    buf.to_vec()
}

/// Section offsets of a v3 record, computed (and bounds-checked)
/// without materializing anything. `None` unless every length equation
/// holds exactly.
struct V3Layout {
    video: VideoId,
    n: usize,
    dim: u32,
    token_total: usize,
    ends_off: usize,
    ids_off: usize,
    wc_off: usize,
    vocab_off: usize,
    vocab_count: usize,
    term_ends_off: usize,
    blob_off: usize,
    blob_len: usize,
}

fn v3_layout(payload: &[u8]) -> Option<V3Layout> {
    if payload.len() < V3_HEADER {
        return None;
    }
    let mut p = payload;
    if p.get_u32_le() != V3_MAGIC || p.get_u16_le() != V3_VERSION {
        return None;
    }
    let _flags = p.get_u16_le();
    let video = VideoId(p.get_u64_le());
    let n = p.get_u32_le() as usize;
    let dim = p.get_u32_le();
    let token_total = p.get_u32_le() as usize;
    let ends_off = V3_HEADER;
    let ids_off = ends_off.checked_add(n.checked_mul(4)?)?;
    let wc_off = ids_off.checked_add(token_total.checked_mul(4)?)?;
    let vocab_off = wc_off.checked_add(n.checked_mul(4)?)?;
    let term_ends_off = vocab_off.checked_add(8)?;
    if term_ends_off > payload.len() {
        return None;
    }
    let vocab_count = read_u32_at(payload, vocab_off + 4) as usize;
    let blob_len_off = term_ends_off.checked_add(vocab_count.checked_mul(4)?)?;
    let blob_off = blob_len_off.checked_add(4)?;
    if blob_off > payload.len() {
        return None;
    }
    let blob_len = read_u32_at(payload, blob_len_off) as usize;
    // Exact length equation: nothing may trail the term blob.
    if blob_off.checked_add(blob_len)? != payload.len() {
        return None;
    }
    Some(V3Layout {
        video,
        n,
        dim,
        token_total,
        ends_off,
        ids_off,
        wc_off,
        vocab_off,
        vocab_count,
        term_ends_off,
        blob_off,
        blob_len,
    })
}

fn read_u32s(payload: &[u8], off: usize, count: usize) -> Vec<u32> {
    (0..count)
        .map(|i| read_u32_at(payload, off + 4 * i))
        .collect()
}

/// Decode (and fully validate) a v3 tokenized-corpus record.
///
/// Beyond the layout equations this checks offset monotonicity, the
/// `id < dim` bound and each term's UTF-8 — a record that fails any
/// check decodes to `None`, and callers fall back to re-tokenizing
/// the chat record.
pub fn decode_v3(payload: &[u8]) -> Option<TokenizedRecord> {
    decode_v3_impl(payload, true)
}

/// [`decode_v3`] minus the vocab-term materialization: every validation
/// still runs (term-end monotonicity, per-term UTF-8, the exact length
/// equations), but `vocab_terms` comes back empty instead of paying one
/// `String` per term. The hot reload path uses this once a record's
/// delta has already been absorbed into the process vocabulary — the
/// terms are only ever needed once per process.
pub fn decode_v3_columns(payload: &[u8]) -> Option<TokenizedRecord> {
    decode_v3_impl(payload, false)
}

fn decode_v3_impl(payload: &[u8], with_terms: bool) -> Option<TokenizedRecord> {
    let l = v3_layout(payload)?;
    let token_ends = read_u32s(payload, l.ends_off, l.n);
    let mut prev = 0u32;
    for &end in &token_ends {
        if end < prev {
            return None;
        }
        prev = end;
    }
    if prev as usize != l.token_total {
        return None;
    }
    let token_ids = read_u32s(payload, l.ids_off, l.token_total);
    if token_ids.iter().any(|&id| id >= l.dim) {
        return None;
    }
    let word_counts = read_u32s(payload, l.wc_off, l.n);
    let vocab_base = read_u32_at(payload, l.vocab_off);
    let term_ends = read_u32s(payload, l.term_ends_off, l.vocab_count);
    let mut vocab_terms = Vec::with_capacity(if with_terms { l.vocab_count } else { 0 });
    let mut start = 0usize;
    for &end in &term_ends {
        let end = end as usize;
        if end < start || end > l.blob_len {
            return None;
        }
        let slice = &payload[l.blob_off + start..l.blob_off + end];
        let term = std::str::from_utf8(slice).ok()?;
        if with_terms {
            vocab_terms.push(term.to_owned());
        }
        start = end;
    }
    if start != l.blob_len {
        return None;
    }
    Some(TokenizedRecord {
        video: l.video,
        dim: l.dim,
        token_ends,
        token_ids,
        word_counts,
        vocab_base,
        vocab_terms,
    })
}

/// The legacy owned-`String` v1 decode (also the benchmark baseline).
/// Strict: the payload must be consumed exactly.
pub fn decode_v1_owned(mut payload: &[u8]) -> Option<(VideoId, ChatLog, bool)> {
    if payload.remaining() < 12 {
        return None;
    }
    let video = VideoId(payload.get_u64_le());
    let n = payload.get_u32_le() as usize;
    let mut truncated = false;
    let mut messages = Vec::with_capacity(n.min(1 << 20));
    for _ in 0..n {
        if payload.remaining() < 18 {
            return None;
        }
        let ts = payload.get_f64_le();
        let user = payload.get_u64_le();
        let len = payload.get_u16_le() as usize;
        if payload.remaining() < len {
            return None;
        }
        truncated |= len == u16::MAX as usize;
        let text = String::from_utf8_lossy(&payload[..len]).into_owned();
        payload.advance(len);
        messages.push(ChatMessage::new(Sec(ts), UserId(user), text));
    }
    if payload.remaining() > 0 {
        return None;
    }
    Some((video, ChatLog::new(messages), truncated))
}

/// Walk a v1 record without allocating message strings; returns the
/// video id and whether any text hit the v1 length ceiling.
fn v1_walk(mut payload: &[u8]) -> Option<(VideoId, bool)> {
    if payload.remaining() < 12 {
        return None;
    }
    let video = VideoId(payload.get_u64_le());
    let n = payload.get_u32_le() as usize;
    let mut truncated = false;
    for _ in 0..n {
        if payload.remaining() < 18 {
            return None;
        }
        payload.advance(16); // ts + user
        let len = payload.get_u16_le() as usize;
        if payload.remaining() < len {
            return None;
        }
        truncated |= len == u16::MAX as usize;
        payload.advance(len);
    }
    if payload.remaining() > 0 {
        return None;
    }
    Some((video, truncated))
}

/// Identify a record and extract its metadata without materializing
/// messages — the index-rebuild path (`ChatStore::open`) runs this over
/// every record, so it must not allocate per message.
pub fn sniff(payload: &[u8]) -> Option<RecordInfo> {
    if let Some((video, _)) = v2_layout(payload) {
        return Some(RecordInfo {
            video,
            format: Format::V2,
            truncated: false,
        });
    }
    if let Some(l) = v3_layout(payload) {
        return Some(RecordInfo {
            video: l.video,
            format: Format::V3,
            truncated: false,
        });
    }
    v1_walk(payload).map(|(video, truncated)| RecordInfo {
        video,
        format: Format::V1,
        truncated,
    })
}

/// Decode a *chat* record of either chat format into a [`ChatLogView`].
///
/// v2 records share `payload` zero-copy; v1 records are materialized
/// once and re-columnarized (the price of the migration path). v3
/// records are not chat data and decode to `None` here — use
/// [`decode_v3`].
pub fn decode(payload: &Arc<[u8]>) -> Option<(VideoId, ChatLogView, Format)> {
    if let Some((video, view)) = decode_v2(payload) {
        return Some((video, view, Format::V2));
    }
    if v3_layout(payload).is_some() {
        return None;
    }
    let (video, chat, _) = decode_v1_owned(payload)?;
    Some((video, ChatLogView::from_chat_log(&chat), Format::V1))
}

#[cfg(test)]
mod tests {
    use super::*;

    fn sample_chat() -> ChatLog {
        ChatLog::new(vec![
            ChatMessage::new(1.5, UserId(7), "first message"),
            ChatMessage::new(3.25, UserId(8), "second 消息 with unicode"),
            ChatMessage::new(9.0, UserId::BOT, "spam spam"),
        ])
    }

    #[test]
    fn v2_round_trip_zero_copy() {
        let chat = sample_chat();
        let payload: Arc<[u8]> = encode_v2(VideoId(42), &chat).into();
        let (video, view) = decode_v2(&payload).expect("valid v2");
        assert_eq!(video, VideoId(42));
        assert_eq!(view, chat);
        // Zero-copy: the view shares the payload allocation.
        assert!(Arc::ptr_eq(view.buffer(), &payload));
    }

    #[test]
    fn v2_view_encode_matches_chat_log_encode() {
        let chat = sample_chat();
        let view = ChatLogView::from_chat_log(&chat);
        // Byte-for-byte the same record either way in.
        assert_eq!(
            encode_v2_view(VideoId(42), &view),
            encode_v2(VideoId(42), &chat)
        );
        let payload: Arc<[u8]> = encode_v2_view(VideoId(42), &view).into();
        let (video, back) = decode_v2(&payload).expect("valid v2");
        assert_eq!(video, VideoId(42));
        assert_eq!(back, chat);
        // Empty view round-trips too.
        let empty: Arc<[u8]> = encode_v2_view(VideoId(7), &ChatLogView::empty()).into();
        assert!(decode_v2(&empty).unwrap().1.is_empty());
    }

    #[test]
    fn v2_empty_log() {
        let payload: Arc<[u8]> = encode_v2(VideoId(1), &ChatLog::empty()).into();
        let (video, view) = decode_v2(&payload).unwrap();
        assert_eq!(video, VideoId(1));
        assert!(view.is_empty());
    }

    #[test]
    fn sniff_identifies_both_formats() {
        let chat = sample_chat();
        let v2 = encode_v2(VideoId(5), &chat);
        let v1 = encode_v1(VideoId(6), &chat);
        assert_eq!(
            sniff(&v2),
            Some(RecordInfo {
                video: VideoId(5),
                format: Format::V2,
                truncated: false
            })
        );
        assert_eq!(
            sniff(&v1),
            Some(RecordInfo {
                video: VideoId(6),
                format: Format::V1,
                truncated: false
            })
        );
        assert_eq!(sniff(&[]), None);
        assert_eq!(sniff(&v2[..v2.len() - 1]), None);
    }

    #[test]
    fn v1_truncation_is_flagged() {
        let long = "x".repeat(70_000);
        let chat = ChatLog::new(vec![ChatMessage::new(0.0, UserId(1), long)]);
        let v1 = encode_v1(VideoId(9), &chat);
        let info = sniff(&v1).unwrap();
        assert!(info.truncated, "max-length v1 text must be flagged");
        let (_, decoded, truncated) = decode_v1_owned(&v1).unwrap();
        assert!(truncated);
        assert_eq!(decoded.messages()[0].text.len(), u16::MAX as usize);
        // v2 keeps the full text.
        let payload: Arc<[u8]> = encode_v2(VideoId(9), &chat).into();
        let (_, view) = decode_v2(&payload).unwrap();
        assert_eq!(view.text(0).len(), 70_000);
    }

    #[test]
    fn decode_handles_either_format() {
        let chat = sample_chat();
        for (payload, fmt) in [
            (encode_v2(VideoId(3), &chat), Format::V2),
            (encode_v1(VideoId(3), &chat), Format::V1),
        ] {
            let arc: Arc<[u8]> = payload.into();
            let (video, view, format) = decode(&arc).expect("decodable");
            assert_eq!(video, VideoId(3));
            assert_eq!(format, fmt);
            assert_eq!(view, chat);
        }
    }

    fn sample_tokenized() -> TokenizedRecord {
        TokenizedRecord {
            video: VideoId(42),
            dim: 7,
            token_ends: vec![2, 2, 5],
            token_ids: vec![0, 3, 6, 6, 1],
            word_counts: vec![2, 0, 3],
            vocab_base: 4,
            vocab_terms: vec!["pog".into(), "消息".into(), "gg".into()],
        }
    }

    #[test]
    fn v3_round_trip() {
        let rec = sample_tokenized();
        let payload = encode_v3(&rec);
        assert_eq!(decode_v3(&payload), Some(rec.clone()));
        assert_eq!(
            sniff(&payload),
            Some(RecordInfo {
                video: VideoId(42),
                format: Format::V3,
                truncated: false
            })
        );
        // An empty corpus (zero messages, no delta) round-trips too.
        let empty = TokenizedRecord {
            video: VideoId(7),
            dim: 0,
            token_ends: vec![],
            token_ids: vec![],
            word_counts: vec![],
            vocab_base: 0,
            vocab_terms: vec![],
        };
        assert_eq!(decode_v3(&encode_v3(&empty)), Some(empty));
    }

    #[test]
    fn v3_columns_decode_matches_full_minus_terms() {
        let rec = sample_tokenized();
        let payload = encode_v3(&rec);
        let cols = decode_v3_columns(&payload).expect("valid record");
        assert_eq!(
            cols,
            TokenizedRecord {
                vocab_terms: vec![],
                ..rec.clone()
            }
        );
        // Same strictness as the full decode: every truncation and the
        // same corruptions must be rejected, not silently tolerated.
        for cut in 1..payload.len() {
            assert!(
                decode_v3_columns(&payload[..payload.len() - cut]).is_none(),
                "cut {cut}"
            );
        }
        let mut bad = rec.clone();
        bad.token_ends = vec![3, 2, 5];
        assert!(decode_v3_columns(&encode_v3(&bad)).is_none());
        let mut raw = payload.clone();
        let n = raw.len();
        raw[n - 1] = 0xFF;
        assert!(
            decode_v3_columns(&raw).is_none(),
            "bad UTF-8 must fail even without term materialization"
        );
    }

    #[test]
    fn v3_is_not_a_chat_record() {
        let payload: Arc<[u8]> = encode_v3(&sample_tokenized()).into();
        assert!(decode(&payload).is_none(), "v3 must not decode as chat");
        assert!(decode_v2(&payload).is_none());
        // And the chat formats are not v3.
        assert!(decode_v3(&encode_v2(VideoId(1), &sample_chat())).is_none());
        assert!(decode_v3(&encode_v1(VideoId(1), &sample_chat())).is_none());
    }

    #[test]
    fn v3_truncations_and_corruptions_are_rejected() {
        let good = encode_v3(&sample_tokenized());
        for cut in 1..good.len() {
            assert!(decode_v3(&good[..good.len() - cut]).is_none(), "cut {cut}");
        }
        assert!(decode_v3(&[]).is_none());
        // Non-monotone token_ends.
        let mut bad = sample_tokenized();
        bad.token_ends = vec![3, 2, 5];
        assert!(decode_v3(&encode_v3(&bad)).is_none());
        // Token id out of the declared dimension.
        let mut bad = sample_tokenized();
        bad.dim = 5; // ids contain 6
        assert!(decode_v3(&encode_v3(&bad)).is_none());
        // Invalid UTF-8 in the term blob.
        let mut raw = encode_v3(&sample_tokenized());
        let n = raw.len();
        raw[n - 1] = 0xFF;
        assert!(decode_v3(&raw).is_none());
    }

    #[test]
    fn truncated_payloads_are_rejected() {
        let chat = sample_chat();
        let v2 = encode_v2(VideoId(5), &chat);
        for cut in [1, 3, v2.len() - 1] {
            let arc: Arc<[u8]> = v2[..v2.len() - cut].to_vec().into();
            assert!(decode(&arc).is_none(), "cut {cut} bytes");
        }
        let v1 = encode_v1(VideoId(5), &chat);
        assert!(decode_v1_owned(&v1[..v1.len() - 3]).is_none());
        assert!(decode_v1_owned(&v1[..4]).is_none());
        assert!(decode_v1_owned(&[]).is_none());
    }
}
