//! Per-video chat storage on top of the segment log.
//!
//! One log record = one video's full chat replay (crawls are per-video,
//! so batching amortizes framing overhead). The in-memory index maps
//! `VideoId → (RecordId, framed size)` and is rebuilt by scanning the
//! log on open — recovery is the scan (torn tail records are truncated
//! by [`SegmentLog::open`], and the scan itself skips anything that
//! fails CRC or record-level validation).
//!
//! # Compaction
//!
//! Re-crawls overwrite by appending, so each one orphans the video's
//! previous record. The index's size column keeps a live-byte tally,
//! making [`ChatStore::dead_bytes`] O(1); [`ChatStore::compact`]
//! rewrites the live set into fresh segments (via
//! [`SegmentLog::compact`]) and remaps the index, and
//! [`ChatStore::maybe_compact`] gates that work behind dead-ratio/byte
//! thresholds so callers (the crawler's re-crawl pass) can invoke it
//! unconditionally.
//!
//! # Record formats
//!
//! Records are self-describing and two formats coexist in one log (see
//! [`format`](super::format) for the byte-level layouts):
//!
//! * **v2 (current)** — columnar: a magic/version header, then parallel
//!   `ts`/`user`/`text_end` arrays and one contiguous UTF-8 blob. Text
//!   offsets are `u32`, so nothing is silently truncated, and a record
//!   decodes into a zero-copy [`ChatLogView`] with O(1) allocations.
//!   All new writes use v2.
//! * **v1 (legacy)** — row-oriented with `u16` text lengths. Decode
//!   only; records whose text hits the 65 535-byte v1 ceiling are
//!   counted in [`ChatStore::v1_truncated_records`] and reported once
//!   per open, because the original bytes are unrecoverable.
//! * **v3 (tokenized companion)** — not chat data: a per-video
//!   tokenized-corpus record written *after* (and indexed next to) the
//!   video's chat record, so reopening a store never re-tokenizes raw
//!   text. A separate `VideoId → entry` index tracks them; writing a
//!   fresh chat record for a video **orphans** its v3 companion (the
//!   tokenization is stale), both at write time and — because the scan
//!   runs in log order — across a reopen. Companions whose chat record
//!   vanished are dropped by the scan too.
//!
//! # Read path
//!
//! [`ChatStore::get_chat_view`] is the fast path: a read-through LRU
//! cache of decoded views sits in front of the log, so repeated opens
//! of a hot video cost a hash lookup plus an `Arc` bump. The owned
//! [`ChatStore::get_chat`] materializes from the same view. Writes go
//! through [`ChatStore::put_chat`], or [`ChatStore::put_chats`] to
//! batch many videos into one `sync`.

use super::format::{self, Format, TokenizedRecord};
use super::log::{RecordId, SegmentLog};
use super::FaultInjector;
use crate::cache::LruCache;
use lightor_types::{ChatLog, ChatLogView, VideoId};
use parking_lot::Mutex;
use std::collections::{HashMap, HashSet};
use std::path::PathBuf;
use std::sync::Arc;

/// Decoded-record cache size: hot working set of a serving node; at
/// ~100 KB per decoded replay this bounds cache memory to a few MB.
const RECORD_CACHE_CAP: usize = 64;

/// Frame overhead the log adds per record (length + CRC header).
const FRAME_OVERHEAD: u64 = 8;

/// One live record in the index: where it is and how big it is on disk
/// (framed), so dead bytes can be computed without rescanning the log.
#[derive(Clone, Copy, Debug)]
struct IndexEntry {
    id: RecordId,
    framed_bytes: u64,
}

/// What one [`ChatStore::compact`] run did.
#[derive(Clone, Copy, Debug, Default, PartialEq, Eq)]
pub struct CompactStats {
    /// Bytes given back to the filesystem.
    pub reclaimed_bytes: u64,
    /// Dead records dropped.
    pub dropped_records: usize,
    /// Live records carried over.
    pub live_records: usize,
}

/// Durable chat storage with a per-video index and a read-through
/// record cache.
#[derive(Debug)]
pub struct ChatStore {
    log: SegmentLog,
    index: HashMap<VideoId, IndexEntry>,
    /// Live v3 tokenized-companion records, keyed by video. An entry
    /// here is only valid while the video's chat record is unchanged —
    /// chat writes orphan it.
    tok_index: HashMap<VideoId, IndexEntry>,
    /// Decoded views by video; interior mutability so reads stay `&self`.
    cache: Mutex<LruCache<VideoId, ChatLogView>>,
    /// Framed bytes of all live records (chat + tokenized entries).
    live_bytes: u64,
    /// Cumulative bytes reclaimed by compactions since open.
    reclaimed_bytes: u64,
    v1_records: usize,
    v1_truncated: usize,
}

impl ChatStore {
    /// Open (or create) a store in `dir`, rebuilding the index by scan.
    ///
    /// The scan sniffs each record's format without materializing
    /// messages. Legacy v1 records keep working (later records win, so
    /// re-crawled videos pick up v2 on their next write); v1 records
    /// that hit the old format's 65 535-byte text ceiling are counted
    /// and reported — the truncated bytes are gone, so the only fix is
    /// a re-crawl.
    pub fn open(dir: impl Into<PathBuf>) -> std::io::Result<Self> {
        let log = SegmentLog::open(dir, 8 << 20)?;
        let mut index: HashMap<VideoId, IndexEntry> = HashMap::new();
        let mut tok_index: HashMap<VideoId, IndexEntry> = HashMap::new();
        let mut v1_records = 0usize;
        let mut v1_truncated = 0usize;
        log.scan_with(|id, payload| {
            if let Some(info) = format::sniff(payload) {
                let entry = IndexEntry {
                    id,
                    framed_bytes: payload.len() as u64 + FRAME_OVERHEAD,
                };
                if info.format == Format::V3 {
                    // Tokenized companion: later records win, exactly
                    // like chat overwrites.
                    tok_index.insert(info.video, entry);
                    return;
                }
                if info.format == Format::V1 {
                    v1_records += 1;
                    v1_truncated += usize::from(info.truncated);
                }
                // Later records win: re-crawls overwrite. A fresh chat
                // record also orphans any earlier tokenized companion —
                // its ids describe the *previous* chat bytes.
                index.insert(info.video, entry);
                tok_index.remove(&info.video);
            }
        })?;
        // A companion whose chat record is gone is useless: drop it.
        tok_index.retain(|video, _| index.contains_key(video));
        if v1_truncated > 0 {
            eprintln!(
                "chatstore: {v1_truncated} legacy v1 record(s) hit the u16 text ceiling; \
                 their texts were truncated at write time — re-crawl to recover"
            );
        }
        let live_bytes = index
            .values()
            .chain(tok_index.values())
            .map(|e| e.framed_bytes)
            .sum();
        Ok(ChatStore {
            log,
            index,
            tok_index,
            cache: Mutex::new(LruCache::new(RECORD_CACHE_CAP)),
            live_bytes,
            reclaimed_bytes: 0,
            v1_records,
            v1_truncated,
        })
    }

    /// Point a video's index entry at a fresh record, keeping the
    /// live-byte tally consistent (a replaced record becomes dead).
    /// A fresh chat record also orphans the video's tokenized
    /// companion: its ids describe the bytes just replaced.
    fn index_insert(&mut self, video: VideoId, id: RecordId, payload_len: usize) {
        let framed = payload_len as u64 + FRAME_OVERHEAD;
        if let Some(old) = self.index.insert(
            video,
            IndexEntry {
                id,
                framed_bytes: framed,
            },
        ) {
            self.live_bytes -= old.framed_bytes;
        }
        self.live_bytes += framed;
        if let Some(tok) = self.tok_index.remove(&video) {
            self.live_bytes -= tok.framed_bytes;
        }
    }

    /// Store (or replace) a video's chat replay from an owned log.
    pub fn put_chat(&mut self, video: VideoId, chat: &ChatLog) -> std::io::Result<()> {
        self.put_one_synced(format::encode_v2(video, chat), video)
    }

    /// Store (or replace) a video's chat replay from a zero-copy view —
    /// the crawler's path: the view is already columnar, so encoding is
    /// section copies with no per-message materialization.
    pub fn put_chat_view(&mut self, video: VideoId, chat: &ChatLogView) -> std::io::Result<()> {
        self.put_one_synced(format::encode_v2_view(video, chat), video)
    }

    /// Append one record and make it durable *before* publishing it in
    /// the index: a failed sync must leave readers on the previous
    /// durable record, never serving bytes a crash could lose.
    fn put_one_synced(&mut self, payload: Vec<u8>, video: VideoId) -> std::io::Result<()> {
        let id = self.log.append(&payload)?;
        self.log.sync()?;
        self.index_insert(video, id, payload.len());
        self.cache.lock().remove(&video);
        Ok(())
    }

    /// Batch append: store many replays with a **single** `sync` at the
    /// end, amortizing the durability barrier across the batch (the
    /// offline crawler's shape). Returns the number of records written.
    pub fn put_chats<'a, I>(&mut self, items: I) -> std::io::Result<usize>
    where
        I: IntoIterator<Item = (VideoId, &'a ChatLogView)>,
    {
        let mut written = 0usize;
        for (video, chat) in items {
            self.put_payload(format::encode_v2_view(video, chat), video)?;
            written += 1;
        }
        if written > 0 {
            self.log.sync()?;
        }
        Ok(written)
    }

    fn put_payload(&mut self, payload: Vec<u8>, video: VideoId) -> std::io::Result<()> {
        let id = self.log.append(&payload)?;
        self.index_insert(video, id, payload.len());
        self.cache.lock().remove(&video);
        Ok(())
    }

    /// Export a video's live chat record as raw (already encoded)
    /// payload bytes — the migration-bundle path. The bytes are exactly
    /// what [`ChatStore::import_record`] on the destination appends, so
    /// a shipped record reads back byte-for-byte identical (format
    /// version included).
    pub fn export_record(&self, video: VideoId) -> std::io::Result<Option<Vec<u8>>> {
        match self.index.get(&video) {
            Some(entry) => self.log.read(entry.id).map(Some),
            None => Ok(None),
        }
    }

    /// Import a raw record payload (from a migration bundle) for
    /// `video`, durably, replacing any record the store already holds
    /// for it. The payload must sniff as a chat record for this video —
    /// a bundle routed to the wrong video id is rejected as
    /// `InvalidData` rather than silently indexed under the wrong key.
    pub fn import_record(&mut self, video: VideoId, payload: Vec<u8>) -> std::io::Result<()> {
        match format::sniff(&payload) {
            Some(info) if info.video == video => self.put_one_synced(payload, video),
            Some(info) => Err(std::io::Error::new(
                std::io::ErrorKind::InvalidData,
                format!(
                    "bundle record for video {} arrived under video {}",
                    info.video.0, video.0
                ),
            )),
            None => Err(std::io::Error::new(
                std::io::ErrorKind::InvalidData,
                "bundle record does not sniff as a chat record",
            )),
        }
    }

    /// Store (or replace) a video's tokenized-corpus companion record,
    /// durably. The video's chat record must already be stored (a
    /// companion without chat data is meaningless and would be dropped
    /// on reopen anyway), and `record.video` must match.
    pub fn put_tokenized(&mut self, record: &TokenizedRecord) -> std::io::Result<()> {
        if !self.index.contains_key(&record.video) {
            return Err(std::io::Error::new(
                std::io::ErrorKind::InvalidInput,
                format!(
                    "tokenized companion for video {} has no chat record",
                    record.video.0
                ),
            ));
        }
        self.put_tokenized_payload(record.video, format::encode_v3(record))
    }

    /// Append a pre-encoded v3 payload for `video`, durably, replacing
    /// any companion the store already holds for it.
    fn put_tokenized_payload(&mut self, video: VideoId, payload: Vec<u8>) -> std::io::Result<()> {
        let id = self.log.append_with_point(&payload, "log.tok.write")?;
        self.log.sync()?;
        let framed = payload.len() as u64 + FRAME_OVERHEAD;
        if let Some(old) = self.tok_index.insert(
            video,
            IndexEntry {
                id,
                framed_bytes: framed,
            },
        ) {
            self.live_bytes -= old.framed_bytes;
        }
        self.live_bytes += framed;
        Ok(())
    }

    /// Fetch a video's tokenized-corpus companion, if one is live.
    ///
    /// A record that fails CRC surfaces as an I/O error; one that fails
    /// v3 validation decodes to `None` (callers re-tokenize the chat).
    pub fn get_tokenized(&self, video: VideoId) -> std::io::Result<Option<TokenizedRecord>> {
        match self.tok_index.get(&video) {
            Some(entry) => Ok(self
                .log
                .read(entry.id)
                .ok()
                .and_then(|p| format::decode_v3(&p))),
            None => Ok(None),
        }
    }

    /// [`ChatStore::get_tokenized`] minus the vocab-term strings: same
    /// validation, `vocab_terms` left empty. The service's hot reload
    /// path uses this once a record's vocab delta has already been
    /// absorbed, skipping one `String` allocation per term.
    pub fn get_tokenized_columns(
        &self,
        video: VideoId,
    ) -> std::io::Result<Option<TokenizedRecord>> {
        match self.tok_index.get(&video) {
            Some(entry) => Ok(self
                .log
                .read(entry.id)
                .ok()
                .and_then(|p| format::decode_v3_columns(&p))),
            None => Ok(None),
        }
    }

    /// Whether a live tokenized companion exists for `video`.
    pub fn has_tokenized(&self, video: VideoId) -> bool {
        self.tok_index.contains_key(&video)
    }

    /// Number of videos with a live tokenized companion.
    pub fn tokenized_count(&self) -> usize {
        self.tok_index.len()
    }

    /// Export a video's live tokenized companion as raw payload bytes
    /// (the migration-bundle path; `None` if the video has no live
    /// companion).
    pub fn export_tokenized(&self, video: VideoId) -> std::io::Result<Option<Vec<u8>>> {
        match self.tok_index.get(&video) {
            Some(entry) => self.log.read(entry.id).map(Some),
            None => Ok(None),
        }
    }

    /// Import a raw v3 payload (from a migration bundle) for `video`.
    ///
    /// Idempotent: if the store already holds a byte-identical
    /// companion, nothing is appended — re-importing the same bundle
    /// must not grow the log. The payload must sniff as a v3 record for
    /// this video, and the chat record must be imported first (bundles
    /// list chat before tokenized sections).
    pub fn import_tokenized(&mut self, video: VideoId, payload: Vec<u8>) -> std::io::Result<()> {
        match format::sniff(&payload) {
            Some(info) if info.format == Format::V3 && info.video == video => {}
            Some(info) if info.format == Format::V3 => {
                return Err(std::io::Error::new(
                    std::io::ErrorKind::InvalidData,
                    format!(
                        "bundle tokenized record for video {} arrived under video {}",
                        info.video.0, video.0
                    ),
                ));
            }
            _ => {
                return Err(std::io::Error::new(
                    std::io::ErrorKind::InvalidData,
                    "bundle payload does not sniff as a tokenized (v3) record",
                ));
            }
        }
        if !self.index.contains_key(&video) {
            return Err(std::io::Error::new(
                std::io::ErrorKind::InvalidInput,
                format!(
                    "tokenized companion for video {} has no chat record",
                    video.0
                ),
            ));
        }
        if let Some(entry) = self.tok_index.get(&video) {
            if self
                .log
                .read(entry.id)
                .map(|p| p == payload)
                .unwrap_or(false)
            {
                return Ok(()); // byte-identical companion already live
            }
        }
        self.put_tokenized_payload(video, payload)
    }

    /// Fetch a video's chat replay as a zero-copy view, if crawled.
    ///
    /// The fast path: a cache hit is a hash lookup plus an `Arc` bump;
    /// a miss reads one record and decodes with O(1) allocations (v2)
    /// or materializes once (legacy v1).
    pub fn get_chat_view(&self, video: VideoId) -> std::io::Result<Option<ChatLogView>> {
        let Some(entry) = self.index.get(&video) else {
            return Ok(None);
        };
        let id = entry.id;
        if let Some(view) = self.cache.lock().get(&video) {
            return Ok(Some(view));
        }
        let payload: Arc<[u8]> = self.log.read(id)?.into();
        let Some((_, view, _)) = format::decode(&payload) else {
            return Ok(None);
        };
        self.cache.lock().insert(video, view.clone());
        Ok(Some(view))
    }

    /// Fetch a video's chat replay as an owned [`ChatLog`], if crawled.
    pub fn get_chat(&self, video: VideoId) -> std::io::Result<Option<ChatLog>> {
        Ok(self.get_chat_view(video)?.map(|v| v.to_chat_log()))
    }

    /// Whether a video's chat is already stored.
    pub fn contains(&self, video: VideoId) -> bool {
        self.index.contains_key(&video)
    }

    /// Number of distinct videos stored.
    pub fn video_count(&self) -> usize {
        self.index.len()
    }

    /// Every video with a stored chat record, sorted by id — the
    /// migration driver's catalog of what a full bundle must carry.
    pub fn videos(&self) -> Vec<VideoId> {
        let mut ids: Vec<VideoId> = self.index.keys().copied().collect();
        ids.sort_unstable_by_key(|v| v.0);
        ids
    }

    /// Legacy v1 records still live in the log (they upgrade to v2 on
    /// their next re-crawl).
    pub fn v1_records(&self) -> usize {
        self.v1_records
    }

    /// v1 records flagged as truncation victims at open.
    pub fn v1_truncated_records(&self) -> usize {
        self.v1_truncated
    }

    /// The backing log's fault injector (no-op unless faults are armed).
    pub fn fault_injector(&self) -> &FaultInjector {
        self.log.fault_injector()
    }

    /// Route the backing log's instrumented I/O through `injector`.
    pub fn set_fault_injector(&mut self, injector: FaultInjector) {
        self.log.set_fault_injector(injector);
    }

    /// Record-cache `(hits, misses)` counters since open.
    pub fn cache_stats(&self) -> (u64, u64) {
        let cache = self.cache.lock();
        (cache.hits(), cache.misses())
    }

    /// Total on-disk bytes of the backing log.
    pub fn total_bytes(&self) -> u64 {
        self.log.total_bytes()
    }

    /// Bytes occupied by records no index entry points at (re-crawled
    /// videos orphan their previous record; torn tails, skipped frames).
    pub fn dead_bytes(&self) -> u64 {
        self.log.total_bytes().saturating_sub(self.live_bytes)
    }

    /// Cumulative bytes reclaimed by compactions since open.
    pub fn reclaimed_bytes(&self) -> u64 {
        self.reclaimed_bytes
    }

    /// Rewrite every live record into fresh segments, drop the dead
    /// ones, and remap the index. Live replays read back byte-for-byte
    /// identical afterwards (the cache stays valid — it is keyed by
    /// video, and payloads are unchanged).
    pub fn compact(&mut self) -> std::io::Result<CompactStats> {
        let live: HashSet<RecordId> = self
            .index
            .values()
            .chain(self.tok_index.values())
            .map(|e| e.id)
            .collect();
        let outcome = self.log.compact(&live)?;
        for entry in self.index.values_mut().chain(self.tok_index.values_mut()) {
            entry.id = *outcome
                .remap
                .get(&entry.id)
                .expect("compaction must remap every live record");
        }
        self.reclaimed_bytes += outcome.bytes_reclaimed();
        Ok(CompactStats {
            reclaimed_bytes: outcome.bytes_reclaimed(),
            dropped_records: outcome.dropped_records,
            live_records: self.index.len() + self.tok_index.len(),
        })
    }

    /// Compact only when at least `min_dead_bytes` are dead *and* the
    /// dead fraction exceeds `min_dead_ratio` — the crawler's re-crawl
    /// path calls this after overwriting stored videos so reclaim work
    /// is amortized instead of running on every pass.
    pub fn maybe_compact(
        &mut self,
        min_dead_ratio: f64,
        min_dead_bytes: u64,
    ) -> std::io::Result<Option<CompactStats>> {
        let total = self.total_bytes();
        let dead = self.dead_bytes();
        if total == 0 || dead < min_dead_bytes || (dead as f64) < min_dead_ratio * total as f64 {
            return Ok(None);
        }
        self.compact().map(Some)
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use lightor_types::{ChatMessage, UserId};
    use proptest::prelude::*;
    use std::fs;
    use std::io::Write as _;

    struct TempDir(PathBuf);
    impl TempDir {
        fn new(tag: &str) -> Self {
            let p = std::env::temp_dir().join(format!(
                "lightor-chatstore-{tag}-{}-{}",
                std::process::id(),
                std::time::SystemTime::now()
                    .duration_since(std::time::UNIX_EPOCH)
                    .unwrap()
                    .as_nanos()
            ));
            fs::create_dir_all(&p).unwrap();
            TempDir(p)
        }
    }
    impl Drop for TempDir {
        fn drop(&mut self) {
            let _ = fs::remove_dir_all(&self.0);
        }
    }

    fn sample_chat() -> ChatLog {
        ChatLog::new(vec![
            ChatMessage::new(1.5, UserId(7), "first message"),
            ChatMessage::new(3.25, UserId(8), "second 消息 with unicode"),
            ChatMessage::new(9.0, UserId::BOT, "spam spam"),
        ])
    }

    /// Append a raw (already encoded) record the way `put_chat` would,
    /// bypassing the v2 encoder — fabricates legacy logs for migration
    /// tests.
    fn put_raw(store: &mut ChatStore, video: VideoId, payload: &[u8]) {
        let id = store.log.append(payload).unwrap();
        store.log.sync().unwrap();
        store.index_insert(video, id, payload.len());
    }

    #[test]
    fn put_get_round_trip() {
        let dir = TempDir::new("rt");
        let mut store = ChatStore::open(&dir.0).unwrap();
        let chat = sample_chat();
        store.put_chat(VideoId(42), &chat).unwrap();
        let back = store.get_chat(VideoId(42)).unwrap().unwrap();
        assert_eq!(back, chat);
        assert!(store.contains(VideoId(42)));
        assert!(!store.contains(VideoId(43)));
        assert!(store.get_chat(VideoId(43)).unwrap().is_none());
        // The view path agrees and is zero-copy v2.
        let view = store.get_chat_view(VideoId(42)).unwrap().unwrap();
        assert_eq!(view, chat);
    }

    #[test]
    fn reopen_recovers_index() {
        let dir = TempDir::new("recover");
        {
            let mut store = ChatStore::open(&dir.0).unwrap();
            store.put_chat(VideoId(1), &sample_chat()).unwrap();
            store.put_chat(VideoId(2), &ChatLog::empty()).unwrap();
        }
        let store = ChatStore::open(&dir.0).unwrap();
        assert_eq!(store.video_count(), 2);
        assert_eq!(store.get_chat(VideoId(1)).unwrap().unwrap(), sample_chat());
        assert_eq!(
            store.get_chat(VideoId(2)).unwrap().unwrap(),
            ChatLog::empty()
        );
        assert_eq!(store.v1_records(), 0);
    }

    #[test]
    fn recrawl_overwrites() {
        let dir = TempDir::new("overwrite");
        let mut store = ChatStore::open(&dir.0).unwrap();
        store.put_chat(VideoId(1), &ChatLog::empty()).unwrap();
        store.put_chat(VideoId(1), &sample_chat()).unwrap();
        assert_eq!(store.get_chat(VideoId(1)).unwrap().unwrap(), sample_chat());
        assert_eq!(store.video_count(), 1);

        // The overwrite must also win across a reopen (later record wins).
        drop(store);
        let store = ChatStore::open(&dir.0).unwrap();
        assert_eq!(store.get_chat(VideoId(1)).unwrap().unwrap(), sample_chat());
    }

    #[test]
    fn put_chats_batches_with_one_sync() {
        let dir = TempDir::new("batch");
        let mut store = ChatStore::open(&dir.0).unwrap();
        let a = ChatLogView::from_chat_log(&sample_chat());
        let b = ChatLogView::empty();
        let n = store
            .put_chats([(VideoId(1), &a), (VideoId(2), &b), (VideoId(1), &a)])
            .unwrap();
        assert_eq!(n, 3);
        assert_eq!(store.video_count(), 2);
        assert_eq!(store.get_chat(VideoId(1)).unwrap().unwrap(), a);
        assert_eq!(store.get_chat(VideoId(2)).unwrap().unwrap(), b);
        // Batch contents survive a reopen (the single sync covered all).
        drop(store);
        let mut store = ChatStore::open(&dir.0).unwrap();
        assert_eq!(store.video_count(), 2);
        assert_eq!(store.put_chats(std::iter::empty()).ok(), Some(0));
    }

    #[test]
    fn record_cache_serves_repeat_reads() {
        let dir = TempDir::new("cache");
        let mut store = ChatStore::open(&dir.0).unwrap();
        store.put_chat(VideoId(1), &sample_chat()).unwrap();
        let first = store.get_chat_view(VideoId(1)).unwrap().unwrap();
        let second = store.get_chat_view(VideoId(1)).unwrap().unwrap();
        // Cache hit: both views share one payload buffer.
        assert!(Arc::ptr_eq(first.buffer(), second.buffer()));
        let (hits, misses) = store.cache_stats();
        assert_eq!((hits, misses), (1, 1));
        // A re-put invalidates the cached view.
        store.put_chat(VideoId(1), &ChatLog::empty()).unwrap();
        let fresh = store.get_chat_view(VideoId(1)).unwrap().unwrap();
        assert!(fresh.is_empty());
    }

    #[test]
    fn long_messages_survive_v2_intact() {
        // The v1 defect (silent u16 truncation) is fixed by v2's u32
        // offsets: the full text round-trips.
        let dir = TempDir::new("long");
        let mut store = ChatStore::open(&dir.0).unwrap();
        let long_text = "x".repeat(70_000);
        let chat = ChatLog::new(vec![ChatMessage::new(0.0, UserId(1), long_text.clone())]);
        store.put_chat(VideoId(9), &chat).unwrap();
        let back = store.get_chat(VideoId(9)).unwrap().unwrap();
        assert_eq!(back.messages()[0].text, long_text);
    }

    #[test]
    fn v1_to_v2_mixed_log_recovers_on_reopen() {
        let dir = TempDir::new("mixed");
        let old = sample_chat();
        let new = ChatLog::new(vec![ChatMessage::new(4.0, UserId(2), "fresh crawl")]);
        {
            let mut store = ChatStore::open(&dir.0).unwrap();
            // A legacy log: two v1 records, one of them truncated.
            put_raw(&mut store, VideoId(1), &format::encode_v1(VideoId(1), &old));
            let long = ChatLog::new(vec![ChatMessage::new(0.0, UserId(3), "y".repeat(70_000))]);
            put_raw(
                &mut store,
                VideoId(2),
                &format::encode_v1(VideoId(2), &long),
            );
            // An upgrade recrawls video 2 with v2 and adds video 3.
            store.put_chat(VideoId(2), &new).unwrap();
            store.put_chat(VideoId(3), &new).unwrap();
        }
        let store = ChatStore::open(&dir.0).unwrap();
        assert_eq!(store.video_count(), 3);
        // v1 records decode through the same API...
        assert_eq!(store.get_chat(VideoId(1)).unwrap().unwrap(), old);
        // ...the recrawled v2 record wins over the truncated v1 one...
        assert_eq!(store.get_chat(VideoId(2)).unwrap().unwrap(), new);
        assert_eq!(store.get_chat(VideoId(3)).unwrap().unwrap(), new);
        // ...and the legacy/truncation counters report the migration state.
        assert_eq!(store.v1_records(), 2);
        assert_eq!(store.v1_truncated_records(), 1);
    }

    #[test]
    fn export_import_ships_records_byte_for_byte() {
        let src_dir = TempDir::new("export-src");
        let dst_dir = TempDir::new("export-dst");
        let mut src = ChatStore::open(&src_dir.0).unwrap();
        let chat = sample_chat();
        src.put_chat(VideoId(1), &chat).unwrap();
        src.put_chat(VideoId(2), &ChatLog::empty()).unwrap();
        assert!(src.export_record(VideoId(99)).unwrap().is_none());

        let mut dst = ChatStore::open(&dst_dir.0).unwrap();
        for vid in [VideoId(1), VideoId(2)] {
            let payload = src.export_record(vid).unwrap().unwrap();
            dst.import_record(vid, payload).unwrap();
        }
        assert_eq!(dst.get_chat(VideoId(1)).unwrap().unwrap(), chat);
        assert_eq!(dst.get_chat(VideoId(2)).unwrap().unwrap(), ChatLog::empty());
        // The shipped bytes are identical to the source's (same format,
        // same payload) and durable across a destination reopen.
        assert_eq!(
            src.export_record(VideoId(1)).unwrap(),
            dst.export_record(VideoId(1)).unwrap()
        );
        drop(dst);
        let dst = ChatStore::open(&dst_dir.0).unwrap();
        assert_eq!(dst.get_chat(VideoId(1)).unwrap().unwrap(), chat);
    }

    #[test]
    fn import_rejects_mismatched_or_garbage_records() {
        let dir = TempDir::new("import-bad");
        let mut store = ChatStore::open(&dir.0).unwrap();
        // A record encoded for video 1 must not import under video 2.
        let payload = format::encode_v2(VideoId(1), &sample_chat());
        let err = store.import_record(VideoId(2), payload).unwrap_err();
        assert_eq!(err.kind(), std::io::ErrorKind::InvalidData);
        // Garbage bytes are rejected before touching the log.
        let err = store
            .import_record(VideoId(1), b"not a chat record".to_vec())
            .unwrap_err();
        assert_eq!(err.kind(), std::io::ErrorKind::InvalidData);
        assert_eq!(store.video_count(), 0);
    }

    fn sample_tokenized(video: VideoId) -> TokenizedRecord {
        TokenizedRecord {
            video,
            dim: 4,
            token_ends: vec![2, 3, 5],
            token_ids: vec![0, 1, 2, 3, 0],
            word_counts: vec![2, 1, 2],
            vocab_base: 0,
            vocab_terms: vec!["first".into(), "message".into()],
        }
    }

    #[test]
    fn tokenized_companion_round_trips_and_survives_reopen() {
        let dir = TempDir::new("tok-rt");
        let mut store = ChatStore::open(&dir.0).unwrap();
        let rec = sample_tokenized(VideoId(1));
        // No chat record yet → the companion is refused.
        assert_eq!(
            store.put_tokenized(&rec).unwrap_err().kind(),
            std::io::ErrorKind::InvalidInput
        );
        store.put_chat(VideoId(1), &sample_chat()).unwrap();
        store.put_tokenized(&rec).unwrap();
        assert!(store.has_tokenized(VideoId(1)));
        assert_eq!(store.tokenized_count(), 1);
        assert_eq!(store.get_tokenized(VideoId(1)).unwrap().unwrap(), rec);
        assert!(store.get_tokenized(VideoId(2)).unwrap().is_none());
        // The companion is rebuilt from the scan on reopen, and the
        // chat record still reads as chat.
        drop(store);
        let store = ChatStore::open(&dir.0).unwrap();
        assert_eq!(store.get_tokenized(VideoId(1)).unwrap().unwrap(), rec);
        assert_eq!(store.get_chat(VideoId(1)).unwrap().unwrap(), sample_chat());
        assert_eq!(store.video_count(), 1);
    }

    #[test]
    fn recrawl_orphans_tokenized_companion() {
        let dir = TempDir::new("tok-orphan");
        let mut store = ChatStore::open(&dir.0).unwrap();
        store.put_chat(VideoId(1), &sample_chat()).unwrap();
        store.put_tokenized(&sample_tokenized(VideoId(1))).unwrap();
        // A re-crawl invalidates the tokenization, immediately...
        store.put_chat(VideoId(1), &ChatLog::empty()).unwrap();
        assert!(!store.has_tokenized(VideoId(1)));
        assert!(store.get_tokenized(VideoId(1)).unwrap().is_none());
        // ...and across a reopen (scan order: chat record came later).
        drop(store);
        let store = ChatStore::open(&dir.0).unwrap();
        assert!(!store.has_tokenized(VideoId(1)));
        // The orphaned companion is dead bytes; compaction drops it.
        let mut store = store;
        let stats = store.compact().unwrap();
        assert_eq!(stats.live_records, 1);
        assert!(stats.dropped_records >= 2, "old chat + orphaned companion");
    }

    #[test]
    fn compaction_carries_tokenized_companions() {
        let dir = TempDir::new("tok-compact");
        let mut store = ChatStore::open(&dir.0).unwrap();
        let rec = sample_tokenized(VideoId(1));
        store.put_chat(VideoId(1), &sample_chat()).unwrap();
        store.put_tokenized(&rec).unwrap();
        store.put_chat(VideoId(2), &sample_chat()).unwrap();
        store.put_chat(VideoId(2), &sample_chat()).unwrap(); // dead bytes
        let stats = store.compact().unwrap();
        assert_eq!(stats.live_records, 3, "2 chat + 1 companion");
        assert_eq!(store.get_tokenized(VideoId(1)).unwrap().unwrap(), rec);
        assert_eq!(store.dead_bytes(), 0);
        drop(store);
        let store = ChatStore::open(&dir.0).unwrap();
        assert_eq!(store.get_tokenized(VideoId(1)).unwrap().unwrap(), rec);
        assert_eq!(store.get_chat(VideoId(2)).unwrap().unwrap(), sample_chat());
    }

    #[test]
    fn import_tokenized_is_idempotent_and_validated() {
        let dir = TempDir::new("tok-import");
        let mut store = ChatStore::open(&dir.0).unwrap();
        store.put_chat(VideoId(1), &sample_chat()).unwrap();
        let payload = format::encode_v3(&sample_tokenized(VideoId(1)));
        // Wrong video id and non-v3 payloads are rejected.
        assert_eq!(
            store
                .import_tokenized(VideoId(2), payload.clone())
                .unwrap_err()
                .kind(),
            std::io::ErrorKind::InvalidData
        );
        assert_eq!(
            store
                .import_tokenized(VideoId(1), format::encode_v2(VideoId(1), &sample_chat()))
                .unwrap_err()
                .kind(),
            std::io::ErrorKind::InvalidData
        );
        store.import_tokenized(VideoId(1), payload.clone()).unwrap();
        let bytes_after_first = store.total_bytes();
        // Re-importing the identical payload must not grow the log.
        store.import_tokenized(VideoId(1), payload.clone()).unwrap();
        assert_eq!(store.total_bytes(), bytes_after_first);
        // A *different* companion does replace the live one.
        let mut changed = sample_tokenized(VideoId(1));
        changed.word_counts = vec![9, 9, 9];
        store
            .import_tokenized(VideoId(1), format::encode_v3(&changed))
            .unwrap();
        assert_eq!(store.get_tokenized(VideoId(1)).unwrap().unwrap(), changed);
        assert!(store.total_bytes() > bytes_after_first);
        // Export ships exactly the live bytes.
        assert_eq!(
            store.export_tokenized(VideoId(1)).unwrap().unwrap(),
            format::encode_v3(&changed)
        );
        assert!(store.export_tokenized(VideoId(7)).unwrap().is_none());
    }

    #[test]
    fn torn_tail_record_is_dropped_on_reopen() {
        // Crash mid-append: the chat-store level view of SegmentLog's
        // torn-tail recovery. Good records survive, the torn one is
        // truncated away, and the store keeps accepting writes.
        let dir = TempDir::new("torn");
        {
            let mut store = ChatStore::open(&dir.0).unwrap();
            store.put_chat(VideoId(1), &sample_chat()).unwrap();
        }
        // Append half a record by hand: a frame header promising more
        // bytes than were written.
        let seg = dir.0.join("segment-000000.log");
        let mut f = fs::OpenOptions::new().append(true).open(&seg).unwrap();
        let garbage = [0xFFu8, 0xFF, 0x00, 0x00, 0x12, 0x34, 0x56, 0x78, 0xAB];
        f.write_all(&garbage).unwrap();
        drop(f);

        let mut store = ChatStore::open(&dir.0).unwrap();
        assert_eq!(store.video_count(), 1);
        assert_eq!(store.get_chat(VideoId(1)).unwrap().unwrap(), sample_chat());
        // Appending after recovery still works and survives reopen.
        store.put_chat(VideoId(2), &ChatLog::empty()).unwrap();
        drop(store);
        let store = ChatStore::open(&dir.0).unwrap();
        assert_eq!(store.video_count(), 2);
    }

    #[test]
    fn recrawl_accumulates_dead_bytes_and_compact_reclaims() {
        let dir = TempDir::new("compact");
        let mut store = ChatStore::open(&dir.0).unwrap();
        let chat = sample_chat();
        for vid in 1..=4u64 {
            store.put_chat(VideoId(vid), &chat).unwrap();
        }
        assert_eq!(store.dead_bytes(), 0);
        // Re-crawl every video twice: 2/3 of the log is now dead.
        for _ in 0..2 {
            for vid in 1..=4u64 {
                store.put_chat(VideoId(vid), &chat).unwrap();
            }
        }
        let dead = store.dead_bytes();
        assert!(dead * 3 >= store.total_bytes() * 2 - 8, "dead={dead}");

        let stats = store.compact().unwrap();
        assert_eq!(stats.live_records, 4);
        assert_eq!(stats.dropped_records, 8);
        assert_eq!(stats.reclaimed_bytes, dead);
        assert_eq!(store.dead_bytes(), 0);
        assert_eq!(store.reclaimed_bytes(), dead);

        // All live reads intact, through compaction AND a reopen.
        for vid in 1..=4u64 {
            assert_eq!(store.get_chat(VideoId(vid)).unwrap().unwrap(), chat);
        }
        drop(store);
        let store = ChatStore::open(&dir.0).unwrap();
        assert_eq!(store.video_count(), 4);
        assert_eq!(store.dead_bytes(), 0);
        for vid in 1..=4u64 {
            assert_eq!(store.get_chat(VideoId(vid)).unwrap().unwrap(), chat);
        }
    }

    #[test]
    fn maybe_compact_respects_thresholds() {
        let dir = TempDir::new("maybe");
        let mut store = ChatStore::open(&dir.0).unwrap();
        store.put_chat(VideoId(1), &sample_chat()).unwrap();
        // Nothing dead → no compaction.
        assert!(store.maybe_compact(0.25, 1).unwrap().is_none());
        store.put_chat(VideoId(1), &sample_chat()).unwrap();
        // Half the log is dead but under the byte floor → still no-op.
        assert!(store.maybe_compact(0.25, 1 << 30).unwrap().is_none());
        // Over both thresholds → compacts.
        let stats = store.maybe_compact(0.25, 1).unwrap().unwrap();
        assert_eq!(stats.dropped_records, 1);
        assert_eq!(store.dead_bytes(), 0);
    }

    /// Unicode palette for the round-trip property: ASCII, combining
    /// and multi-byte characters, an emoji, a space, and NUL.
    const CHARS: &[char] = &[
        'a', 'Z', '0', ' ', 'é', 'ß', '消', '息', '✓', '🎉', '\u{0}', '\n',
    ];

    proptest! {
        #![proptest_config(ProptestConfig::with_cases(24))]

        #[test]
        fn v2_round_trip_arbitrary_unicode(
            msgs in proptest::collection::vec(
                (0.0..86_400.0f64, 0u64..1000, proptest::collection::vec(0usize..12, 0..16)),
                0..40,
            ),
        ) {
            // 0..16-char texts (including empty) over the unicode palette;
            // 0..40 messages (including the empty log).
            let chat = ChatLog::new(
                msgs.iter()
                    .map(|(ts, user, idx)| {
                        let text: String = idx.iter().map(|&i| CHARS[i % CHARS.len()]).collect();
                        ChatMessage::new(*ts, UserId(*user), text)
                    })
                    .collect(),
            );
            let payload: Arc<[u8]> = format::encode_v2(VideoId(77), &chat).into();
            let (video, view) = format::decode_v2(&payload).expect("encoder output must decode");
            prop_assert_eq!(video, VideoId(77));
            prop_assert!(view == chat, "view/log mismatch");
            prop_assert_eq!(view.to_chat_log(), chat);
            // And the store round-trips it through disk.
            let dir = TempDir::new("prop");
            let mut store = ChatStore::open(&dir.0).unwrap();
            store.put_chat(VideoId(77), &view.to_chat_log()).unwrap();
            prop_assert_eq!(store.get_chat(VideoId(77)).unwrap().unwrap(), view.to_chat_log());
        }

        #[test]
        fn compaction_preserves_live_records_across_interleavings(
            // A random interleaving of appends and re-crawls over a small
            // video-id space: (video 0..6, chat variant 0..8) per op.
            ops in proptest::collection::vec((0u64..6, 0usize..8), 1..32),
            compact_at in proptest::collection::vec(0usize..32, 0..3),
        ) {
            fn variant_chat(v: usize) -> ChatLog {
                ChatLog::new(
                    (0..v + 1)
                        .map(|i| {
                            ChatMessage::new(
                                i as f64 * 2.5,
                                UserId(i as u64),
                                format!("variant-{v} message-{i} 消息✓"),
                            )
                        })
                        .collect(),
                )
            }
            let dir = TempDir::new("prop-compact");
            let mut store = ChatStore::open(&dir.0).unwrap();
            // The oracle: what each video's chat must read back as.
            let mut expect: std::collections::HashMap<VideoId, ChatLog> =
                std::collections::HashMap::new();
            for (i, &(vid, variant)) in ops.iter().enumerate() {
                let chat = variant_chat(variant);
                store.put_chat(VideoId(vid), &chat).unwrap();
                expect.insert(VideoId(vid), chat);
                if compact_at.contains(&i) {
                    store.compact().unwrap();
                    prop_assert_eq!(store.dead_bytes(), 0);
                }
            }
            store.compact().unwrap();
            prop_assert_eq!(store.video_count(), expect.len());
            // Every live record survives byte-for-byte: the decoded log
            // must equal the last chat written for that video...
            for (vid, chat) in &expect {
                prop_assert_eq!(&store.get_chat(*vid).unwrap().unwrap(), chat);
            }
            // ...including after an index rebuild from the compacted log.
            drop(store);
            let store = ChatStore::open(&dir.0).unwrap();
            for (vid, chat) in &expect {
                prop_assert_eq!(&store.get_chat(*vid).unwrap().unwrap(), chat);
            }
        }
    }
}
