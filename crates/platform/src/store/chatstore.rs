//! Per-video chat storage on top of the segment log.
//!
//! One log record = one video's full chat replay (crawls are per-video,
//! so batching amortizes framing overhead). The in-memory index maps
//! `VideoId → RecordId` and is rebuilt by scanning the log on open —
//! recovery is the scan.
//!
//! Record payload layout (all LE):
//! `[video_id: u64][n: u32] n × ([ts: f64][user: u64][len: u16][utf8 text])`

use super::log::{RecordId, SegmentLog};
use bytes::{Buf, BufMut, BytesMut};
use lightor_types::{ChatLog, ChatMessage, Sec, UserId, VideoId};
use std::collections::HashMap;
use std::path::PathBuf;

/// Durable chat storage with a per-video index.
#[derive(Debug)]
pub struct ChatStore {
    log: SegmentLog,
    index: HashMap<VideoId, RecordId>,
}

fn encode(video: VideoId, chat: &ChatLog) -> Vec<u8> {
    let mut buf = BytesMut::new();
    buf.put_u64_le(video.0);
    buf.put_u32_le(chat.len() as u32);
    for m in chat.messages() {
        buf.put_f64_le(m.ts.0);
        buf.put_u64_le(m.user.0);
        let text = m.text.as_bytes();
        let len = text.len().min(u16::MAX as usize);
        buf.put_u16_le(len as u16);
        buf.put_slice(&text[..len]);
    }
    buf.to_vec()
}

fn decode(mut payload: &[u8]) -> Option<(VideoId, ChatLog)> {
    if payload.remaining() < 12 {
        return None;
    }
    let video = VideoId(payload.get_u64_le());
    let n = payload.get_u32_le() as usize;
    let mut messages = Vec::with_capacity(n);
    for _ in 0..n {
        if payload.remaining() < 18 {
            return None;
        }
        let ts = payload.get_f64_le();
        let user = payload.get_u64_le();
        let len = payload.get_u16_le() as usize;
        if payload.remaining() < len {
            return None;
        }
        let text = String::from_utf8_lossy(&payload[..len]).into_owned();
        payload.advance(len);
        messages.push(ChatMessage::new(Sec(ts), UserId(user), text));
    }
    Some((video, ChatLog::new(messages)))
}

impl ChatStore {
    /// Open (or create) a store in `dir`, rebuilding the index by scan.
    pub fn open(dir: impl Into<PathBuf>) -> std::io::Result<Self> {
        let log = SegmentLog::open(dir, 8 << 20)?;
        let mut index = HashMap::new();
        for (id, payload) in log.scan()? {
            if let Some((video, _)) = decode(&payload) {
                // Later records win: re-crawls overwrite.
                index.insert(video, id);
            }
        }
        Ok(ChatStore { log, index })
    }

    /// Store (or replace) a video's chat replay.
    pub fn put_chat(&mut self, video: VideoId, chat: &ChatLog) -> std::io::Result<()> {
        let id = self.log.append(&encode(video, chat))?;
        self.log.sync()?;
        self.index.insert(video, id);
        Ok(())
    }

    /// Fetch a video's chat replay, if crawled.
    pub fn get_chat(&self, video: VideoId) -> std::io::Result<Option<ChatLog>> {
        let Some(&id) = self.index.get(&video) else {
            return Ok(None);
        };
        let payload = self.log.read(id)?;
        Ok(decode(&payload).map(|(_, chat)| chat))
    }

    /// Whether a video's chat is already stored.
    pub fn contains(&self, video: VideoId) -> bool {
        self.index.contains_key(&video)
    }

    /// Number of distinct videos stored.
    pub fn video_count(&self) -> usize {
        self.index.len()
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use std::fs;

    struct TempDir(PathBuf);
    impl TempDir {
        fn new(tag: &str) -> Self {
            let p = std::env::temp_dir().join(format!(
                "lightor-chatstore-{tag}-{}-{}",
                std::process::id(),
                std::time::SystemTime::now()
                    .duration_since(std::time::UNIX_EPOCH)
                    .unwrap()
                    .as_nanos()
            ));
            fs::create_dir_all(&p).unwrap();
            TempDir(p)
        }
    }
    impl Drop for TempDir {
        fn drop(&mut self) {
            let _ = fs::remove_dir_all(&self.0);
        }
    }

    fn sample_chat() -> ChatLog {
        ChatLog::new(vec![
            ChatMessage::new(1.5, UserId(7), "first message"),
            ChatMessage::new(3.25, UserId(8), "second 消息 with unicode"),
            ChatMessage::new(9.0, UserId::BOT, "spam spam"),
        ])
    }

    #[test]
    fn put_get_round_trip() {
        let dir = TempDir::new("rt");
        let mut store = ChatStore::open(&dir.0).unwrap();
        let chat = sample_chat();
        store.put_chat(VideoId(42), &chat).unwrap();
        let back = store.get_chat(VideoId(42)).unwrap().unwrap();
        assert_eq!(back, chat);
        assert!(store.contains(VideoId(42)));
        assert!(!store.contains(VideoId(43)));
        assert!(store.get_chat(VideoId(43)).unwrap().is_none());
    }

    #[test]
    fn reopen_recovers_index() {
        let dir = TempDir::new("recover");
        {
            let mut store = ChatStore::open(&dir.0).unwrap();
            store.put_chat(VideoId(1), &sample_chat()).unwrap();
            store.put_chat(VideoId(2), &ChatLog::empty()).unwrap();
        }
        let store = ChatStore::open(&dir.0).unwrap();
        assert_eq!(store.video_count(), 2);
        assert_eq!(store.get_chat(VideoId(1)).unwrap().unwrap(), sample_chat());
        assert_eq!(
            store.get_chat(VideoId(2)).unwrap().unwrap(),
            ChatLog::empty()
        );
    }

    #[test]
    fn recrawl_overwrites() {
        let dir = TempDir::new("overwrite");
        let mut store = ChatStore::open(&dir.0).unwrap();
        store.put_chat(VideoId(1), &ChatLog::empty()).unwrap();
        store.put_chat(VideoId(1), &sample_chat()).unwrap();
        assert_eq!(store.get_chat(VideoId(1)).unwrap().unwrap(), sample_chat());
        assert_eq!(store.video_count(), 1);

        // The overwrite must also win across a reopen (later record wins).
        drop(store);
        let store = ChatStore::open(&dir.0).unwrap();
        assert_eq!(store.get_chat(VideoId(1)).unwrap().unwrap(), sample_chat());
    }

    #[test]
    fn decode_rejects_truncation() {
        let chat = sample_chat();
        let full = encode(VideoId(5), &chat);
        assert!(decode(&full).is_some());
        assert!(decode(&full[..full.len() - 3]).is_none());
        assert!(decode(&full[..4]).is_none());
        assert!(decode(&[]).is_none());
    }

    #[test]
    fn long_messages_are_truncated_not_corrupted() {
        let dir = TempDir::new("long");
        let mut store = ChatStore::open(&dir.0).unwrap();
        let long_text = "x".repeat(70_000);
        let chat = ChatLog::new(vec![ChatMessage::new(0.0, UserId(1), long_text)]);
        store.put_chat(VideoId(9), &chat).unwrap();
        let back = store.get_chat(VideoId(9)).unwrap().unwrap();
        assert_eq!(back.messages()[0].text.len(), u16::MAX as usize);
    }
}
