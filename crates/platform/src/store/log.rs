//! A CRC-checked append-only segment log.
//!
//! Record layout on disk: `[len: u32 LE][crc32(payload): u32 LE][payload]`.
//! Segments roll over at a configurable size; a torn final record (partial
//! write at crash) is detected by length/CRC and truncated away on open.
//!
//! Logical overwrites (a caller appending a fresh record and forgetting
//! the old `RecordId`) leave dead bytes behind; [`SegmentLog::compact`]
//! rewrites the caller's live set into fresh segments and deletes the
//! old files. Segment numbering keeps climbing across compactions, so
//! `RecordId`s never alias.

use super::{crc32, sync_dir, FaultInjector};
use bytes::{Buf, BufMut, BytesMut};
use std::collections::{HashMap, HashSet};
use std::fs::{self, File, OpenOptions};
use std::io::{Read, Seek, SeekFrom, Write};
use std::path::{Path, PathBuf};

/// Stable address of one record in the log.
#[derive(Clone, Copy, Debug, PartialEq, Eq, Hash)]
pub struct RecordId {
    /// Segment number.
    pub segment: u32,
    /// Byte offset of the record header inside the segment.
    pub offset: u64,
}

/// An append-only log split across size-bounded segment files.
#[derive(Debug)]
pub struct SegmentLog {
    dir: PathBuf,
    max_segment_bytes: u64,
    active: u32,
    active_file: File,
    active_len: u64,
    /// Total on-disk bytes across all segments (valid prefixes).
    total_bytes: u64,
    fault: FaultInjector,
}

/// What one [`SegmentLog::compact`] run did.
#[derive(Clone, Debug, Default, PartialEq, Eq)]
pub struct CompactionOutcome {
    /// Old address → new address for every surviving record.
    pub remap: HashMap<RecordId, RecordId>,
    /// Log size before compaction.
    pub bytes_before: u64,
    /// Log size after compaction.
    pub bytes_after: u64,
    /// Records dropped (dead at compaction time).
    pub dropped_records: usize,
}

impl CompactionOutcome {
    /// Bytes the compaction gave back to the filesystem.
    pub fn bytes_reclaimed(&self) -> u64 {
        self.bytes_before.saturating_sub(self.bytes_after)
    }
}

const HEADER: usize = 8;

fn segment_path(dir: &Path, n: u32) -> PathBuf {
    dir.join(format!("segment-{n:06}.log"))
}

impl SegmentLog {
    /// Open (or create) a log in `dir`. Existing segments are validated;
    /// a torn tail record in the newest segment is truncated.
    pub fn open(dir: impl Into<PathBuf>, max_segment_bytes: u64) -> std::io::Result<Self> {
        let dir = dir.into();
        fs::create_dir_all(&dir)?;
        let mut segments: Vec<u32> = fs::read_dir(&dir)?
            .filter_map(|e| {
                let name = e.ok()?.file_name().into_string().ok()?;
                name.strip_prefix("segment-")?
                    .strip_suffix(".log")?
                    .parse()
                    .ok()
            })
            .collect();
        segments.sort_unstable();
        let active = segments.last().copied().unwrap_or(0);

        let path = segment_path(&dir, active);
        let valid_len = if path.exists() {
            Self::validate_segment(&path)?
        } else {
            0
        };
        // Only the active (last-written) segment can carry a torn tail,
        // so older segments contribute their full on-disk size.
        let mut total_bytes = valid_len;
        for &seg in &segments {
            if seg != active {
                total_bytes += fs::metadata(segment_path(&dir, seg))?.len();
            }
        }
        let active_file = OpenOptions::new()
            .create(true)
            .read(true)
            .write(true)
            .truncate(false) // set_len below trims exactly the torn tail
            .open(&path)?;
        active_file.set_len(valid_len)?;
        let mut f = active_file;
        f.seek(SeekFrom::End(0))?;

        Ok(SegmentLog {
            dir,
            max_segment_bytes,
            active,
            active_file: f,
            active_len: valid_len,
            total_bytes,
            fault: FaultInjector::new(),
        })
    }

    /// Scan a segment and return the byte length of its valid prefix.
    fn validate_segment(path: &Path) -> std::io::Result<u64> {
        let mut buf = Vec::new();
        File::open(path)?.read_to_end(&mut buf)?;
        let mut pos = 0usize;
        loop {
            if pos + HEADER > buf.len() {
                return Ok(pos as u64);
            }
            let mut hdr = &buf[pos..pos + HEADER];
            let len = hdr.get_u32_le() as usize;
            let crc = hdr.get_u32_le();
            let end = pos + HEADER + len;
            if end > buf.len() || crc32(&buf[pos + HEADER..end]) != crc {
                return Ok(pos as u64);
            }
            pos = end;
        }
    }

    /// Append one record; returns its stable address.
    pub fn append(&mut self, payload: &[u8]) -> std::io::Result<RecordId> {
        self.append_with_point(payload, "log.append.write")
    }

    /// [`SegmentLog::append`] with a caller-chosen fault-injection point
    /// name, so stores can distinguish write classes sharing one log
    /// (e.g. the chat store's tokenized-companion writes arm
    /// `log.tok.write` without tearing chat appends).
    pub fn append_with_point(
        &mut self,
        payload: &[u8],
        point: &'static str,
    ) -> std::io::Result<RecordId> {
        if self.active_len + (HEADER + payload.len()) as u64 > self.max_segment_bytes
            && self.active_len > 0
        {
            self.roll()?;
        }
        let id = RecordId {
            segment: self.active,
            offset: self.active_len,
        };
        let mut frame = BytesMut::with_capacity(HEADER + payload.len());
        frame.put_u32_le(payload.len() as u32);
        frame.put_u32_le(crc32(payload));
        frame.put_slice(payload);
        self.fault.write_all(point, &mut self.active_file, &frame)?;
        self.active_len += frame.len() as u64;
        self.total_bytes += frame.len() as u64;
        Ok(id)
    }

    /// Force buffered data to the OS.
    pub fn sync(&mut self) -> std::io::Result<()> {
        self.active_file.flush()?;
        self.fault.sync_data("log.sync", &self.active_file)
    }

    /// The log's fault injector (no-op unless faults are armed).
    pub fn fault_injector(&self) -> &FaultInjector {
        &self.fault
    }

    /// Route this log's instrumented I/O through `injector`.
    pub fn set_fault_injector(&mut self, injector: FaultInjector) {
        self.fault = injector;
    }

    fn roll(&mut self) -> std::io::Result<()> {
        self.sync()?;
        self.active += 1;
        let path = segment_path(&self.dir, self.active);
        self.active_file = OpenOptions::new()
            .create(true)
            .read(true)
            .write(true)
            .truncate(false) // fresh segment; nothing to truncate
            .open(path)?;
        self.active_len = 0;
        Ok(())
    }

    /// Read one record by address, verifying its CRC.
    pub fn read(&self, id: RecordId) -> std::io::Result<Vec<u8>> {
        let mut f = File::open(segment_path(&self.dir, id.segment))?;
        f.seek(SeekFrom::Start(id.offset))?;
        let mut hdr = [0u8; HEADER];
        f.read_exact(&mut hdr)?;
        let mut h = &hdr[..];
        let len = h.get_u32_le() as usize;
        let crc = h.get_u32_le();
        let mut payload = vec![0u8; len];
        f.read_exact(&mut payload)?;
        // Short-read faults shrink the payload here; the CRC check
        // below is what turns that into a typed error.
        self.fault.post_read("log.read", &mut payload)?;
        if crc32(&payload) != crc {
            return Err(std::io::Error::new(
                std::io::ErrorKind::InvalidData,
                "CRC mismatch",
            ));
        }
        Ok(payload)
    }

    /// Visit every valid record in log order as `(id, payload)` without
    /// copying payloads — each callback borrows straight from the
    /// segment read buffer. Index-rebuild scans (which only *sniff*
    /// records) should use this instead of [`SegmentLog::scan`].
    pub fn scan_with(&self, mut visit: impl FnMut(RecordId, &[u8])) -> std::io::Result<()> {
        for seg in 0..=self.active {
            let path = segment_path(&self.dir, seg);
            if !path.exists() {
                continue;
            }
            let mut buf = Vec::new();
            File::open(&path)?.read_to_end(&mut buf)?;
            let mut pos = 0usize;
            while pos + HEADER <= buf.len() {
                let mut hdr = &buf[pos..pos + HEADER];
                let len = hdr.get_u32_le() as usize;
                let crc = hdr.get_u32_le();
                let end = pos + HEADER + len;
                if end > buf.len() || crc32(&buf[pos + HEADER..end]) != crc {
                    break;
                }
                visit(
                    RecordId {
                        segment: seg,
                        offset: pos as u64,
                    },
                    &buf[pos + HEADER..end],
                );
                pos = end;
            }
        }
        Ok(())
    }

    /// Iterate every valid record in log order as owned `(id, payload)`
    /// pairs (a copying convenience over [`SegmentLog::scan_with`]).
    pub fn scan(&self) -> std::io::Result<Vec<(RecordId, Vec<u8>)>> {
        let mut out = Vec::new();
        self.scan_with(|id, payload| out.push((id, payload.to_vec())))?;
        Ok(out)
    }

    /// Current active segment number.
    pub fn active_segment(&self) -> u32 {
        self.active
    }

    /// Total on-disk bytes across all segments.
    pub fn total_bytes(&self) -> u64 {
        self.total_bytes
    }

    /// Rewrite the records in `live` into fresh segments and delete the
    /// old files, reclaiming dead bytes. Returns the old → new address
    /// remap, which the caller must apply to its index.
    ///
    /// Crash safety: live records are copied and synced into *new*
    /// segments (numbered after the current active one) before any old
    /// file is deleted. A crash mid-copy leaves both generations on
    /// disk; index-rebuild scans run in segment order, so the new
    /// (higher-numbered) copies win exactly like re-crawl overwrites
    /// do. A crash mid-delete just leaves some dead segments for the
    /// next compaction.
    pub fn compact(&mut self, live: &HashSet<RecordId>) -> std::io::Result<CompactionOutcome> {
        let bytes_before = self.total_bytes;
        let mut old_segments: Vec<u32> = fs::read_dir(&self.dir)?
            .filter_map(|e| {
                let name = e.ok()?.file_name().into_string().ok()?;
                name.strip_prefix("segment-")?
                    .strip_suffix(".log")?
                    .parse()
                    .ok()
            })
            .collect();
        old_segments.sort_unstable();

        // Open a fresh tail after the current active segment, then copy
        // the live set across in log order (preserving relative record
        // order within and across segments).
        self.sync()?;
        self.roll()?;
        self.total_bytes = 0;
        let mut remap = HashMap::with_capacity(live.len());
        let mut dropped = 0usize;
        for &seg in &old_segments {
            let mut buf = Vec::new();
            File::open(segment_path(&self.dir, seg))?.read_to_end(&mut buf)?;
            let mut pos = 0usize;
            while pos + HEADER <= buf.len() {
                let mut hdr = &buf[pos..pos + HEADER];
                let len = hdr.get_u32_le() as usize;
                let crc = hdr.get_u32_le();
                let end = pos + HEADER + len;
                if end > buf.len() || crc32(&buf[pos + HEADER..end]) != crc {
                    break;
                }
                let id = RecordId {
                    segment: seg,
                    offset: pos as u64,
                };
                if live.contains(&id) {
                    let new_id = self.append(&buf[pos + HEADER..end])?;
                    remap.insert(id, new_id);
                } else {
                    dropped += 1;
                }
                pos = end;
            }
        }
        // Durability barrier before the point of no return: the copies
        // must be on disk before the originals go away.
        self.sync()?;
        sync_dir(&self.dir)?;
        for &seg in &old_segments {
            fs::remove_file(segment_path(&self.dir, seg))?;
        }
        sync_dir(&self.dir)?;

        Ok(CompactionOutcome {
            remap,
            bytes_before,
            bytes_after: self.total_bytes,
            dropped_records: dropped,
        })
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    struct TempDir(PathBuf);
    impl TempDir {
        fn new(tag: &str) -> Self {
            let p = std::env::temp_dir().join(format!(
                "lightor-log-{tag}-{}-{}",
                std::process::id(),
                std::time::SystemTime::now()
                    .duration_since(std::time::UNIX_EPOCH)
                    .unwrap()
                    .as_nanos()
            ));
            fs::create_dir_all(&p).unwrap();
            TempDir(p)
        }
    }
    impl Drop for TempDir {
        fn drop(&mut self) {
            let _ = fs::remove_dir_all(&self.0);
        }
    }

    #[test]
    fn append_read_round_trip() {
        let dir = TempDir::new("rt");
        let mut log = SegmentLog::open(&dir.0, 1 << 20).unwrap();
        let a = log.append(b"hello").unwrap();
        let b = log.append(b"world!").unwrap();
        assert_eq!(log.read(a).unwrap(), b"hello");
        assert_eq!(log.read(b).unwrap(), b"world!");
        assert_ne!(a, b);
    }

    #[test]
    fn segments_roll_over() {
        let dir = TempDir::new("roll");
        let mut log = SegmentLog::open(&dir.0, 64).unwrap();
        for i in 0..10 {
            log.append(format!("record-{i:02}-padding-padding").as_bytes())
                .unwrap();
        }
        assert!(log.active_segment() >= 2, "no rollover happened");
        let all = log.scan().unwrap();
        assert_eq!(all.len(), 10);
        assert_eq!(all[0].1, b"record-00-padding-padding");
        assert_eq!(all[9].1, b"record-09-padding-padding");
    }

    #[test]
    fn reopen_preserves_records() {
        let dir = TempDir::new("reopen");
        let id = {
            let mut log = SegmentLog::open(&dir.0, 1 << 20).unwrap();
            let id = log.append(b"persistent").unwrap();
            log.sync().unwrap();
            id
        };
        let log = SegmentLog::open(&dir.0, 1 << 20).unwrap();
        assert_eq!(log.read(id).unwrap(), b"persistent");
        assert_eq!(log.scan().unwrap().len(), 1);
    }

    #[test]
    fn torn_tail_is_truncated_on_open() {
        let dir = TempDir::new("torn");
        {
            let mut log = SegmentLog::open(&dir.0, 1 << 20).unwrap();
            log.append(b"good record").unwrap();
            log.sync().unwrap();
        }
        // Simulate a crash mid-append: garbage half-record at the tail.
        let seg = segment_path(&dir.0, 0);
        let mut f = OpenOptions::new().append(true).open(&seg).unwrap();
        f.write_all(&[0xAB, 0xCD, 0x12]).unwrap();
        drop(f);

        let mut log = SegmentLog::open(&dir.0, 1 << 20).unwrap();
        let records = log.scan().unwrap();
        assert_eq!(records.len(), 1);
        assert_eq!(records[0].1, b"good record");
        // And appending after recovery still works.
        let id = log.append(b"after recovery").unwrap();
        assert_eq!(log.read(id).unwrap(), b"after recovery");
    }

    #[test]
    fn corrupt_payload_is_rejected_on_read() {
        let dir = TempDir::new("corrupt");
        let mut log = SegmentLog::open(&dir.0, 1 << 20).unwrap();
        let id = log.append(b"to be corrupted").unwrap();
        log.sync().unwrap();
        // Flip a payload byte on disk.
        let seg = segment_path(&dir.0, 0);
        let mut buf = fs::read(&seg).unwrap();
        let n = buf.len();
        buf[n - 1] ^= 0xFF;
        fs::write(&seg, &buf).unwrap();
        assert!(log.read(id).is_err());
    }

    #[test]
    fn empty_log_scans_empty() {
        let dir = TempDir::new("empty");
        let log = SegmentLog::open(&dir.0, 1 << 20).unwrap();
        assert!(log.scan().unwrap().is_empty());
    }

    #[test]
    fn compact_reclaims_dead_bytes_and_remaps() {
        let dir = TempDir::new("compact");
        let mut log = SegmentLog::open(&dir.0, 128).unwrap();
        // Ten records; only every third survives.
        let ids: Vec<RecordId> = (0..10)
            .map(|i| {
                log.append(format!("record-{i:02}-padding-padding").as_bytes())
                    .unwrap()
            })
            .collect();
        let live: HashSet<RecordId> = ids.iter().copied().step_by(3).collect();
        let before = log.total_bytes();

        let outcome = log.compact(&live).unwrap();
        assert_eq!(outcome.bytes_before, before);
        assert_eq!(outcome.remap.len(), 4);
        assert_eq!(outcome.dropped_records, 6);
        assert!(outcome.bytes_reclaimed() >= before / 2);
        assert_eq!(log.total_bytes(), outcome.bytes_after);

        // Every live record reads back byte-for-byte at its new address.
        for (i, old) in ids.iter().enumerate().step_by(3) {
            let new_id = outcome.remap[old];
            assert_eq!(
                log.read(new_id).unwrap(),
                format!("record-{i:02}-padding-padding").as_bytes()
            );
        }
        // Appends keep working, and everything survives a reopen.
        let extra = log.append(b"post-compaction").unwrap();
        log.sync().unwrap();
        drop(log);
        let log = SegmentLog::open(&dir.0, 128).unwrap();
        assert_eq!(log.read(extra).unwrap(), b"post-compaction");
        assert_eq!(log.scan().unwrap().len(), 5);
    }

    #[test]
    fn compact_with_everything_live_is_lossless() {
        let dir = TempDir::new("compact-all");
        let mut log = SegmentLog::open(&dir.0, 1 << 20).unwrap();
        let ids: Vec<RecordId> = (0..5)
            .map(|i| log.append(format!("keep-{i}").as_bytes()).unwrap())
            .collect();
        let live: HashSet<RecordId> = ids.iter().copied().collect();
        let outcome = log.compact(&live).unwrap();
        assert_eq!(outcome.dropped_records, 0);
        // Same payload bytes → same framed size.
        assert_eq!(outcome.bytes_before, outcome.bytes_after);
        for (i, old) in ids.iter().enumerate() {
            assert_eq!(
                log.read(outcome.remap[old]).unwrap(),
                format!("keep-{i}").as_bytes()
            );
        }
    }
}
