//! A small JSON key-value store with atomic snapshot persistence — holds
//! trained model bundles and the continuously refined red-dot state
//! ("the refined results will be stored in the database continuously",
//! Section VI-A).

use serde::de::DeserializeOwned;
use serde::Serialize;
use std::collections::BTreeMap;
use std::fs;
use std::path::PathBuf;

/// String-keyed JSON store persisted as one snapshot file.
#[derive(Debug)]
pub struct KvStore {
    path: PathBuf,
    map: BTreeMap<String, serde_json::Value>,
}

impl KvStore {
    /// Open (or create) the store at `path`.
    pub fn open(path: impl Into<PathBuf>) -> std::io::Result<Self> {
        let path = path.into();
        let map = match fs::read(&path) {
            Ok(bytes) => serde_json::from_slice(&bytes).unwrap_or_default(),
            Err(e) if e.kind() == std::io::ErrorKind::NotFound => BTreeMap::new(),
            Err(e) => return Err(e),
        };
        Ok(KvStore { path, map })
    }

    /// Insert or replace a value; persists immediately.
    pub fn put<T: Serialize>(&mut self, key: &str, value: &T) -> std::io::Result<()> {
        let v = serde_json::to_value(value)
            .map_err(|e| std::io::Error::new(std::io::ErrorKind::InvalidData, e))?;
        self.map.insert(key.to_owned(), v);
        self.flush()
    }

    /// Fetch and deserialize a value.
    pub fn get<T: DeserializeOwned>(&self, key: &str) -> Option<T> {
        self.map
            .get(key)
            .and_then(|v| serde_json::from_value(v.clone()).ok())
    }

    /// Remove a key; persists immediately. Returns whether it existed.
    pub fn remove(&mut self, key: &str) -> std::io::Result<bool> {
        let existed = self.map.remove(key).is_some();
        if existed {
            self.flush()?;
        }
        Ok(existed)
    }

    /// All keys with the given prefix, sorted.
    pub fn keys_with_prefix(&self, prefix: &str) -> Vec<String> {
        self.map
            .keys()
            .filter(|k| k.starts_with(prefix))
            .cloned()
            .collect()
    }

    /// Number of keys.
    pub fn len(&self) -> usize {
        self.map.len()
    }

    /// True when the store holds no keys.
    pub fn is_empty(&self) -> bool {
        self.map.is_empty()
    }

    /// Write the snapshot atomically (temp file + rename).
    fn flush(&self) -> std::io::Result<()> {
        let tmp = self.path.with_extension("tmp");
        let bytes = serde_json::to_vec_pretty(&self.map)
            .map_err(|e| std::io::Error::new(std::io::ErrorKind::InvalidData, e))?;
        fs::write(&tmp, bytes)?;
        fs::rename(&tmp, &self.path)
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use serde::Deserialize;

    struct TempFile(PathBuf);
    impl TempFile {
        fn new(tag: &str) -> Self {
            TempFile(std::env::temp_dir().join(format!(
                "lightor-kv-{tag}-{}-{}.json",
                std::process::id(),
                std::time::SystemTime::now()
                    .duration_since(std::time::UNIX_EPOCH)
                    .unwrap()
                    .as_nanos()
            )))
        }
    }
    impl Drop for TempFile {
        fn drop(&mut self) {
            let _ = fs::remove_file(&self.0);
            let _ = fs::remove_file(self.0.with_extension("tmp"));
        }
    }

    #[derive(Serialize, Deserialize, PartialEq, Debug)]
    struct Dot {
        at: f64,
        score: f64,
    }

    #[test]
    fn put_get_remove() {
        let f = TempFile::new("pgr");
        let mut kv = KvStore::open(&f.0).unwrap();
        kv.put(
            "dot:1",
            &Dot {
                at: 100.0,
                score: 0.9,
            },
        )
        .unwrap();
        assert_eq!(
            kv.get::<Dot>("dot:1"),
            Some(Dot {
                at: 100.0,
                score: 0.9
            })
        );
        assert_eq!(kv.get::<Dot>("dot:2"), None);
        assert!(kv.remove("dot:1").unwrap());
        assert!(!kv.remove("dot:1").unwrap());
        assert!(kv.is_empty());
    }

    #[test]
    fn persists_across_reopen() {
        let f = TempFile::new("persist");
        {
            let mut kv = KvStore::open(&f.0).unwrap();
            kv.put("model", &"weights".to_owned()).unwrap();
        }
        let kv = KvStore::open(&f.0).unwrap();
        assert_eq!(kv.get::<String>("model"), Some("weights".to_owned()));
        assert_eq!(kv.len(), 1);
    }

    #[test]
    fn prefix_listing() {
        let f = TempFile::new("prefix");
        let mut kv = KvStore::open(&f.0).unwrap();
        kv.put("dots:v1:0", &1.0).unwrap();
        kv.put("dots:v1:1", &2.0).unwrap();
        kv.put("dots:v2:0", &3.0).unwrap();
        kv.put("model:main", &4.0).unwrap();
        assert_eq!(kv.keys_with_prefix("dots:v1:").len(), 2);
        assert_eq!(kv.keys_with_prefix("dots:").len(), 3);
        assert_eq!(kv.keys_with_prefix("zzz").len(), 0);
    }

    #[test]
    fn corrupt_snapshot_degrades_to_empty() {
        let f = TempFile::new("corrupt");
        fs::write(&f.0, b"{definitely not json").unwrap();
        let kv = KvStore::open(&f.0).unwrap();
        assert!(kv.is_empty());
    }

    #[test]
    fn type_mismatch_yields_none() {
        let f = TempFile::new("mismatch");
        let mut kv = KvStore::open(&f.0).unwrap();
        kv.put("k", &"string".to_owned()).unwrap();
        assert_eq!(kv.get::<f64>("k"), None);
    }
}
