//! A sharded JSON key-value store with a write-ahead log — holds trained
//! model bundles and the continuously refined red-dot state ("the
//! refined results will be stored in the database continuously",
//! Section VI-A).
//!
//! # On-disk layout
//!
//! The store is a directory:
//!
//! ```text
//! <dir>/shard-00.json .. shard-07.json   per-shard snapshots (pretty JSON maps)
//! <dir>/wal.log                          write-ahead log (framed JSON ops)
//! ```
//!
//! Keys are routed to a shard by hashing their *prefix segment* (the
//! part up to and including the first `:`, e.g. `video:` for
//! `video:42`), so one logical namespace stays together and a `put`
//! only ever dirties one shard.
//!
//! # Write path
//!
//! Every `put`/`remove` appends one CRC-framed op to the WAL and
//! `fsync`s it — durability is per-operation, but the cost is O(op),
//! not O(store). Snapshots are amortized: once the WAL accumulates
//! [`KvConfig::snapshot_every_ops`] ops (or `snapshot_every_bytes`
//! bytes), the dirty shards are rewritten atomically (temp file +
//! `sync_all` + rename + parent-directory fsync) and the WAL is
//! truncated. The old design rewrote the whole store on every `put`.
//!
//! # Recovery
//!
//! `open` loads every shard snapshot *strictly* — a corrupt shard is an
//! [`InvalidData`](std::io::ErrorKind::InvalidData) error, never a
//! silently empty store — then replays the WAL on top. A torn WAL tail
//! (crash mid-append) is detected by the length/CRC framing and
//! truncated away; everything before it is applied and re-marked dirty
//! so the next snapshot persists it. Orphaned `*.tmp` files from a
//! crash mid-snapshot are removed.
//!
//! A legacy monolithic snapshot (a single JSON file at the store path,
//! the pre-shard layout) is migrated on open: parsed strictly, staged
//! aside as `<dir>.migrating`, split into shards, and only deleted
//! once the sharded layout is durably written — a crash anywhere in
//! between resumes from the staged copy on the next open.

use super::{crc32, sync_dir, FaultInjector};
use serde::de::DeserializeOwned;
use serde::Serialize;
use std::collections::BTreeMap;
use std::fs::{self, File, OpenOptions};
use std::io::{Seek, SeekFrom};
use std::path::{Path, PathBuf};

/// Number of snapshot shards (prefix-hashed).
pub const SHARD_COUNT: usize = 8;

/// WAL frame header: `[len: u32 LE][crc32(payload): u32 LE]`.
const WAL_HEADER: usize = 8;

/// Snapshot/WAL tuning knobs.
#[derive(Clone, Copy, Debug, PartialEq, Eq)]
pub struct KvConfig {
    /// Snapshot once this many ops are pending in the WAL.
    pub snapshot_every_ops: u64,
    /// Snapshot once the WAL grows past this many bytes.
    pub snapshot_every_bytes: u64,
}

impl Default for KvConfig {
    fn default() -> Self {
        KvConfig {
            snapshot_every_ops: 256,
            snapshot_every_bytes: 1 << 20,
        }
    }
}

/// Point-in-time persistence counters (see [`KvStore::stats`]).
#[derive(Clone, Copy, Debug, Default, PartialEq, Eq)]
pub struct KvStats {
    /// Bytes currently pending in the WAL (since the last snapshot).
    pub wal_bytes: u64,
    /// Ops currently pending in the WAL (since the last snapshot).
    pub wal_pending_ops: u64,
    /// WAL appends since open.
    pub wal_appends: u64,
    /// Shard snapshot rewrites since open.
    pub shard_rewrites: u64,
}

/// String-keyed JSON store persisted as sharded snapshots plus a WAL.
#[derive(Debug)]
pub struct KvStore {
    dir: PathBuf,
    cfg: KvConfig,
    map: BTreeMap<String, serde_json::Value>,
    dirty: [bool; SHARD_COUNT],
    wal: File,
    wal_bytes: u64,
    wal_pending_ops: u64,
    wal_appends: u64,
    shard_rewrites: u64,
    fault: FaultInjector,
    /// Monotonic in-memory op sequence — the migration watermark. Keys
    /// present at open (snapshot + replayed WAL tail) all carry seq 1;
    /// every later `put`/`remove` bumps the counter. The counter resets
    /// on reopen, so delta exports are only meaningful within one
    /// process lifetime (a restarted source re-exports in full).
    seq: u64,
    /// Last mutation seq per live key.
    seqs: BTreeMap<String, u64>,
}

/// Shard a key by its prefix segment (up to and including the first
/// `:`, or the whole key when it has none).
fn shard_of(key: &str) -> usize {
    let prefix = match key.find(':') {
        Some(i) => &key[..=i],
        None => key,
    };
    crc32(prefix.as_bytes()) as usize % SHARD_COUNT
}

fn shard_path(dir: &Path, shard: usize) -> PathBuf {
    dir.join(format!("shard-{shard:02}.json"))
}

fn wal_path(dir: &Path) -> PathBuf {
    dir.join("wal.log")
}

fn invalid_data(msg: impl std::fmt::Display) -> std::io::Error {
    std::io::Error::new(std::io::ErrorKind::InvalidData, msg.to_string())
}

/// Where a legacy monolithic snapshot is staged during migration
/// (`<dir>.migrating`): the original bytes must survive until the
/// sharded layout is durably written.
fn migrating_path(dir: &Path) -> PathBuf {
    let mut os = dir.as_os_str().to_owned();
    os.push(".migrating");
    PathBuf::from(os)
}

/// `fsync` `path`'s parent directory (no-op when it has none).
fn sync_parent(path: &Path) -> std::io::Result<()> {
    match path.parent() {
        Some(p) if !p.as_os_str().is_empty() => sync_dir(p),
        _ => Ok(()),
    }
}

impl KvStore {
    /// Open (or create) the store at `path` with default tuning.
    ///
    /// A pre-shard monolithic snapshot file at `path` is migrated to
    /// the directory layout; a corrupt snapshot (legacy or shard) is an
    /// `InvalidData` error, never a silently empty store.
    pub fn open(path: impl Into<PathBuf>) -> std::io::Result<Self> {
        Self::open_with(path, KvConfig::default())
    }

    /// Open (or create) the store at `path` with explicit tuning.
    pub fn open_with(path: impl Into<PathBuf>, cfg: KvConfig) -> std::io::Result<Self> {
        let dir = path.into();
        // A legacy monolithic snapshot is *staged aside*, not deleted:
        // its bytes are the only durable copy of the store until the
        // sharded layout is written and synced at the end of this open.
        // A crash mid-migration leaves the staged file, and the next
        // open resumes from it.
        let staged = migrating_path(&dir);
        let legacy = if fs::metadata(&dir).is_ok_and(|m| m.is_file()) {
            // Parse before renaming so a corrupt file errors out
            // untouched, in place, for forensics.
            let map = Self::read_legacy(&dir)?;
            fs::rename(&dir, &staged)?;
            sync_parent(&dir)?;
            Some(map)
        } else if staged.is_file() {
            Some(Self::read_legacy(&staged)?)
        } else {
            None
        };
        fs::create_dir_all(&dir)?;

        // A crash mid-snapshot can leave temp files behind; they were
        // never renamed into place, so they are dead weight.
        for entry in fs::read_dir(&dir)? {
            let p = entry?.path();
            if p.extension().is_some_and(|e| e == "tmp") {
                fs::remove_file(&p)?;
            }
        }

        let mut map = BTreeMap::new();
        let mut dirty = [false; SHARD_COUNT];
        for (shard, flag) in dirty.iter_mut().enumerate() {
            let p = shard_path(&dir, shard);
            match fs::read(&p) {
                Ok(bytes) => {
                    let part: BTreeMap<String, serde_json::Value> = serde_json::from_slice(&bytes)
                        .map_err(|e| {
                            invalid_data(format!("corrupt shard snapshot {}: {e:?}", p.display()))
                        })?;
                    map.extend(part);
                }
                Err(e) if e.kind() == std::io::ErrorKind::NotFound => {}
                Err(e) => return Err(e),
            }
            // A migrated legacy store must land in the shard files even
            // if no further write ever happens.
            *flag = legacy.is_some();
        }
        let migrated = legacy.is_some();
        if let Some(legacy_map) = legacy {
            map.extend(legacy_map);
        }

        // Replay the WAL on top of the snapshots. A torn tail is
        // truncated; complete ops are applied and their shards re-marked
        // dirty so the next snapshot persists them.
        let wp = wal_path(&dir);
        let mut wal_bytes = 0u64;
        let mut wal_pending_ops = 0u64;
        if let Ok(buf) = fs::read(&wp) {
            let (valid, ops) = Self::replay_wal(&buf, &mut map, &mut dirty)?;
            if valid < buf.len() as u64 {
                let f = OpenOptions::new().write(true).open(&wp)?;
                f.set_len(valid)?;
                f.sync_all()?;
            }
            wal_bytes = valid;
            wal_pending_ops = ops;
        }
        let mut wal = OpenOptions::new()
            .create(true)
            .read(true)
            .write(true)
            .truncate(false) // replay already trimmed the torn tail
            .open(&wp)?;
        wal.seek(SeekFrom::Start(wal_bytes))?;
        // "WAL-durable on return" needs the store directory itself (and
        // the fresh wal.log's entry in it) to survive a crash, not just
        // the file's data blocks.
        sync_dir(&dir)?;
        sync_parent(&dir)?;

        let seq = u64::from(!map.is_empty());
        let seqs: BTreeMap<String, u64> = map.keys().map(|k| (k.clone(), seq)).collect();
        let mut store = KvStore {
            dir,
            cfg,
            map,
            dirty,
            wal,
            wal_bytes,
            wal_pending_ops,
            wal_appends: 0,
            shard_rewrites: 0,
            fault: FaultInjector::new(),
            seq,
            seqs,
        };
        // Migration writes through immediately, and only then retires
        // the staged legacy file — the point of no return comes after
        // the sharded copy is durable.
        if migrated {
            store.snapshot()?;
            fs::remove_file(&staged)?;
            sync_parent(&staged)?;
        }
        Ok(store)
    }

    /// Parse a legacy monolithic snapshot file strictly.
    fn read_legacy(path: &Path) -> std::io::Result<BTreeMap<String, serde_json::Value>> {
        let bytes = fs::read(path)?;
        serde_json::from_slice(&bytes)
            .map_err(|e| invalid_data(format!("corrupt legacy snapshot {}: {e:?}", path.display())))
    }

    /// Apply every complete WAL frame to `map`; returns the byte length
    /// of the valid prefix and the number of ops applied. A frame whose
    /// length or CRC does not check out ends the replay (crash mid-
    /// append); a frame that parses but is not a known op is corruption
    /// and errors out.
    fn replay_wal(
        buf: &[u8],
        map: &mut BTreeMap<String, serde_json::Value>,
        dirty: &mut [bool; SHARD_COUNT],
    ) -> std::io::Result<(u64, u64)> {
        let mut pos = 0usize;
        let mut ops = 0u64;
        while pos + WAL_HEADER <= buf.len() {
            let len = u32::from_le_bytes(buf[pos..pos + 4].try_into().unwrap()) as usize;
            let crc = u32::from_le_bytes(buf[pos + 4..pos + 8].try_into().unwrap());
            let end = pos + WAL_HEADER + len;
            if end > buf.len() || crc32(&buf[pos + WAL_HEADER..end]) != crc {
                break;
            }
            let op: serde_json::Value = serde_json::from_slice(&buf[pos + WAL_HEADER..end])
                .map_err(|e| invalid_data(format!("corrupt WAL op: {e:?}")))?;
            match &op {
                serde_json::Value::Seq(items) => match items.as_slice() {
                    [serde_json::Value::Str(tag), serde_json::Value::Str(key), value]
                        if tag == "p" =>
                    {
                        dirty[shard_of(key)] = true;
                        map.insert(key.clone(), value.clone());
                    }
                    [serde_json::Value::Str(tag), serde_json::Value::Str(key)] if tag == "r" => {
                        dirty[shard_of(key)] = true;
                        map.remove(key);
                    }
                    _ => return Err(invalid_data("unknown WAL op shape")),
                },
                _ => return Err(invalid_data("WAL op is not a sequence")),
            }
            ops += 1;
            pos = end;
        }
        Ok((pos as u64, ops))
    }

    /// Insert or replace a value; the op is WAL-durable on return.
    pub fn put<T: Serialize>(&mut self, key: &str, value: &T) -> std::io::Result<()> {
        let v = serde_json::to_value(value).map_err(|e| invalid_data(format!("{e:?}")))?;
        // Print the op straight from borrows — no clone of the value
        // tree just to frame it.
        let key_json = serde_json::to_string(key).map_err(|e| invalid_data(format!("{e:?}")))?;
        let payload = format!("[\"p\",{key_json},{}]", serde_json::value_to_string(&v));
        self.append_wal(payload.as_bytes())?;
        self.dirty[shard_of(key)] = true;
        self.map.insert(key.to_owned(), v);
        self.seq += 1;
        self.seqs.insert(key.to_owned(), self.seq);
        self.maybe_snapshot()
    }

    /// Fetch and deserialize a value (borrowed-tree decode, no clone of
    /// the stored `Value`).
    pub fn get<T: DeserializeOwned>(&self, key: &str) -> Option<T> {
        self.map
            .get(key)
            .and_then(|v| serde_json::from_value_ref(v).ok())
    }

    /// Remove a key; the op is WAL-durable on return. Returns whether it
    /// existed.
    pub fn remove(&mut self, key: &str) -> std::io::Result<bool> {
        if !self.map.contains_key(key) {
            return Ok(false);
        }
        let key_json = serde_json::to_string(key).map_err(|e| invalid_data(format!("{e:?}")))?;
        self.append_wal(format!("[\"r\",{key_json}]").as_bytes())?;
        self.dirty[shard_of(key)] = true;
        self.map.remove(key);
        self.seq += 1;
        self.seqs.remove(key);
        self.maybe_snapshot()?;
        Ok(true)
    }

    /// The current op-sequence watermark: the seq of the most recent
    /// mutation (0 for a store that has never held a key). Monotonic
    /// within one open; resets on reopen (see the `seq` field docs).
    pub fn current_seq(&self) -> u64 {
        self.seq
    }

    /// Export every live `(key, value)` under `prefix` whose last
    /// mutation seq is *greater than* `since` (`since = 0` exports the
    /// full prefix). The companion watermark for a later delta export
    /// is [`KvStore::current_seq`] sampled at the same moment — the
    /// snapshot + WAL-tail shipping primitive for live shard migration.
    pub fn export_since(&self, prefix: &str, since: u64) -> Vec<(String, serde_json::Value)> {
        self.map
            .range(prefix.to_owned()..)
            .take_while(|(k, _)| k.starts_with(prefix))
            .filter(|(k, _)| self.seqs.get(*k).copied().unwrap_or(0) > since)
            .map(|(k, v)| (k.clone(), v.clone()))
            .collect()
    }

    /// All keys with the given prefix, sorted.
    pub fn keys_with_prefix(&self, prefix: &str) -> Vec<String> {
        self.map
            .keys()
            .filter(|k| k.starts_with(prefix))
            .cloned()
            .collect()
    }

    /// Number of keys.
    pub fn len(&self) -> usize {
        self.map.len()
    }

    /// True when the store holds no keys.
    pub fn is_empty(&self) -> bool {
        self.map.is_empty()
    }

    /// The store's fault injector (no-op unless faults are armed).
    pub fn fault_injector(&self) -> &FaultInjector {
        &self.fault
    }

    /// Route this store's instrumented I/O through `injector` (shared
    /// with other stores / test code).
    pub fn set_fault_injector(&mut self, injector: FaultInjector) {
        self.fault = injector;
    }

    /// Persistence counters.
    pub fn stats(&self) -> KvStats {
        KvStats {
            wal_bytes: self.wal_bytes,
            wal_pending_ops: self.wal_pending_ops,
            wal_appends: self.wal_appends,
            shard_rewrites: self.shard_rewrites,
        }
    }

    /// Append one framed op to the WAL and fsync it.
    fn append_wal(&mut self, payload: &[u8]) -> std::io::Result<()> {
        let mut frame = Vec::with_capacity(WAL_HEADER + payload.len());
        frame.extend_from_slice(&(payload.len() as u32).to_le_bytes());
        frame.extend_from_slice(&crc32(payload).to_le_bytes());
        frame.extend_from_slice(payload);
        // A previously failed append can leave partial bytes past the
        // durable prefix; start every frame at the tracked offset and
        // trim on failure, so garbage never sits *before* a frame we
        // later acknowledge (replay stops at the first bad frame).
        self.wal.seek(SeekFrom::Start(self.wal_bytes))?;
        if let Err(e) = self
            .fault
            .write_all("kv.wal.write", &mut self.wal, &frame)
            .and_then(|()| self.fault.sync_data("kv.wal.sync", &self.wal))
        {
            let _ = self.fault.set_len("kv.wal.trim", &self.wal, self.wal_bytes);
            return Err(e);
        }
        self.wal_bytes += frame.len() as u64;
        self.wal_pending_ops += 1;
        self.wal_appends += 1;
        Ok(())
    }

    fn maybe_snapshot(&mut self) -> std::io::Result<()> {
        if self.wal_pending_ops >= self.cfg.snapshot_every_ops
            || self.wal_bytes >= self.cfg.snapshot_every_bytes
        {
            self.snapshot()?;
        }
        Ok(())
    }

    /// Rewrite every dirty shard snapshot atomically, then truncate the
    /// WAL. Public so callers (service shutdown, benches) can force the
    /// amortized work to a known point.
    pub fn snapshot(&mut self) -> std::io::Result<()> {
        // One partitioning pass over the map — one shard hash per key —
        // instead of a full rescan per dirty shard. A dirty shard with
        // no surviving keys still gets written: its empty snapshot must
        // overwrite whatever stale file is on disk.
        let mut parts: [Option<Vec<(&String, &serde_json::Value)>>; SHARD_COUNT] =
            std::array::from_fn(|shard| self.dirty[shard].then(Vec::new));
        for (k, v) in &self.map {
            if let Some(part) = &mut parts[shard_of(k)] {
                part.push((k, v));
            }
        }
        let mut renamed = false;
        for (shard, part) in parts.into_iter().enumerate() {
            let Some(part) = part else {
                continue;
            };
            let owned: BTreeMap<String, serde_json::Value> = part
                .into_iter()
                .map(|(k, v)| (k.clone(), v.clone()))
                .collect();
            let bytes =
                serde_json::to_vec_pretty(&owned).map_err(|e| invalid_data(format!("{e:?}")))?;
            let path = shard_path(&self.dir, shard);
            let tmp = path.with_extension("json.tmp");
            let mut f = File::create(&tmp)?;
            self.fault.write_all("kv.shard.write", &mut f, &bytes)?;
            // The snapshot's data must hit disk before the rename
            // publishes it.
            self.fault.sync_all("kv.shard.sync", &f)?;
            drop(f);
            fs::rename(&tmp, &path)?;
            renamed = true;
            self.dirty[shard] = false;
            self.shard_rewrites += 1;
        }
        if renamed {
            sync_dir(&self.dir)?;
        }
        // The shards now cover everything: retire the WAL. If we crash
        // between the renames and this truncate, replay is idempotent.
        self.wal.set_len(0)?;
        self.wal.seek(SeekFrom::Start(0))?;
        self.wal.sync_all()?;
        self.wal_bytes = 0;
        self.wal_pending_ops = 0;
        Ok(())
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use serde::Deserialize;
    use std::io::Write;

    struct TempDir(PathBuf);
    impl TempDir {
        fn new(tag: &str) -> Self {
            TempDir(std::env::temp_dir().join(format!(
                "lightor-kv-{tag}-{}-{}",
                std::process::id(),
                std::time::SystemTime::now()
                    .duration_since(std::time::UNIX_EPOCH)
                    .unwrap()
                    .as_nanos()
            )))
        }
    }
    impl Drop for TempDir {
        fn drop(&mut self) {
            let _ = fs::remove_dir_all(&self.0);
            let _ = fs::remove_file(&self.0);
            let _ = fs::remove_file(migrating_path(&self.0));
        }
    }

    #[derive(Serialize, Deserialize, PartialEq, Debug)]
    struct Dot {
        at: f64,
        score: f64,
    }

    #[test]
    fn put_get_remove() {
        let d = TempDir::new("pgr");
        let mut kv = KvStore::open(&d.0).unwrap();
        kv.put(
            "dot:1",
            &Dot {
                at: 100.0,
                score: 0.9,
            },
        )
        .unwrap();
        assert_eq!(
            kv.get::<Dot>("dot:1"),
            Some(Dot {
                at: 100.0,
                score: 0.9
            })
        );
        assert_eq!(kv.get::<Dot>("dot:2"), None);
        assert!(kv.remove("dot:1").unwrap());
        assert!(!kv.remove("dot:1").unwrap());
        assert!(kv.is_empty());
    }

    #[test]
    fn persists_across_reopen_via_wal() {
        let d = TempDir::new("persist");
        {
            let mut kv = KvStore::open(&d.0).unwrap();
            kv.put("model", &"weights".to_owned()).unwrap();
            // No snapshot happened (threshold is 256 ops): the value
            // lives only in the WAL at this point.
            assert_eq!(kv.stats().shard_rewrites, 0);
            assert_eq!(kv.stats().wal_pending_ops, 1);
        }
        let kv = KvStore::open(&d.0).unwrap();
        assert_eq!(kv.get::<String>("model"), Some("weights".to_owned()));
        assert_eq!(kv.len(), 1);
    }

    #[test]
    fn prefix_listing() {
        let d = TempDir::new("prefix");
        let mut kv = KvStore::open(&d.0).unwrap();
        kv.put("dots:v1:0", &1.0).unwrap();
        kv.put("dots:v1:1", &2.0).unwrap();
        kv.put("dots:v2:0", &3.0).unwrap();
        kv.put("model:main", &4.0).unwrap();
        assert_eq!(kv.keys_with_prefix("dots:v1:").len(), 2);
        assert_eq!(kv.keys_with_prefix("dots:").len(), 3);
        assert_eq!(kv.keys_with_prefix("zzz").len(), 0);
    }

    #[test]
    fn corrupt_legacy_snapshot_is_an_error() {
        // The old behavior silently replaced a corrupt store with an
        // empty one — the data-loss bug this store exists to fix.
        let d = TempDir::new("corrupt-legacy");
        fs::write(&d.0, b"{definitely not json").unwrap();
        let err = KvStore::open(&d.0).unwrap_err();
        assert_eq!(err.kind(), std::io::ErrorKind::InvalidData);
        // The corrupt file is left in place for forensics.
        assert!(d.0.is_file());
    }

    #[test]
    fn corrupt_shard_snapshot_is_an_error() {
        let d = TempDir::new("corrupt-shard");
        {
            let mut kv = KvStore::open(&d.0).unwrap();
            kv.put("video:1", &1.0).unwrap();
            kv.snapshot().unwrap();
        }
        // Mangle whichever shard holds the key.
        let shard = shard_path(&d.0, shard_of("video:1"));
        fs::write(&shard, b"[1, 2, oops").unwrap();
        let err = KvStore::open(&d.0).unwrap_err();
        assert_eq!(err.kind(), std::io::ErrorKind::InvalidData);
    }

    #[test]
    fn legacy_monolithic_file_migrates_to_shards() {
        let d = TempDir::new("migrate");
        let legacy = serde_json::to_vec_pretty(
            &[
                ("video:1".to_owned(), serde_json::Value::F64(1.5)),
                ("model:main".to_owned(), serde_json::Value::U64(9)),
            ]
            .into_iter()
            .collect::<BTreeMap<String, serde_json::Value>>(),
        )
        .unwrap();
        fs::write(&d.0, legacy).unwrap();
        {
            let kv = KvStore::open(&d.0).unwrap();
            assert_eq!(kv.get::<f64>("video:1"), Some(1.5));
            assert_eq!(kv.get::<u64>("model:main"), Some(9));
            // The migration snapshotted immediately: the data is durable
            // in the new layout even if nothing else is ever written.
            assert!(kv.stats().shard_rewrites > 0);
        }
        assert!(d.0.is_dir());
        let kv = KvStore::open(&d.0).unwrap();
        assert_eq!(kv.len(), 2);
        assert_eq!(kv.get::<f64>("video:1"), Some(1.5));
    }

    #[test]
    fn crashed_migration_resumes_from_staged_file() {
        // A kill after the legacy file was staged aside but before the
        // sharded layout was durably written must not lose the store:
        // the next open resumes from `<dir>.migrating`.
        let d = TempDir::new("migrate-crash");
        let legacy = serde_json::to_vec_pretty(
            &[("video:7".to_owned(), serde_json::Value::F64(7.5))]
                .into_iter()
                .collect::<BTreeMap<String, serde_json::Value>>(),
        )
        .unwrap();
        fs::write(migrating_path(&d.0), legacy).unwrap();
        // The crash also left a half-made store dir with one empty shard.
        fs::create_dir_all(&d.0).unwrap();
        fs::write(shard_path(&d.0, 0), b"{}").unwrap();

        let kv = KvStore::open(&d.0).unwrap();
        assert_eq!(kv.get::<f64>("video:7"), Some(7.5));
        assert!(
            !migrating_path(&d.0).exists(),
            "staged file must be retired only after a completed migration"
        );
        // And the migrated state is durable in the new layout.
        drop(kv);
        let kv = KvStore::open(&d.0).unwrap();
        assert_eq!(kv.get::<f64>("video:7"), Some(7.5));
    }

    #[test]
    fn torn_wal_tail_is_truncated() {
        let d = TempDir::new("torn-wal");
        {
            let mut kv = KvStore::open(&d.0).unwrap();
            kv.put("a", &1.0).unwrap();
            kv.put("b", &2.0).unwrap();
        }
        // Crash mid-append: garbage half-frame at the WAL tail.
        let mut f = OpenOptions::new()
            .append(true)
            .open(wal_path(&d.0))
            .unwrap();
        f.write_all(&[0xFF, 0xFF, 0x00, 0x00, 0x12]).unwrap();
        drop(f);

        let mut kv = KvStore::open(&d.0).unwrap();
        assert_eq!(kv.get::<f64>("a"), Some(1.0));
        assert_eq!(kv.get::<f64>("b"), Some(2.0));
        // The store keeps accepting writes after recovery.
        kv.put("c", &3.0).unwrap();
        drop(kv);
        let kv = KvStore::open(&d.0).unwrap();
        assert_eq!(kv.len(), 3);
    }

    #[test]
    fn orphaned_tmp_files_are_removed_on_open() {
        let d = TempDir::new("orphan");
        {
            let mut kv = KvStore::open(&d.0).unwrap();
            kv.put("k", &1.0).unwrap();
        }
        let orphan = d.0.join("shard-03.json.tmp");
        fs::write(&orphan, b"half a snapsh").unwrap();
        let kv = KvStore::open(&d.0).unwrap();
        assert!(!orphan.exists(), "stale tmp file survived open");
        assert_eq!(kv.get::<f64>("k"), Some(1.0));
    }

    #[test]
    fn kill_between_append_and_snapshot_replays_wal() {
        let d = TempDir::new("kill");
        {
            // Snapshot at every 4th op: two full snapshot cycles, then
            // three ops stranded in the WAL when the "process dies".
            let cfg = KvConfig {
                snapshot_every_ops: 4,
                snapshot_every_bytes: u64::MAX,
            };
            let mut kv = KvStore::open_with(&d.0, cfg).unwrap();
            for i in 0..11 {
                kv.put(&format!("video:{i}"), &(i as f64)).unwrap();
            }
            assert_eq!(kv.stats().wal_pending_ops, 3);
            // Simulate a kill: drop without snapshotting.
        }
        let kv = KvStore::open(&d.0).unwrap();
        assert_eq!(kv.len(), 11);
        for i in 0..11 {
            assert_eq!(kv.get::<f64>(&format!("video:{i}")), Some(i as f64));
        }
        // The replayed ops are still pending: a snapshot must persist
        // them before the WAL can be retired.
        assert_eq!(kv.stats().wal_pending_ops, 3);
    }

    #[test]
    fn snapshot_threshold_rewrites_only_dirty_shards() {
        let d = TempDir::new("threshold");
        let cfg = KvConfig {
            snapshot_every_ops: 3,
            snapshot_every_bytes: u64::MAX,
        };
        let mut kv = KvStore::open_with(&d.0, cfg).unwrap();
        // Three puts under one prefix → one shard dirty → threshold
        // fires → exactly one shard rewritten, WAL reset.
        kv.put("video:1", &1.0).unwrap();
        kv.put("video:2", &2.0).unwrap();
        kv.put("video:3", &3.0).unwrap();
        let s = kv.stats();
        assert_eq!(s.shard_rewrites, 1);
        assert_eq!(s.wal_pending_ops, 0);
        assert_eq!(s.wal_bytes, 0);
        assert_eq!(s.wal_appends, 3);
        // And the shard file alone (no WAL) round-trips the data.
        drop(kv);
        let kv = KvStore::open(&d.0).unwrap();
        assert_eq!(kv.len(), 3);
        assert_eq!(kv.get::<f64>("video:2"), Some(2.0));
    }

    #[test]
    fn removes_survive_snapshot_and_replay() {
        let d = TempDir::new("remove");
        {
            let mut kv = KvStore::open(&d.0).unwrap();
            kv.put("a", &1.0).unwrap();
            kv.put("b", &2.0).unwrap();
            kv.snapshot().unwrap();
            // This remove lives only in the WAL.
            kv.remove("a").unwrap();
        }
        let kv = KvStore::open(&d.0).unwrap();
        assert_eq!(kv.get::<f64>("a"), None);
        assert_eq!(kv.get::<f64>("b"), Some(2.0));
        assert_eq!(kv.len(), 1);
    }

    #[test]
    fn export_since_tracks_mutation_watermarks() {
        let d = TempDir::new("export");
        let mut kv = KvStore::open(&d.0).unwrap();
        assert_eq!(kv.current_seq(), 0, "empty store starts at watermark 0");
        kv.put("video:1", &1.0).unwrap();
        kv.put("video:2", &2.0).unwrap();
        kv.put("model:main", &9.0).unwrap();

        // Full export: everything under the prefix, nothing else.
        let full = kv.export_since("video:", 0);
        assert_eq!(
            full.iter().map(|(k, _)| k.as_str()).collect::<Vec<_>>(),
            vec!["video:1", "video:2"]
        );

        // Delta export: only keys mutated after the watermark.
        let mark = kv.current_seq();
        assert_eq!(kv.export_since("video:", mark).len(), 0);
        kv.put("video:2", &2.5).unwrap();
        let delta = kv.export_since("video:", mark);
        assert_eq!(delta.len(), 1);
        assert_eq!(delta[0].0, "video:2");
        assert_eq!(serde_json::from_value_ref::<f64>(&delta[0].1).unwrap(), 2.5);

        // Exported values round-trip through put on a second store.
        let d2 = TempDir::new("export-dst");
        let mut dst = KvStore::open(&d2.0).unwrap();
        for (k, v) in kv.export_since("video:", 0) {
            dst.put(&k, &v).unwrap();
        }
        assert_eq!(dst.get::<f64>("video:2"), Some(2.5));
        assert_eq!(dst.get::<f64>("video:1"), Some(1.0));
    }

    #[test]
    fn reopen_resets_the_watermark_to_a_full_export() {
        let d = TempDir::new("export-reopen");
        {
            let mut kv = KvStore::open(&d.0).unwrap();
            kv.put("video:1", &1.0).unwrap();
            kv.put("video:2", &2.0).unwrap();
        }
        // After a reopen the per-key seqs collapse to 1: a delta export
        // against a stale watermark would miss keys, so drivers must
        // re-export in full — and a full export still sees everything.
        let kv = KvStore::open(&d.0).unwrap();
        assert_eq!(kv.current_seq(), 1);
        assert_eq!(kv.export_since("video:", 0).len(), 2);
        assert_eq!(kv.export_since("video:", 1).len(), 0);
    }

    #[test]
    fn removed_keys_leave_the_export_set() {
        let d = TempDir::new("export-remove");
        let mut kv = KvStore::open(&d.0).unwrap();
        kv.put("video:1", &1.0).unwrap();
        kv.put("video:2", &2.0).unwrap();
        kv.remove("video:1").unwrap();
        let keys: Vec<String> = kv
            .export_since("video:", 0)
            .into_iter()
            .map(|(k, _)| k)
            .collect();
        assert_eq!(keys, vec!["video:2".to_owned()]);
    }

    #[test]
    fn type_mismatch_yields_none() {
        let d = TempDir::new("mismatch");
        let mut kv = KvStore::open(&d.0).unwrap();
        kv.put("k", &"string".to_owned()).unwrap();
        assert_eq!(kv.get::<f64>("k"), None);
    }
}
