//! Injectable I/O fault layer for crash/durability testing.
//!
//! The durability claims of the storage stack (WAL torn-tail recovery,
//! atomic snapshots, CRC-rejected reads) are only claims until they are
//! exercised under *failing* I/O. This module is the seam: every store
//! routes its critical writes, fsyncs, truncates, and record reads
//! through a shared [`FaultInjector`], which is a no-op in production
//! (one relaxed atomic load per operation) and lets tests arm precise
//! failures at named points — "fail the 3rd WAL append", "tear this
//! write after 5 bytes", "drop the tail of the next record read".
//!
//! Faults are runtime-armed (not `cfg(test)`-gated) so integration
//! tests of dependent crates — which compile this crate *without*
//! `cfg(test)` — can reach the seam through
//! [`LightorService::fault_injector`](crate::LightorService::fault_injector).
//! Each store instance carries its own injector, so tests sharing one
//! process never interfere.
//!
//! # Fault points
//!
//! | point | operation |
//! |---|---|
//! | `kv.wal.write` | WAL frame `write_all` |
//! | `kv.wal.sync` | WAL `sync_data` after an append |
//! | `kv.wal.trim` | `set_len` rollback after a failed append |
//! | `kv.shard.write` | shard snapshot `write_all` |
//! | `kv.shard.sync` | shard snapshot `sync_all` before rename |
//! | `log.append.write` | segment record `write_all` |
//! | `log.tok.write` | tokenized-companion (v3) record `write_all` |
//! | `log.sync` | segment `sync_data` |
//! | `log.read` | record read (post-read corruption) |

use parking_lot::Mutex;
use std::fs::File;
use std::io::Write;
use std::sync::atomic::{AtomicBool, Ordering};
use std::sync::Arc;

/// What an armed fault does to the operation it fires on.
#[derive(Clone, Copy, Debug, PartialEq, Eq)]
pub enum FaultKind {
    /// Fail the operation outright without touching the file.
    Error,
    /// Write only the first `keep` bytes (synced so they are really on
    /// disk), then fail — a crash mid-append leaving a torn frame.
    TornWrite {
        /// Bytes that make it to disk before the "crash".
        keep: usize,
    },
    /// Drop the last `drop_bytes` bytes of the data a read returned —
    /// a short read / partial sector, which CRC checks must catch.
    ShortRead {
        /// Bytes removed from the tail of the read buffer.
        drop_bytes: usize,
    },
}

/// One armed fault: fires on matches of `point`, after skipping the
/// first `skip` matching operations, for `times` operations.
#[derive(Clone, Copy, Debug)]
pub struct Fault {
    /// Which instrumented operation this fault targets (see the module
    /// docs for the point names).
    pub point: &'static str,
    /// Let this many matching operations through untouched first
    /// ("fail the Nth op" targeting).
    pub skip: u64,
    /// Fire on this many subsequent matches (`u64::MAX` ≈ forever).
    pub times: u64,
    /// What firing does.
    pub kind: FaultKind,
}

impl Fault {
    /// A fault that fires once, on the next matching operation.
    pub fn once(point: &'static str, kind: FaultKind) -> Self {
        Fault {
            point,
            skip: 0,
            times: 1,
            kind,
        }
    }

    /// A fault that fires on every matching operation until disarmed.
    pub fn always(point: &'static str, kind: FaultKind) -> Self {
        Fault {
            point,
            skip: 0,
            times: u64::MAX,
            kind,
        }
    }

    /// A fault that skips the first `skip` matches, then fires once.
    pub fn nth(point: &'static str, skip: u64, kind: FaultKind) -> Self {
        Fault {
            point,
            skip,
            times: 1,
            kind,
        }
    }
}

#[derive(Debug)]
struct ArmedFault {
    fault: Fault,
    seen: u64,
    fired: u64,
}

#[derive(Default)]
struct Inner {
    /// Fast path: skip the lock entirely while nothing is armed.
    enabled: AtomicBool,
    armed: Mutex<Vec<ArmedFault>>,
    /// Total fires per point since the last `disarm_all` (assertions).
    fired: Mutex<Vec<(&'static str, u64)>>,
}

/// A shareable set of armed I/O faults (cheaply cloneable handle).
///
/// The default injector has nothing armed and adds one relaxed atomic
/// load to each instrumented operation.
#[derive(Clone, Default)]
pub struct FaultInjector {
    inner: Arc<Inner>,
}

impl std::fmt::Debug for FaultInjector {
    fn fmt(&self, f: &mut std::fmt::Formatter<'_>) -> std::fmt::Result {
        f.debug_struct("FaultInjector")
            .field("armed", &self.inner.armed.lock().len())
            .finish()
    }
}

fn injected(point: &str) -> std::io::Error {
    std::io::Error::other(format!("injected fault at {point}"))
}

impl FaultInjector {
    /// An injector with nothing armed.
    pub fn new() -> Self {
        Self::default()
    }

    /// Arm one fault. Multiple faults may target the same point; the
    /// first armed one whose window covers the operation fires.
    pub fn arm(&self, fault: Fault) {
        self.inner.armed.lock().push(ArmedFault {
            fault,
            seen: 0,
            fired: 0,
        });
        self.inner.enabled.store(true, Ordering::SeqCst);
    }

    /// Disarm everything and reset the fired counters.
    pub fn disarm_all(&self) {
        self.inner.armed.lock().clear();
        self.inner.fired.lock().clear();
        self.inner.enabled.store(false, Ordering::SeqCst);
    }

    /// How many times faults at `point` have fired since the last
    /// [`FaultInjector::disarm_all`].
    pub fn fired(&self, point: &str) -> u64 {
        self.inner
            .fired
            .lock()
            .iter()
            .find(|(p, _)| *p == point)
            .map(|(_, n)| *n)
            .unwrap_or(0)
    }

    /// The fault to apply at `point` for this operation, if any.
    fn check(&self, point: &'static str) -> Option<FaultKind> {
        if !self.inner.enabled.load(Ordering::Relaxed) {
            return None;
        }
        let mut armed = self.inner.armed.lock();
        for a in armed.iter_mut() {
            if a.fault.point != point {
                continue;
            }
            a.seen += 1;
            if a.seen > a.fault.skip && a.fired < a.fault.times {
                a.fired += 1;
                let mut fired = self.inner.fired.lock();
                match fired.iter_mut().find(|(p, _)| *p == point) {
                    Some((_, n)) => *n += 1,
                    None => fired.push((point, 1)),
                }
                return Some(a.fault.kind);
            }
        }
        None
    }

    /// `write_all` through the seam. `TornWrite` persists its prefix
    /// (write + `sync_data`) so the torn bytes genuinely hit disk
    /// before the failure surfaces, like a crash mid-append.
    pub fn write_all(
        &self,
        point: &'static str,
        file: &mut File,
        buf: &[u8],
    ) -> std::io::Result<()> {
        match self.check(point) {
            None => file.write_all(buf),
            Some(FaultKind::Error) => Err(injected(point)),
            Some(FaultKind::TornWrite { keep }) => {
                let keep = keep.min(buf.len());
                file.write_all(&buf[..keep])?;
                file.sync_data()?;
                Err(injected(point))
            }
            // A read fault armed on a write point is a test bug; fail
            // loudly rather than silently succeeding.
            Some(FaultKind::ShortRead { .. }) => Err(injected(point)),
        }
    }

    /// `sync_data` through the seam.
    pub fn sync_data(&self, point: &'static str, file: &File) -> std::io::Result<()> {
        match self.check(point) {
            None => file.sync_data(),
            Some(_) => Err(injected(point)),
        }
    }

    /// `sync_all` through the seam.
    pub fn sync_all(&self, point: &'static str, file: &File) -> std::io::Result<()> {
        match self.check(point) {
            None => file.sync_all(),
            Some(_) => Err(injected(point)),
        }
    }

    /// `set_len` through the seam (failed-append rollback truncates).
    pub fn set_len(&self, point: &'static str, file: &File, len: u64) -> std::io::Result<()> {
        match self.check(point) {
            None => file.set_len(len),
            Some(_) => Err(injected(point)),
        }
    }

    /// Post-read corruption: `ShortRead` drops tail bytes from `buf`
    /// (the caller's CRC check must reject the remainder); `Error`
    /// fails the read outright.
    pub fn post_read(&self, point: &'static str, buf: &mut Vec<u8>) -> std::io::Result<()> {
        match self.check(point) {
            None => Ok(()),
            Some(FaultKind::ShortRead { drop_bytes }) => {
                let keep = buf.len().saturating_sub(drop_bytes);
                buf.truncate(keep);
                Ok(())
            }
            Some(_) => Err(injected(point)),
        }
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use std::io::Read;
    use std::path::PathBuf;

    struct TempFile(PathBuf);
    impl TempFile {
        fn new(tag: &str) -> Self {
            TempFile(std::env::temp_dir().join(format!(
                "lightor-fault-{tag}-{}-{}",
                std::process::id(),
                std::time::SystemTime::now()
                    .duration_since(std::time::UNIX_EPOCH)
                    .unwrap()
                    .as_nanos()
            )))
        }
    }
    impl Drop for TempFile {
        fn drop(&mut self) {
            let _ = std::fs::remove_file(&self.0);
        }
    }

    #[test]
    fn unarmed_injector_passes_io_through() {
        let t = TempFile::new("pass");
        let inj = FaultInjector::new();
        let mut f = File::create(&t.0).unwrap();
        inj.write_all("kv.wal.write", &mut f, b"hello").unwrap();
        inj.sync_data("kv.wal.sync", &f).unwrap();
        let mut buf = Vec::new();
        File::open(&t.0).unwrap().read_to_end(&mut buf).unwrap();
        assert_eq!(buf, b"hello");
        inj.post_read("log.read", &mut buf).unwrap();
        assert_eq!(buf, b"hello");
        assert_eq!(inj.fired("kv.wal.write"), 0);
    }

    #[test]
    fn once_fault_fires_exactly_once() {
        let t = TempFile::new("once");
        let inj = FaultInjector::new();
        inj.arm(Fault::once("kv.wal.sync", FaultKind::Error));
        let f = File::create(&t.0).unwrap();
        assert!(inj.sync_data("kv.wal.sync", &f).is_err());
        assert!(inj.sync_data("kv.wal.sync", &f).is_ok());
        assert_eq!(inj.fired("kv.wal.sync"), 1);
    }

    #[test]
    fn nth_fault_skips_then_fires() {
        let t = TempFile::new("nth");
        let inj = FaultInjector::new();
        inj.arm(Fault::nth("log.sync", 2, FaultKind::Error));
        let f = File::create(&t.0).unwrap();
        assert!(inj.sync_data("log.sync", &f).is_ok());
        assert!(inj.sync_data("log.sync", &f).is_ok());
        assert!(inj.sync_data("log.sync", &f).is_err());
        assert!(inj.sync_data("log.sync", &f).is_ok());
    }

    #[test]
    fn torn_write_persists_prefix_then_fails() {
        let t = TempFile::new("torn");
        let inj = FaultInjector::new();
        inj.arm(Fault::once(
            "kv.wal.write",
            FaultKind::TornWrite { keep: 3 },
        ));
        let mut f = File::create(&t.0).unwrap();
        assert!(inj.write_all("kv.wal.write", &mut f, b"abcdef").is_err());
        let mut buf = Vec::new();
        File::open(&t.0).unwrap().read_to_end(&mut buf).unwrap();
        assert_eq!(buf, b"abc", "exactly the torn prefix must be on disk");
    }

    #[test]
    fn short_read_drops_tail_bytes() {
        let inj = FaultInjector::new();
        inj.arm(Fault::once(
            "log.read",
            FaultKind::ShortRead { drop_bytes: 4 },
        ));
        let mut buf = b"payload".to_vec();
        inj.post_read("log.read", &mut buf).unwrap();
        assert_eq!(buf, b"pay");
        // Fault exhausted: next read is clean.
        let mut buf2 = b"payload".to_vec();
        inj.post_read("log.read", &mut buf2).unwrap();
        assert_eq!(buf2, b"payload");
    }

    #[test]
    fn faults_are_point_scoped_and_disarmable() {
        let t = TempFile::new("scope");
        let inj = FaultInjector::new();
        inj.arm(Fault::always("kv.wal.sync", FaultKind::Error));
        let f = File::create(&t.0).unwrap();
        assert!(inj.sync_data("log.sync", &f).is_ok(), "other points clean");
        assert!(inj.sync_data("kv.wal.sync", &f).is_err());
        assert!(inj.sync_data("kv.wal.sync", &f).is_err(), "always = sticky");
        inj.disarm_all();
        assert!(inj.sync_data("kv.wal.sync", &f).is_ok());
        assert_eq!(inj.fired("kv.wal.sync"), 0, "counters reset on disarm");
    }

    #[test]
    fn clones_share_the_armed_set() {
        let t = TempFile::new("clone");
        let inj = FaultInjector::new();
        let handle = inj.clone();
        handle.arm(Fault::once("kv.shard.sync", FaultKind::Error));
        let f = File::create(&t.0).unwrap();
        assert!(inj.sync_all("kv.shard.sync", &f).is_err());
        assert_eq!(handle.fired("kv.shard.sync"), 1);
    }
}
