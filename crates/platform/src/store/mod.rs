//! Embedded storage: segment log, chat store, sharded KV store.
//!
//! Three layers, each crash-safe on its own terms:
//!
//! * [`SegmentLog`] — a CRC-framed append-only log split across
//!   size-bounded segments. Torn tails are truncated on open;
//!   [`SegmentLog::compact`] rewrites live records into fresh segments
//!   and deletes the old ones, reclaiming bytes left behind by
//!   overwrites.
//! * [`ChatStore`] — per-video chat replays on the segment log, with a
//!   scan-built index, a read-through decoded-record cache, and
//!   live/dead byte accounting that drives [`ChatStore::compact`]
//!   (re-crawled videos orphan their previous records).
//! * [`KvStore`] — the refined red-dot / model state: prefix-sharded
//!   JSON snapshots fronted by an fsynced write-ahead log. Puts are
//!   O(op); snapshot rewrites are amortized by op/byte thresholds; a
//!   corrupt snapshot is an error, never a silently empty store.

mod chatstore;
mod fault;
pub mod format;
mod kv;
mod log;

pub use chatstore::{ChatStore, CompactStats};
pub use fault::{Fault, FaultInjector, FaultKind};
pub use format::TokenizedRecord;
pub use kv::{KvConfig, KvStats, KvStore, SHARD_COUNT};
pub use log::{CompactionOutcome, RecordId, SegmentLog};

/// `fsync` a directory so just-renamed/created/deleted entries inside
/// it survive a crash (file-level fsync alone does not cover the
/// directory entry).
pub(crate) fn sync_dir(dir: &std::path::Path) -> std::io::Result<()> {
    std::fs::File::open(dir)?.sync_all()
}

/// CRC-32 (IEEE) over a byte slice — integrity check for log records.
///
/// Slice-by-16: 16 lookup tables let each iteration fold 16 bytes with
/// independent loads, ~8× the byte-at-a-time throughput. Every log
/// read re-verifies its record's CRC, so this sits directly on the
/// cold corpus-load path (a v3 tokenized record is ~100 KB).
pub fn crc32(bytes: &[u8]) -> u32 {
    // 16 tables × 256 entries; table k advances a byte by k+1 positions.
    use std::sync::OnceLock;
    static TABLES: OnceLock<Box<[[u32; 256]; 16]>> = OnceLock::new();
    let t = TABLES.get_or_init(|| {
        let mut t = Box::new([[0u32; 256]; 16]);
        for i in 0..256usize {
            let mut c = i as u32;
            for _ in 0..8 {
                c = if c & 1 != 0 {
                    0xEDB8_8320 ^ (c >> 1)
                } else {
                    c >> 1
                };
            }
            t[0][i] = c;
        }
        for k in 1..16 {
            for i in 0..256usize {
                let prev = t[k - 1][i];
                t[k][i] = t[0][(prev & 0xFF) as usize] ^ (prev >> 8);
            }
        }
        t
    });
    let mut crc = 0xFFFF_FFFFu32;
    let mut chunks = bytes.chunks_exact(16);
    for chunk in &mut chunks {
        let a = u32::from_le_bytes(chunk[0..4].try_into().unwrap()) ^ crc;
        let b = u32::from_le_bytes(chunk[4..8].try_into().unwrap());
        let c = u32::from_le_bytes(chunk[8..12].try_into().unwrap());
        let d = u32::from_le_bytes(chunk[12..16].try_into().unwrap());
        crc = t[15][(a & 0xFF) as usize]
            ^ t[14][((a >> 8) & 0xFF) as usize]
            ^ t[13][((a >> 16) & 0xFF) as usize]
            ^ t[12][(a >> 24) as usize]
            ^ t[11][(b & 0xFF) as usize]
            ^ t[10][((b >> 8) & 0xFF) as usize]
            ^ t[9][((b >> 16) & 0xFF) as usize]
            ^ t[8][(b >> 24) as usize]
            ^ t[7][(c & 0xFF) as usize]
            ^ t[6][((c >> 8) & 0xFF) as usize]
            ^ t[5][((c >> 16) & 0xFF) as usize]
            ^ t[4][(c >> 24) as usize]
            ^ t[3][(d & 0xFF) as usize]
            ^ t[2][((d >> 8) & 0xFF) as usize]
            ^ t[1][((d >> 16) & 0xFF) as usize]
            ^ t[0][(d >> 24) as usize];
    }
    for &b in chunks.remainder() {
        crc = t[0][((crc ^ b as u32) & 0xFF) as usize] ^ (crc >> 8);
    }
    crc ^ 0xFFFF_FFFF
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn crc32_known_vectors() {
        // Standard check value for "123456789".
        assert_eq!(crc32(b"123456789"), 0xCBF4_3926);
        assert_eq!(crc32(b""), 0);
        assert_ne!(crc32(b"a"), crc32(b"b"));
    }

    #[test]
    fn crc32_sliced_matches_bytewise_reference() {
        // The slice-by-16 fast path must agree with the canonical
        // byte-at-a-time recurrence at every length that exercises the
        // chunked loop, the remainder loop, and their seam.
        fn reference(bytes: &[u8]) -> u32 {
            let mut crc = 0xFFFF_FFFFu32;
            for &b in bytes {
                crc ^= b as u32;
                for _ in 0..8 {
                    crc = if crc & 1 != 0 {
                        0xEDB8_8320 ^ (crc >> 1)
                    } else {
                        crc >> 1
                    };
                }
            }
            crc ^ 0xFFFF_FFFF
        }
        let data: Vec<u8> = (0..1024u32)
            .map(|i| (i.wrapping_mul(2654435761) >> 13) as u8)
            .collect();
        for len in (0..64).chain([255, 256, 257, 1000, 1024]) {
            assert_eq!(crc32(&data[..len]), reference(&data[..len]), "len {len}");
        }
    }
}
