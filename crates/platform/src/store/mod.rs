//! Embedded storage: segment log, chat store, KV snapshot store.

mod chatstore;
pub mod format;
mod kv;
mod log;

pub use chatstore::ChatStore;
pub use kv::KvStore;
pub use log::{RecordId, SegmentLog};

/// CRC-32 (IEEE) over a byte slice — integrity check for log records.
pub fn crc32(bytes: &[u8]) -> u32 {
    // Table-driven IEEE CRC-32; table built on first use.
    use std::sync::OnceLock;
    static TABLE: OnceLock<[u32; 256]> = OnceLock::new();
    let table = TABLE.get_or_init(|| {
        let mut t = [0u32; 256];
        for (i, entry) in t.iter_mut().enumerate() {
            let mut c = i as u32;
            for _ in 0..8 {
                c = if c & 1 != 0 {
                    0xEDB8_8320 ^ (c >> 1)
                } else {
                    c >> 1
                };
            }
            *entry = c;
        }
        t
    });
    let mut crc = 0xFFFF_FFFFu32;
    for &b in bytes {
        crc = table[((crc ^ b as u32) & 0xFF) as usize] ^ (crc >> 8);
    }
    crc ^ 0xFFFF_FFFF
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn crc32_known_vectors() {
        // Standard check value for "123456789".
        assert_eq!(crc32(b"123456789"), 0xCBF4_3926);
        assert_eq!(crc32(b""), 0);
        assert_ne!(crc32(b"a"), crc32(b"b"));
    }
}
