//! Embedded storage: segment log, chat store, sharded KV store.
//!
//! Three layers, each crash-safe on its own terms:
//!
//! * [`SegmentLog`] — a CRC-framed append-only log split across
//!   size-bounded segments. Torn tails are truncated on open;
//!   [`SegmentLog::compact`] rewrites live records into fresh segments
//!   and deletes the old ones, reclaiming bytes left behind by
//!   overwrites.
//! * [`ChatStore`] — per-video chat replays on the segment log, with a
//!   scan-built index, a read-through decoded-record cache, and
//!   live/dead byte accounting that drives [`ChatStore::compact`]
//!   (re-crawled videos orphan their previous records).
//! * [`KvStore`] — the refined red-dot / model state: prefix-sharded
//!   JSON snapshots fronted by an fsynced write-ahead log. Puts are
//!   O(op); snapshot rewrites are amortized by op/byte thresholds; a
//!   corrupt snapshot is an error, never a silently empty store.

mod chatstore;
mod fault;
pub mod format;
mod kv;
mod log;

pub use chatstore::{ChatStore, CompactStats};
pub use fault::{Fault, FaultInjector, FaultKind};
pub use kv::{KvConfig, KvStats, KvStore, SHARD_COUNT};
pub use log::{CompactionOutcome, RecordId, SegmentLog};

/// `fsync` a directory so just-renamed/created/deleted entries inside
/// it survive a crash (file-level fsync alone does not cover the
/// directory entry).
pub(crate) fn sync_dir(dir: &std::path::Path) -> std::io::Result<()> {
    std::fs::File::open(dir)?.sync_all()
}

/// CRC-32 (IEEE) over a byte slice — integrity check for log records.
pub fn crc32(bytes: &[u8]) -> u32 {
    // Table-driven IEEE CRC-32; table built on first use.
    use std::sync::OnceLock;
    static TABLE: OnceLock<[u32; 256]> = OnceLock::new();
    let table = TABLE.get_or_init(|| {
        let mut t = [0u32; 256];
        for (i, entry) in t.iter_mut().enumerate() {
            let mut c = i as u32;
            for _ in 0..8 {
                c = if c & 1 != 0 {
                    0xEDB8_8320 ^ (c >> 1)
                } else {
                    c >> 1
                };
            }
            *entry = c;
        }
        t
    });
    let mut crc = 0xFFFF_FFFFu32;
    for &b in bytes {
        crc = table[((crc ^ b as u32) & 0xFF) as usize] ^ (crc >> 8);
    }
    crc ^ 0xFFFF_FFFF
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn crc32_known_vectors() {
        // Standard check value for "123456789".
        assert_eq!(crc32(b"123456789"), 0xCBF4_3926);
        assert_eq!(crc32(b""), 0);
        assert_ne!(crc32(b"a"), crc32(b"b"));
    }
}
