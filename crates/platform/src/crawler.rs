//! The chat crawler (paper Section VI-A).
//!
//! "The offline crawling periodically checks a given list of popular
//! channels. If new videos are uploaded in those channels, their chat
//! messages will be crawled accordingly. The online crawling will crawl
//! the chat messages on the fly... triggered if the chat messages of a
//! video do not exist in the database."
//!
//! Re-crawls ([`Crawler::recrawl_pass`]) refresh *already stored*
//! videos (moderation edits, late chat arrivals), overwriting their
//! records in the store. Each overwrite orphans the previous record, so
//! the pass finishes by asking the store to compact once the dead
//! fraction crosses a threshold — reclaim is amortized across passes
//! instead of paid on every one.

use crate::store::{ChatStore, CompactStats};
use lightor_chatsim::SimPlatform;
use lightor_types::{ChannelId, VideoId};

/// Dead fraction of the chat log at which a re-crawl pass compacts.
const RECRAWL_COMPACT_RATIO: f64 = 0.3;
/// Dead-byte floor below which a re-crawl pass never compacts.
const RECRAWL_COMPACT_MIN_BYTES: u64 = 64 << 10;

/// Outcome counters for a crawl pass.
#[derive(Clone, Copy, Debug, Default, PartialEq, Eq)]
pub struct CrawlStats {
    /// Videos whose chat was fetched and stored.
    pub crawled: usize,
    /// Videos skipped because the store already had them.
    pub skipped: usize,
    /// Total chat messages fetched.
    pub messages: usize,
    /// Bytes reclaimed by the compaction a re-crawl pass triggered
    /// (zero when the pass stayed under the dead-byte thresholds).
    pub reclaimed_bytes: u64,
}

/// Crawls chat replays from the (simulated) platform into a [`ChatStore`].
#[derive(Debug)]
pub struct Crawler<'a> {
    platform: &'a SimPlatform,
}

impl<'a> Crawler<'a> {
    /// A crawler bound to one platform.
    pub fn new(platform: &'a SimPlatform) -> Self {
        Crawler { platform }
    }

    /// Offline pass: crawl every not-yet-stored video of the given
    /// channels. The whole pass is written as one batch with a single
    /// durability `sync` ([`ChatStore::put_chats`]).
    pub fn offline_pass(
        &self,
        channels: &[ChannelId],
        store: &mut ChatStore,
    ) -> std::io::Result<CrawlStats> {
        let mut stats = CrawlStats::default();
        let mut batch = Vec::new();
        for &ch in channels {
            for &vid in self.platform.recent_videos(ch) {
                if store.contains(vid) {
                    stats.skipped += 1;
                    continue;
                }
                if let Some(chat) = self.platform.fetch_chat(vid) {
                    batch.push((vid, chat));
                    stats.crawled += 1;
                    stats.messages += chat.len();
                }
            }
        }
        store.put_chats(batch)?;
        Ok(stats)
    }

    /// Re-crawl pass: fetch *every* known video of the given channels
    /// again, overwriting stored replays, then reclaim the dead bytes
    /// the overwrites left behind (compaction runs only past the
    /// dead-ratio/byte thresholds; see [`ChatStore::maybe_compact`]).
    pub fn recrawl_pass(
        &self,
        channels: &[ChannelId],
        store: &mut ChatStore,
    ) -> std::io::Result<CrawlStats> {
        let mut stats = CrawlStats::default();
        let mut batch = Vec::new();
        for &ch in channels {
            for &vid in self.platform.recent_videos(ch) {
                if let Some(chat) = self.platform.fetch_chat(vid) {
                    batch.push((vid, chat));
                    stats.crawled += 1;
                    stats.messages += chat.len();
                }
            }
        }
        store.put_chats(batch)?;
        if let Some(CompactStats {
            reclaimed_bytes, ..
        }) = store.maybe_compact(RECRAWL_COMPACT_RATIO, RECRAWL_COMPACT_MIN_BYTES)?
        {
            stats.reclaimed_bytes = reclaimed_bytes;
        }
        Ok(stats)
    }

    /// Online crawl of one video; returns `false` when the platform does
    /// not know the video.
    pub fn crawl_video(&self, video: VideoId, store: &mut ChatStore) -> std::io::Result<bool> {
        if store.contains(video) {
            return Ok(true);
        }
        match self.platform.fetch_chat(video) {
            Some(chat) => {
                store.put_chat_view(video, chat)?;
                Ok(true)
            }
            None => Ok(false),
        }
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use lightor_types::GameKind;
    use std::path::PathBuf;

    struct TempDir(PathBuf);
    impl TempDir {
        fn new(tag: &str) -> Self {
            let p = std::env::temp_dir().join(format!(
                "lightor-crawler-{tag}-{}-{}",
                std::process::id(),
                std::time::SystemTime::now()
                    .duration_since(std::time::UNIX_EPOCH)
                    .unwrap()
                    .as_nanos()
            ));
            std::fs::create_dir_all(&p).unwrap();
            TempDir(p)
        }
    }
    impl Drop for TempDir {
        fn drop(&mut self) {
            let _ = std::fs::remove_dir_all(&self.0);
        }
    }

    #[test]
    fn offline_pass_crawls_everything_once() {
        let platform = SimPlatform::top_channels(GameKind::Dota2, 3, 4, 61);
        let dir = TempDir::new("offline");
        let mut store = ChatStore::open(&dir.0).unwrap();
        let crawler = Crawler::new(&platform);
        let channels: Vec<ChannelId> = platform.channels().iter().map(|c| c.id).collect();

        let first = crawler.offline_pass(&channels, &mut store).unwrap();
        assert_eq!(first.crawled, 12);
        assert_eq!(first.skipped, 0);
        assert!(first.messages > 0);

        // Second pass: everything already stored.
        let second = crawler.offline_pass(&channels, &mut store).unwrap();
        assert_eq!(second.crawled, 0);
        assert_eq!(second.skipped, 12);
    }

    #[test]
    fn recrawl_pass_overwrites_and_reclaims() {
        let platform = SimPlatform::top_channels(GameKind::Dota2, 2, 3, 64);
        let dir = TempDir::new("recrawl");
        let mut store = ChatStore::open(&dir.0).unwrap();
        let crawler = Crawler::new(&platform);
        let channels: Vec<ChannelId> = platform.channels().iter().map(|c| c.id).collect();

        crawler.offline_pass(&channels, &mut store).unwrap();
        let stored = store.video_count();
        assert_eq!(store.dead_bytes(), 0);

        // Each re-crawl overwrites every record; by the second pass the
        // dead fraction is ≥ 2/3 and compaction must have fired (real
        // chats here are well past the 64 KiB floor).
        crawler.recrawl_pass(&channels, &mut store).unwrap();
        let second = crawler.recrawl_pass(&channels, &mut store).unwrap();
        assert_eq!(second.crawled, stored);
        assert!(
            second.reclaimed_bytes > 0,
            "re-crawl pass did not compact (dead={} total={})",
            store.dead_bytes(),
            store.total_bytes()
        );
        assert_eq!(store.video_count(), stored);
        // Live reads intact after reclaim.
        for &ch in &channels {
            for &vid in platform.recent_videos(ch) {
                assert_eq!(
                    &store.get_chat(vid).unwrap().unwrap(),
                    platform.fetch_chat(vid).unwrap()
                );
            }
        }
    }

    #[test]
    fn online_crawl_on_miss() {
        let platform = SimPlatform::top_channels(GameKind::Dota2, 1, 2, 62);
        let dir = TempDir::new("online");
        let mut store = ChatStore::open(&dir.0).unwrap();
        let crawler = Crawler::new(&platform);
        let vid = platform.recent_videos(platform.channels()[0].id)[0];

        assert!(!store.contains(vid));
        assert!(crawler.crawl_video(vid, &mut store).unwrap());
        assert!(store.contains(vid));
        // Unknown video.
        assert!(!crawler.crawl_video(VideoId(424242), &mut store).unwrap());
    }

    #[test]
    fn crawled_chat_matches_platform() {
        let platform = SimPlatform::top_channels(GameKind::Lol, 1, 1, 63);
        let dir = TempDir::new("verify");
        let mut store = ChatStore::open(&dir.0).unwrap();
        let crawler = Crawler::new(&platform);
        let vid = platform.recent_videos(platform.channels()[0].id)[0];
        crawler.crawl_video(vid, &mut store).unwrap();
        let stored = store.get_chat(vid).unwrap().unwrap();
        assert_eq!(&stored, platform.fetch_chat(vid).unwrap());
    }
}
