//! The chat crawler (paper Section VI-A).
//!
//! "The offline crawling periodically checks a given list of popular
//! channels. If new videos are uploaded in those channels, their chat
//! messages will be crawled accordingly. The online crawling will crawl
//! the chat messages on the fly... triggered if the chat messages of a
//! video do not exist in the database."

use crate::store::ChatStore;
use lightor_chatsim::SimPlatform;
use lightor_types::{ChannelId, VideoId};

/// Outcome counters for a crawl pass.
#[derive(Clone, Copy, Debug, Default, PartialEq, Eq)]
pub struct CrawlStats {
    /// Videos whose chat was fetched and stored.
    pub crawled: usize,
    /// Videos skipped because the store already had them.
    pub skipped: usize,
    /// Total chat messages fetched.
    pub messages: usize,
}

/// Crawls chat replays from the (simulated) platform into a [`ChatStore`].
#[derive(Debug)]
pub struct Crawler<'a> {
    platform: &'a SimPlatform,
}

impl<'a> Crawler<'a> {
    /// A crawler bound to one platform.
    pub fn new(platform: &'a SimPlatform) -> Self {
        Crawler { platform }
    }

    /// Offline pass: crawl every not-yet-stored video of the given
    /// channels. The whole pass is written as one batch with a single
    /// durability `sync` ([`ChatStore::put_chats`]).
    pub fn offline_pass(
        &self,
        channels: &[ChannelId],
        store: &mut ChatStore,
    ) -> std::io::Result<CrawlStats> {
        let mut stats = CrawlStats::default();
        let mut batch = Vec::new();
        for &ch in channels {
            for &vid in self.platform.recent_videos(ch) {
                if store.contains(vid) {
                    stats.skipped += 1;
                    continue;
                }
                if let Some(chat) = self.platform.fetch_chat(vid) {
                    batch.push((vid, chat));
                    stats.crawled += 1;
                    stats.messages += chat.len();
                }
            }
        }
        store.put_chats(batch)?;
        Ok(stats)
    }

    /// Online crawl of one video; returns `false` when the platform does
    /// not know the video.
    pub fn crawl_video(&self, video: VideoId, store: &mut ChatStore) -> std::io::Result<bool> {
        if store.contains(video) {
            return Ok(true);
        }
        match self.platform.fetch_chat(video) {
            Some(chat) => {
                store.put_chat(video, chat)?;
                Ok(true)
            }
            None => Ok(false),
        }
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use lightor_types::GameKind;
    use std::path::PathBuf;

    struct TempDir(PathBuf);
    impl TempDir {
        fn new(tag: &str) -> Self {
            let p = std::env::temp_dir().join(format!(
                "lightor-crawler-{tag}-{}-{}",
                std::process::id(),
                std::time::SystemTime::now()
                    .duration_since(std::time::UNIX_EPOCH)
                    .unwrap()
                    .as_nanos()
            ));
            std::fs::create_dir_all(&p).unwrap();
            TempDir(p)
        }
    }
    impl Drop for TempDir {
        fn drop(&mut self) {
            let _ = std::fs::remove_dir_all(&self.0);
        }
    }

    #[test]
    fn offline_pass_crawls_everything_once() {
        let platform = SimPlatform::top_channels(GameKind::Dota2, 3, 4, 61);
        let dir = TempDir::new("offline");
        let mut store = ChatStore::open(&dir.0).unwrap();
        let crawler = Crawler::new(&platform);
        let channels: Vec<ChannelId> = platform.channels().iter().map(|c| c.id).collect();

        let first = crawler.offline_pass(&channels, &mut store).unwrap();
        assert_eq!(first.crawled, 12);
        assert_eq!(first.skipped, 0);
        assert!(first.messages > 0);

        // Second pass: everything already stored.
        let second = crawler.offline_pass(&channels, &mut store).unwrap();
        assert_eq!(second.crawled, 0);
        assert_eq!(second.skipped, 12);
    }

    #[test]
    fn online_crawl_on_miss() {
        let platform = SimPlatform::top_channels(GameKind::Dota2, 1, 2, 62);
        let dir = TempDir::new("online");
        let mut store = ChatStore::open(&dir.0).unwrap();
        let crawler = Crawler::new(&platform);
        let vid = platform.recent_videos(platform.channels()[0].id)[0];

        assert!(!store.contains(vid));
        assert!(crawler.crawl_video(vid, &mut store).unwrap());
        assert!(store.contains(vid));
        // Unknown video.
        assert!(!crawler.crawl_video(VideoId(424242), &mut store).unwrap());
    }

    #[test]
    fn crawled_chat_matches_platform() {
        let platform = SimPlatform::top_channels(GameKind::Lol, 1, 1, 63);
        let dir = TempDir::new("verify");
        let mut store = ChatStore::open(&dir.0).unwrap();
        let crawler = Crawler::new(&platform);
        let vid = platform.recent_videos(platform.channels()[0].id)[0];
        crawler.crawl_video(vid, &mut store).unwrap();
        let stored = store.get_chat(vid).unwrap().unwrap();
        assert_eq!(&stored, platform.fetch_chat(vid).unwrap());
    }
}
