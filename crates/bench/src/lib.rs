//! Shared fixtures for the criterion benches: pre-generated datasets and
//! pre-trained models so the benches measure algorithm cost, not setup.

use lightor::{FeatureSet, HighlightInitializer};
use lightor_chatsim::{dota2_dataset, Dataset, SimVideo};
use lightor_eval::harness::train_initializer;

/// A small Dota2 dataset shared by the micro benches.
pub fn bench_dataset() -> Dataset {
    dota2_dataset(4, 0xBE7C)
}

/// An initializer trained on the first half of [`bench_dataset`].
pub fn bench_initializer(data: &Dataset) -> HighlightInitializer {
    let train: Vec<&SimVideo> = data.videos[..2].iter().collect();
    train_initializer(&train, FeatureSet::Full)
}
