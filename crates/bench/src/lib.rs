//! Shared fixtures for the criterion benches: pre-generated datasets and
//! pre-trained models so the benches measure algorithm cost, not setup.

use lightor::{
    DotType, ExtractorConfig, FeatureSet, HighlightExtractor, HighlightInitializer, ModelBundle,
    PlayPositionFeatures, TypeClassifier,
};
use lightor_chatsim::{dota2_dataset, Dataset, SimVideo};
use lightor_eval::harness::train_initializer;

/// A small Dota2 dataset shared by the micro benches.
pub fn bench_dataset() -> Dataset {
    dota2_dataset(4, 0xBE7C)
}

/// An initializer trained on the first half of [`bench_dataset`].
pub fn bench_initializer(data: &Dataset) -> HighlightInitializer {
    let train: Vec<&SimVideo> = data.videos[..2].iter().collect();
    train_initializer(&train, FeatureSet::Full)
}

/// A full model bundle (initializer + a synthetic type classifier) for
/// service-level benches, mirroring the service unit-test fixture.
pub fn bench_models(data: &Dataset) -> ModelBundle {
    let initializer = bench_initializer(data);
    let mut examples = Vec::new();
    for i in 0..30 {
        let j = (i % 7) as f64;
        examples.push((
            PlayPositionFeatures {
                after: 5.0 + j,
                before: 0.0,
                across: 1.0 + j / 2.0,
            },
            DotType::TypeII,
        ));
        examples.push((
            PlayPositionFeatures {
                after: 1.0,
                before: 3.0 + j,
                across: 2.0,
            },
            DotType::TypeI,
        ));
    }
    let extractor =
        HighlightExtractor::new(TypeClassifier::train(&examples), ExtractorConfig::default());
    ModelBundle {
        initializer,
        extractor,
        provenance: "bench".into(),
    }
}
