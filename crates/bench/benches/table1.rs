//! Table I bench: the training-time comparison is itself the headline of
//! the paper's Table I, so it gets a dedicated criterion target —
//! `lightor_train` vs `joint_lstm_train` is the reproduced ratio.

use criterion::{black_box, criterion_group, criterion_main, Criterion};
use lightor::FeatureSet;
use lightor_chatsim::{lol_dataset, SimVideo};
use lightor_eval::harness::train_initializer;
use lightor_neural::joint_lstm::{JointLstm, JointLstmConfig, JointVideo};
use lightor_neural::{synthetic_frame_features, VisualConfig};

fn bench_lightor_training(c: &mut Criterion) {
    let data = lol_dataset(1, 0x7AB);
    let train: Vec<&SimVideo> = data.videos.iter().collect();
    c.bench_function("table1_lightor_train_1_video", |b| {
        b.iter(|| black_box(train_initializer(&train, FeatureSet::Full)))
    });
}

fn bench_joint_lstm_training(c: &mut Criterion) {
    let data = lol_dataset(2, 0x7AB);
    let vis = VisualConfig::default();
    let frames: Vec<Vec<[f32; 4]>> = data
        .videos
        .iter()
        .map(|sv| synthetic_frame_features(&sv.video, &vis, 0x7AC))
        .collect();
    let videos: Vec<JointVideo> = data
        .videos
        .iter()
        .zip(&frames)
        .map(|(sv, f)| JointVideo {
            frames: f,
            chat: &sv.video.chat,
            duration: sv.video.meta.duration,
            highlights: &sv.video.highlights,
        })
        .collect();
    let cfg = JointLstmConfig {
        epochs: 1,
        max_samples: 400,
        ..JointLstmConfig::default()
    };
    let mut g = c.benchmark_group("table1_joint_lstm");
    g.sample_size(10);
    g.bench_function("train_2_videos_1_epoch", |b| {
        b.iter(|| black_box(JointLstm::train(&videos, cfg, 0x7AD)))
    });
    g.finish();
}

criterion_group!(benches, bench_lightor_training, bench_joint_lstm_training);
criterion_main!(benches);
