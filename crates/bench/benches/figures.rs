//! One criterion bench target per paper figure (quick-scale datasets, so
//! the measured time is the cost of the *pipeline*, not of dataset size).
//! Run `cargo bench -p lightor-bench --bench figures`.

use criterion::{criterion_group, criterion_main, Criterion};
use lightor_eval::experiments::{fig10, fig11, fig2, fig3, fig6, fig7, fig8, fig9, table1};
use lightor_eval::ExpEnv;

fn bench_fig2_chat_analysis(c: &mut Criterion) {
    let env = ExpEnv::quick();
    c.bench_function("fig2_chat_analysis", |b| b.iter(|| fig2::run(&env)));
}

fn bench_fig3_play_offsets(c: &mut Criterion) {
    let env = ExpEnv::quick();
    let mut g = c.benchmark_group("fig3_play_offsets");
    g.sample_size(10);
    g.bench_function("both_types", |b| b.iter(|| fig3::summary(&env)));
    g.finish();
}

fn bench_fig6_prediction(c: &mut Criterion) {
    let env = ExpEnv::quick();
    let mut g = c.benchmark_group("fig6_prediction");
    g.sample_size(10);
    g.bench_function("feature_ablation", |b| b.iter(|| fig6::run_a(&env)));
    g.bench_function("training_size", |b| b.iter(|| fig6::run_b(&env)));
    g.finish();
}

fn bench_fig7_adjustment(c: &mut Criterion) {
    let env = ExpEnv::quick();
    let mut g = c.benchmark_group("fig7_adjustment");
    g.sample_size(10);
    g.bench_function("vs_toretter", |b| b.iter(|| fig7::run_a(&env)));
    g.finish();
}

fn bench_fig8_extractor(c: &mut Criterion) {
    let env = ExpEnv::quick();
    let mut g = c.benchmark_group("fig8_extractor");
    g.sample_size(10);
    g.bench_function("four_iterations", |b| b.iter(|| fig8::compute(&env)));
    g.finish();
}

fn bench_fig9_applicability(c: &mut Criterion) {
    let env = ExpEnv::quick();
    let mut g = c.benchmark_group("fig9_applicability");
    g.sample_size(10);
    g.bench_function("catalog_cdfs", |b| b.iter(|| fig9::compute(&env)));
    g.finish();
}

fn bench_fig10_lstm_data_size(c: &mut Criterion) {
    let env = ExpEnv::quick();
    let mut g = c.benchmark_group("fig10_lstm_data_size");
    g.sample_size(10);
    g.bench_function("lightor_vs_chat_lstm", |b| b.iter(|| fig10::run(&env)));
    g.finish();
}

fn bench_fig11_generalization(c: &mut Criterion) {
    let env = ExpEnv::quick();
    let mut g = c.benchmark_group("fig11_generalization");
    g.sample_size(10);
    g.bench_function("lol_to_dota2", |b| b.iter(|| fig11::compute(&env)));
    g.finish();
}

fn bench_table1_end_to_end(c: &mut Criterion) {
    let env = ExpEnv::quick();
    let mut g = c.benchmark_group("table1_end_to_end");
    g.sample_size(10);
    g.bench_function("lightor_vs_joint_lstm", |b| {
        b.iter(|| table1::compute(&env))
    });
    g.finish();
}

criterion_group!(
    benches,
    bench_fig2_chat_analysis,
    bench_fig3_play_offsets,
    bench_fig6_prediction,
    bench_fig7_adjustment,
    bench_fig8_extractor,
    bench_fig9_applicability,
    bench_fig10_lstm_data_size,
    bench_fig11_generalization,
    bench_table1_end_to_end,
);
criterion_main!(benches);
