//! Micro benches for the hot paths: window featurization, scoring,
//! filtering, storage encode/decode, and the chat generator itself.

use criterion::{black_box, criterion_group, criterion_main, Criterion, Throughput};
use lightor::{filter_plays, sliding_windows, ExtractorConfig, TokenizedChat, WindowFeatures};
use lightor_bench::{bench_dataset, bench_initializer};
use lightor_chatsim::{ChatGenerator, GameProfile, VideoGenerator};
use lightor_simkit::SeedTree;
use lightor_types::{ChannelId, Play, PlaySet, Sec, VideoId};

fn bench_window_features(c: &mut Criterion) {
    let data = bench_dataset();
    let sv = &data.videos[0];
    let chat = sv.video.chat.to_chat_log();
    let chat = &chat;
    let windows = sliding_windows(chat, sv.video.meta.duration, 25.0, 0.5);
    let corpus = TokenizedChat::build_from_view(&sv.video.chat);
    let mut g = c.benchmark_group("window_features");
    g.throughput(Throughput::Elements(windows.len() as u64));
    // Naive reference: re-tokenize + dense center per window.
    g.bench_function("all_windows", |b| {
        b.iter(|| {
            for w in &windows {
                black_box(WindowFeatures::compute(chat.slice(*w)));
            }
        })
    });
    // Incremental rolling pass over the tokenize-once corpus (single
    // chunk: isolates the algorithmic win from thread fan-out).
    g.bench_function("all_windows_incremental", |b| {
        b.iter(|| black_box(corpus.featurize_windows_chunked(&windows, 5.0, 1)))
    });
    // Corpus construction itself (amortized once per video).
    g.bench_function("corpus_build", |b| {
        b.iter(|| black_box(TokenizedChat::build(chat)))
    });
    g.finish();
}

fn bench_score_video(c: &mut Criterion) {
    let data = bench_dataset();
    let init = bench_initializer(&data);
    let sv = &data.videos[3];
    let owned = sv.video.chat.to_chat_log();
    c.bench_function("initializer_score_full_video", |b| {
        b.iter(|| {
            black_box(init.red_dots(&sv.video.chat, sv.video.meta.duration, 10));
        })
    });
    c.bench_function("initializer_score_full_video_naive", |b| {
        b.iter(|| {
            black_box(init.score_windows_naive(&owned, sv.video.meta.duration));
        })
    });
    // Production shape: corpus built once, scored per request.
    let corpus = TokenizedChat::build_from_view(&sv.video.chat);
    c.bench_function("initializer_score_prebuilt_corpus", |b| {
        b.iter(|| black_box(init.score_corpus(&corpus, sv.video.meta.duration)));
    });
}

fn bench_filter_plays(c: &mut Criterion) {
    // 64 plays around a dot; the overlap graph is quadratic in survivors.
    let plays: PlaySet = (0..64)
        .map(|i| {
            let s = 1960.0 + (i as f64 * 7.3) % 90.0;
            Play::from_secs(s, s + 5.0 + (i as f64 * 3.1) % 40.0)
        })
        .collect();
    let cfg = ExtractorConfig::default();
    c.bench_function("filter_plays_64", |b| {
        b.iter(|| black_box(filter_plays(&plays, Sec(2000.0), &cfg)))
    });
}

fn bench_chat_generation(c: &mut Criterion) {
    let profile = std::sync::Arc::new(GameProfile::dota2());
    let vg = VideoGenerator::new(profile.clone());
    let cg = ChatGenerator::new(profile);
    let root = SeedTree::new(7);
    let spec = {
        let mut vrng = root.child("v").rng();
        vg.generate(VideoId(0), ChannelId(0), &mut vrng)
    };
    let mut g = c.benchmark_group("chat_generation");
    g.sample_size(10);
    // The bump-buffer fast path: compiled-lexicon writers straight into
    // a columnar ChatLogView.
    g.bench_function("one_video", |b| {
        b.iter(|| {
            let mut crng = root.child("c").rng();
            black_box(cg.generate(spec.clone(), &mut crng))
        })
    });
    // The pre-refactor reference: one String per message + owned
    // ChatLog sort + columnarization (bit-identical output).
    g.bench_function("one_video_reference", |b| {
        b.iter(|| {
            let mut crng = root.child("c").rng();
            black_box(cg.generate_reference(spec.clone(), &mut crng))
        })
    });
    g.finish();
}

fn bench_chat_store(c: &mut Criterion) {
    use lightor_platform::ChatStore;
    let data = bench_dataset();
    let chat = &data.videos[0].video.chat;
    let chat_owned = chat.to_chat_log();
    let dir = std::env::temp_dir().join(format!("lightor-bench-store-{}", std::process::id()));
    let _ = std::fs::remove_dir_all(&dir);
    let mut store = ChatStore::open(&dir).unwrap();
    let mut g = c.benchmark_group("chat_store");
    g.throughput(Throughput::Elements(chat.len() as u64));
    g.sample_size(20);
    let mut vid = 0u64;
    g.bench_function("put_full_video", |b| {
        b.iter(|| {
            vid += 1;
            store.put_chat_view(VideoId(vid), chat).unwrap();
        })
    });
    store.put_chat(VideoId(0), &chat_owned).unwrap();
    g.bench_function("get_full_video", |b| {
        b.iter(|| black_box(store.get_chat(VideoId(0)).unwrap()))
    });
    g.finish();
    let _ = std::fs::remove_dir_all(&dir);
}

criterion_group!(
    benches,
    bench_window_features,
    bench_score_video,
    bench_filter_plays,
    bench_chat_generation,
    bench_chat_store,
);
criterion_main!(benches);
