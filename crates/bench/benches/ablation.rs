//! Ablation benches for the design choices DESIGN.md calls out: sliding
//! window size, red-dot separation δ, the filter stages, and the feature
//! sets. These measure *quality* (printed once) and *cost* (criterion).

use criterion::{black_box, criterion_group, criterion_main, Criterion};
use lightor::{
    filter_plays, ExtractorConfig, FeatureSet, HighlightInitializer, InitializerConfig,
    TrainingVideo,
};
use lightor_bench::bench_dataset;
use lightor_chatsim::SimVideo;
use lightor_eval::metrics::video_precision_start;
use lightor_types::{Play, PlaySet, Sec};

fn train_with_window(videos: &[&SimVideo], window_len: f64) -> HighlightInitializer {
    let views: Vec<TrainingVideo> = videos
        .iter()
        .map(|v| TrainingVideo {
            chat: &v.video.chat,
            duration: v.video.meta.duration,
            highlights: &v.video.highlights,
            label_ranges: &v.response_ranges,
        })
        .collect();
    HighlightInitializer::train(
        &views,
        FeatureSet::Full,
        InitializerConfig {
            window_len,
            ..InitializerConfig::default()
        },
    )
}

/// Window-size ablation: cost of training+scoring at 10/25/50 s windows,
/// with the resulting precision printed once per size.
fn bench_window_size(c: &mut Criterion) {
    let data = bench_dataset();
    let train: Vec<&SimVideo> = data.videos[..2].iter().collect();
    let test = &data.videos[3];

    let mut g = c.benchmark_group("ablation_window_size");
    g.sample_size(10);
    for window in [10.0, 25.0, 50.0] {
        let init = train_with_window(&train, window);
        let dots = init.red_dots(&test.video.chat, test.video.meta.duration, 5);
        let starts: Vec<Sec> = dots.iter().map(|d| d.at).collect();
        println!(
            "[ablation] window {window:>4.0} s -> P@5(start) = {:.3}",
            video_precision_start(&starts, test)
        );
        g.bench_function(format!("score_w{window:.0}"), |b| {
            b.iter(|| black_box(init.red_dots(&test.video.chat, test.video.meta.duration, 5)))
        });
    }
    g.finish();
}

/// Separation ablation: δ ∈ {30, 120, 300} changes how far apart the
/// top-k dots must sit.
fn bench_separation(c: &mut Criterion) {
    let data = bench_dataset();
    let train: Vec<&SimVideo> = data.videos[..2].iter().collect();
    let test = &data.videos[3];

    let mut g = c.benchmark_group("ablation_separation");
    g.sample_size(10);
    for sep in [30.0, 120.0, 300.0] {
        let views: Vec<TrainingVideo> = train
            .iter()
            .map(|v| TrainingVideo {
                chat: &v.video.chat,
                duration: v.video.meta.duration,
                highlights: &v.video.highlights,
                label_ranges: &v.response_ranges,
            })
            .collect();
        let init = HighlightInitializer::train(
            &views,
            FeatureSet::Full,
            InitializerConfig {
                min_separation: sep,
                ..InitializerConfig::default()
            },
        );
        let dots = init.red_dots(&test.video.chat, test.video.meta.duration, 8);
        let starts: Vec<Sec> = dots.iter().map(|d| d.at).collect();
        println!(
            "[ablation] delta {sep:>4.0} s -> P@8(start) = {:.3} ({} dots)",
            video_precision_start(&starts, test),
            dots.len()
        );
        g.bench_function(format!("top8_sep{sep:.0}"), |b| {
            b.iter(|| black_box(init.red_dots(&test.video.chat, test.video.meta.duration, 8)))
        });
    }
    g.finish();
}

/// Filter ablation: full filter vs no graph-outlier stage vs no filter.
fn bench_filter_stages(c: &mut Criterion) {
    let plays: PlaySet = (0..48)
        .map(|i| {
            let s = 1955.0 + (i as f64 * 11.7) % 100.0;
            Play::from_secs(s, s + 4.0 + (i as f64 * 5.3) % 50.0)
        })
        .collect();
    let dot = Sec(2000.0);
    let full = ExtractorConfig::default();
    // Disabling length/distance rules approximates "no filtering".
    let loose = ExtractorConfig {
        min_play_len: 0.0,
        max_play_len: f64::MAX,
        max_dot_distance: f64::MAX,
        ..full
    };
    let mut g = c.benchmark_group("ablation_filter");
    g.bench_function("full_filter", |b| {
        b.iter(|| black_box(filter_plays(&plays, dot, &full)))
    });
    g.bench_function("scope_only", |b| {
        b.iter(|| black_box(filter_plays(&plays, dot, &loose)))
    });
    g.finish();
}

/// Feature-set ablation: training cost of 1/2/3-feature models.
fn bench_feature_sets(c: &mut Criterion) {
    let data = bench_dataset();
    let train: Vec<&SimVideo> = data.videos[..2].iter().collect();
    let views: Vec<TrainingVideo> = train
        .iter()
        .map(|v| TrainingVideo {
            chat: &v.video.chat,
            duration: v.video.meta.duration,
            highlights: &v.video.highlights,
            label_ranges: &v.response_ranges,
        })
        .collect();
    let mut g = c.benchmark_group("ablation_features");
    g.sample_size(10);
    for fs in FeatureSet::ALL {
        g.bench_function(format!("train_{fs:?}"), |b| {
            b.iter(|| {
                black_box(HighlightInitializer::train(
                    &views,
                    fs,
                    InitializerConfig::default(),
                ))
            })
        });
    }
    g.finish();
}

criterion_group!(
    benches,
    bench_window_size,
    bench_separation,
    bench_filter_stages,
    bench_feature_sets,
);
criterion_main!(benches);
