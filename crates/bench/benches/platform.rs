//! Serving-path benches: record decode, warm vs cold service scoring,
//! and crowd-task simulation.
//!
//! These are the targets whose medians get recorded in
//! `BENCH_platform.json` (run with `CRITERION_JSON=BENCH_platform.json`),
//! starting the serving-path perf trajectory:
//!
//! * `chatstore_decode` — zero-copy v2 view decode vs the legacy v1
//!   owned-`String` path on the bench corpus;
//! * `service_open_video_warm` — warm `open_video` (state-map hit) and
//!   warm vs cold `rescore_video` (corpus-cache hit vs re-tokenize);
//! * `campaign_run_task` — one crowd task / one batched round, at one
//!   forced worker thread and at the environment's thread count (the
//!   two series expose the multi-core speedup on multi-core hosts).

use criterion::{black_box, criterion_group, criterion_main, Criterion, Throughput};
use lightor_bench::{bench_dataset, bench_models};
use lightor_chatsim::SimPlatform;
use lightor_crowdsim::Campaign;
use lightor_platform::store::format;
use lightor_platform::{LightorService, ServiceConfig};
use lightor_types::{
    ChannelId, ChatLog, GameKind, Highlight, LabeledVideo, Sec, VideoId, VideoMeta,
};
use std::sync::Arc;

fn bench_chatstore_decode(c: &mut Criterion) {
    let data = bench_dataset();
    let chat = &data.videos[0].video.chat;
    let v2: Arc<[u8]> = format::encode_v2(VideoId(1), chat).into();
    let v1 = format::encode_v1(VideoId(1), chat);

    let mut g = c.benchmark_group("chatstore_decode");
    g.throughput(Throughput::Elements(chat.len() as u64));
    // The serving path: v2 → zero-copy view, O(1) allocations.
    g.bench_function("v2_view", |b| {
        b.iter(|| black_box(format::decode_v2(&v2).expect("valid v2")))
    });
    // The legacy path: v1 → one owned String per message.
    g.bench_function("v1_owned", |b| {
        b.iter(|| black_box(format::decode_v1_owned(&v1).expect("valid v1")))
    });
    g.bench_function("encode_v2", |b| {
        b.iter(|| black_box(format::encode_v2(VideoId(1), chat)))
    });
    g.finish();
}

fn bench_service_open_video_warm(c: &mut Criterion) {
    let dir = std::env::temp_dir().join(format!("lightor-bench-svc-{}", std::process::id()));
    let _ = std::fs::remove_dir_all(&dir);
    std::fs::create_dir_all(&dir).unwrap();

    let data = bench_dataset();
    let platform = SimPlatform::top_channels(GameKind::Dota2, 2, 2, 92);
    let vid = platform.recent_videos(platform.channels()[0].id)[0];
    let svc = LightorService::open(
        &dir,
        bench_models(&data),
        platform,
        ServiceConfig::default(),
    )
    .unwrap();
    let k = ServiceConfig::default().top_k;
    // Cold open once: crawl + tokenize + score.
    svc.open_video(vid).unwrap().unwrap();

    let mut g = c.benchmark_group("service_open_video_warm");
    // Warm viewer request: state-map hit, no storage or model work.
    g.bench_function("warm_open", |b| {
        b.iter(|| black_box(svc.open_video(vid).unwrap().unwrap()))
    });
    // Warm re-score: corpus-cache hit — scoring without re-tokenizing.
    g.bench_function("warm_rescore", |b| {
        b.iter(|| black_box(svc.rescore_video(vid, k).unwrap().unwrap()))
    });
    // Cold re-score: cache dropped each iteration — pays store read +
    // tokenization + scoring; the ratio to the warm rows is the cache win.
    g.bench_function("cold_rescore", |b| {
        b.iter(|| {
            svc.clear_corpus_cache();
            black_box(svc.rescore_video(vid, k).unwrap().unwrap())
        })
    });
    g.finish();
    let _ = std::fs::remove_dir_all(&dir);
}

fn crowd_video() -> LabeledVideo {
    LabeledVideo {
        meta: VideoMeta {
            id: VideoId(0),
            channel: ChannelId(0),
            game: GameKind::Dota2,
            duration: Sec(3600.0),
            viewers: 500,
        },
        chat: ChatLog::empty(),
        highlights: vec![
            Highlight::from_secs(700.0, 716.0),
            Highlight::from_secs(1990.0, 2005.0),
        ],
    }
}

fn bench_campaign_run_task(c: &mut Criterion) {
    let video = crowd_video();
    let dots = [Sec(1992.0), Sec(2000.0), Sec(2035.0), Sec(705.0)];

    // Forcing the worker count through the rayon stub's env knob is
    // safe here: no parallel region is live between benches, and the
    // bench binary itself is single-threaded.
    for (label, threads) in [("threads_1", Some("1")), ("threads_auto", None)] {
        match threads {
            Some(n) => std::env::set_var("RAYON_NUM_THREADS", n),
            None => std::env::remove_var("RAYON_NUM_THREADS"),
        }
        let mut g = c.benchmark_group(&format!("campaign_run_task/{label}"));
        let mut campaign = Campaign::new(492, 0xBE7C);
        g.bench_function("one_task_16", |b| {
            b.iter(|| black_box(campaign.run_task(&video, dots[0], 16)))
        });
        let tasks: Vec<(&LabeledVideo, Sec)> = dots.iter().map(|&d| (&video, d)).collect();
        g.bench_function("round_4x16", |b| {
            b.iter(|| black_box(campaign.run_tasks(&tasks, 16)))
        });
        g.finish();
    }
    std::env::remove_var("RAYON_NUM_THREADS");
}

criterion_group!(
    benches,
    bench_chatstore_decode,
    bench_service_open_video_warm,
    bench_campaign_run_task,
);
criterion_main!(benches);
