//! Serving-path benches: record decode, warm vs cold service scoring,
//! and crowd-task simulation.
//!
//! These are the targets whose medians get recorded in
//! `BENCH_platform.json` (run with `CRITERION_JSON=BENCH_platform.json`),
//! starting the serving-path perf trajectory:
//!
//! * `chatstore_decode` — zero-copy v2 view decode vs the legacy v1
//!   owned-`String` path on the bench corpus;
//! * `service_open_video_warm` — warm `open_video` (state-map hit) and
//!   warm vs cold `rescore_video` (corpus-cache hit vs re-tokenize);
//! * `campaign_run_task` — one crowd task / one batched round, at one
//!   forced worker thread and at the environment's thread count (the
//!   two series expose the multi-core speedup on multi-core hosts);
//! * `kv_put_throughput` — a WAL-amortized `KvStore::put` at 1k
//!   resident keys vs the pre-shard design's whole-store JSON rewrite
//!   (replicated inline as the baseline);
//! * `segmentlog_compact` — one steady-state re-crawl cycle: overwrite
//!   a stored replay, then compact the chat log back to zero dead
//!   bytes;
//! * `http_serve` — the network edge over a real loopback socket: one
//!   keep-alive client doing warm `GET /video/{id}/dots` and
//!   `POST /sessions` round trips against the `lightor_server` front
//!   end (median_ns is the p50 request latency; requests/sec is its
//!   reciprocal);
//! * `router_proxy` — the same warm dots GET measured directly against
//!   one backend and again through a `lightor-router` in front of it;
//!   the `via_router` / `direct` ratio is the proxy hop's overhead
//!   (budget: ≤ 2×);
//! * `corpus_persist` — the cold-scoring fix at store level: rebuild a
//!   scoring corpus by re-tokenizing the stored replay's raw text
//!   (`rebuild_raw`, the pre-v3 cold path) vs decoding the persisted
//!   v3 tokenized section into the same corpus (`load_v3_first_touch`
//!   pays the once-per-process vocab-term strings; `load_v3` is the
//!   steady-state columns-only decode); the `rebuild_raw` / `load_v3`
//!   ratio is the persistence win;
//! * `chat_generation` — one video's chat replay: the bump-buffer
//!   fast path (compiled-lexicon pools straight into a columnar
//!   `ChatLogView`) vs the owned-`String`-per-message reference sink
//!   over the identical draw stream;
//! * `dataset_build` — an 8-video labelled corpus end to end (specs +
//!   chat + labels) at one forced worker thread and at the
//!   environment's thread count (the rayon fan-out win shows on
//!   multi-core hosts).

use criterion::{black_box, criterion_group, criterion_main, Criterion, Throughput};
use lightor_bench::{bench_dataset, bench_models};
use lightor_chatsim::SimPlatform;
use lightor_crowdsim::Campaign;
use lightor_platform::store::format;
use lightor_platform::{ChatStore, KvStore, LightorService, ServiceConfig};
use lightor_server::cluster::{ClusterConfig, RouterServer};
use lightor_server::{HttpClient, HttpServer, ServerConfig};
use lightor_types::{
    ChannelId, ChatLog, ChatLogView, ChatMessage, GameKind, Highlight, LabeledVideo, Sec, UserId,
    VideoId, VideoMeta,
};
use std::collections::BTreeMap;
use std::sync::Arc;

fn bench_chatstore_decode(c: &mut Criterion) {
    let data = bench_dataset();
    let view = &data.videos[0].video.chat;
    let chat = view.to_chat_log();
    let v2: Arc<[u8]> = format::encode_v2_view(VideoId(1), view).into();
    let v1 = format::encode_v1(VideoId(1), &chat);

    let mut g = c.benchmark_group("chatstore_decode");
    g.throughput(Throughput::Elements(chat.len() as u64));
    // The serving path: v2 → zero-copy view, O(1) allocations.
    g.bench_function("v2_view", |b| {
        b.iter(|| black_box(format::decode_v2(&v2).expect("valid v2")))
    });
    // The legacy path: v1 → one owned String per message.
    g.bench_function("v1_owned", |b| {
        b.iter(|| black_box(format::decode_v1_owned(&v1).expect("valid v1")))
    });
    g.bench_function("encode_v2", |b| {
        b.iter(|| black_box(format::encode_v2(VideoId(1), &chat)))
    });
    // The view-native encoder: section copies, no per-message walk.
    g.bench_function("encode_v2_view", |b| {
        b.iter(|| black_box(format::encode_v2_view(VideoId(1), view)))
    });
    g.finish();
}

fn bench_service_open_video_warm(c: &mut Criterion) {
    let dir = std::env::temp_dir().join(format!("lightor-bench-svc-{}", std::process::id()));
    let _ = std::fs::remove_dir_all(&dir);
    std::fs::create_dir_all(&dir).unwrap();

    let data = bench_dataset();
    let platform = SimPlatform::top_channels(GameKind::Dota2, 2, 2, 92);
    let vid = platform.recent_videos(platform.channels()[0].id)[0];
    let svc = LightorService::open(
        &dir,
        bench_models(&data),
        platform,
        ServiceConfig::default(),
    )
    .unwrap();
    let k = ServiceConfig::default().top_k;
    // Cold open once: crawl + tokenize + score.
    svc.open_video(vid).unwrap().unwrap();

    let mut g = c.benchmark_group("service_open_video_warm");
    // Warm viewer request: state-map hit, no storage or model work.
    g.bench_function("warm_open", |b| {
        b.iter(|| black_box(svc.open_video(vid).unwrap().unwrap()))
    });
    // Warm re-score: corpus-cache hit — scoring without re-tokenizing.
    g.bench_function("warm_rescore", |b| {
        b.iter(|| black_box(svc.rescore_video(vid, k).unwrap().unwrap()))
    });
    // Cold re-score: cache dropped each iteration — pays store read +
    // tokenization + scoring; the ratio to the warm rows is the cache win.
    g.bench_function("cold_rescore", |b| {
        b.iter(|| {
            svc.clear_corpus_cache();
            black_box(svc.rescore_video(vid, k).unwrap().unwrap())
        })
    });
    g.finish();
    let _ = std::fs::remove_dir_all(&dir);
}

/// A refined-dot-state-shaped value: what the service persists per
/// video on every refinement round.
fn dot_state_value() -> Vec<(f64, f64, u64)> {
    (0..5).map(|i| (700.0 + i as f64, 0.9, 3u64)).collect()
}

fn bench_kv_put_throughput(c: &mut Criterion) {
    let dir = std::env::temp_dir().join(format!("lightor-bench-kv-{}", std::process::id()));
    let _ = std::fs::remove_dir_all(&dir);
    std::fs::create_dir_all(&dir).unwrap();
    let value = dot_state_value();

    let mut g = c.benchmark_group("kv_put_throughput");
    // The new write path: one framed WAL append + fsync per put, shard
    // snapshot rewrites amortized by the op threshold.
    let mut kv = KvStore::open(dir.join("sharded")).unwrap();
    for i in 0..1000 {
        kv.put(&format!("video:{i}"), &value).unwrap();
    }
    let mut i = 0usize;
    g.bench_function("wal_put_1k_keys", |b| {
        b.iter(|| {
            i = (i + 1) % 1000;
            kv.put(&format!("video:{i}"), &value).unwrap();
        })
    });

    // The pre-shard design, replicated inline: every put re-serialized
    // the whole store as pretty JSON and rewrote one snapshot file.
    let mut map: BTreeMap<String, serde_json::Value> = (0..1000)
        .map(|i| (format!("video:{i}"), serde_json::to_value(&value).unwrap()))
        .collect();
    let snap = dir.join("monolithic.json");
    let tmp = dir.join("monolithic.tmp");
    let mut j = 0usize;
    g.bench_function("full_rewrite_put_1k_keys", |b| {
        b.iter(|| {
            j = (j + 1) % 1000;
            map.insert(format!("video:{j}"), serde_json::to_value(&value).unwrap());
            let bytes = serde_json::to_vec_pretty(&map).unwrap();
            std::fs::write(&tmp, bytes).unwrap();
            std::fs::rename(&tmp, &snap).unwrap();
        })
    });
    g.finish();
    let _ = std::fs::remove_dir_all(&dir);
}

fn bench_segmentlog_compact(c: &mut Criterion) {
    let dir = std::env::temp_dir().join(format!("lightor-bench-compact-{}", std::process::id()));
    let _ = std::fs::remove_dir_all(&dir);
    std::fs::create_dir_all(&dir).unwrap();

    // 32 stored replays of 64 messages each; every iteration re-crawls
    // one video (orphaning its old record) and compacts the whole log.
    let chat = ChatLog::new(
        (0..64)
            .map(|i| {
                ChatMessage::new(
                    i as f64 * 1.5,
                    UserId(i as u64),
                    format!("message {i} with some realistic chat text 消息"),
                )
            })
            .collect(),
    );
    let mut store = ChatStore::open(&dir).unwrap();
    for vid in 0..32u64 {
        store.put_chat(VideoId(vid), &chat).unwrap();
    }

    let mut g = c.benchmark_group("segmentlog_compact");
    g.throughput(Throughput::Elements(32));
    let mut i = 0u64;
    g.bench_function("recrawl_then_compact_32_videos", |b| {
        b.iter(|| {
            i = (i + 1) % 32;
            store.put_chat(VideoId(i), &chat).unwrap();
            black_box(store.compact().unwrap())
        })
    });
    g.finish();
    let _ = std::fs::remove_dir_all(&dir);
}

fn bench_corpus_persist(c: &mut Criterion) {
    use lightor::{GlobalVocab, TokenizedChat};
    use lightor_platform::store::TokenizedRecord;

    let dir = std::env::temp_dir().join(format!("lightor-bench-corpus-{}", std::process::id()));
    let _ = std::fs::remove_dir_all(&dir);
    std::fs::create_dir_all(&dir).unwrap();

    // One bench-corpus replay stored both ways: the v2 chat record and
    // its v3 tokenized companion, exactly as the service persists them.
    let data = bench_dataset();
    let vid = VideoId(1);
    let mut store = ChatStore::open(&dir).unwrap();
    store
        .put_chat(vid, &data.videos[0].video.chat.to_chat_log())
        .unwrap();
    let view = store.get_chat_view(vid).unwrap().unwrap();
    let vocab = GlobalVocab::new();
    let (corpus, delta) = TokenizedChat::build_from_view_global(&view, &vocab);
    store
        .put_tokenized(&TokenizedRecord {
            video: vid,
            dim: corpus.dim() as u32,
            token_ends: corpus.token_ends().to_vec(),
            token_ids: corpus.token_ids().to_vec(),
            word_counts: corpus.word_counts().to_vec(),
            vocab_base: delta.base,
            vocab_terms: delta.terms.clone(),
        })
        .unwrap();

    let mut g = c.benchmark_group("corpus_persist");
    g.throughput(Throughput::Elements(view.len() as u64));
    // Pre-v3 cold path: read the replay, re-tokenize every message
    // (steady state: the global vocab is already warm).
    g.bench_function("rebuild_raw", |b| {
        b.iter(|| {
            let view = store.get_chat_view(vid).unwrap().unwrap();
            black_box(TokenizedChat::build_from_view_global(&view, &vocab))
        })
    });
    // v3 first touch: full decode including the vocab-term strings the
    // service absorbs into its shared vocabulary once per process.
    g.bench_function("load_v3_first_touch", |b| {
        b.iter(|| {
            let view = store.get_chat_view(vid).unwrap().unwrap();
            let rec = store.get_tokenized(vid).unwrap().unwrap();
            let ts: Vec<f64> = (0..view.len()).map(|i| view.ts(i).0).collect();
            black_box(
                TokenizedChat::from_columns(
                    ts,
                    rec.word_counts,
                    &rec.token_ends,
                    &rec.token_ids,
                    rec.dim as usize,
                )
                .expect("persisted columns are consistent"),
            )
        })
    });
    // v3 steady-state cold path: columns-only decode (terms validated
    // but not materialized), reassemble the corpus — no tokenizer, no
    // per-term allocation.
    g.bench_function("load_v3", |b| {
        b.iter(|| {
            let view = store.get_chat_view(vid).unwrap().unwrap();
            let rec = store.get_tokenized_columns(vid).unwrap().unwrap();
            let ts: Vec<f64> = (0..view.len()).map(|i| view.ts(i).0).collect();
            black_box(
                TokenizedChat::from_columns(
                    ts,
                    rec.word_counts,
                    &rec.token_ends,
                    &rec.token_ids,
                    rec.dim as usize,
                )
                .expect("persisted columns are consistent"),
            )
        })
    });
    g.finish();
    let _ = std::fs::remove_dir_all(&dir);
}

fn bench_http_serve(c: &mut Criterion) {
    let dir = std::env::temp_dir().join(format!("lightor-bench-http-{}", std::process::id()));
    let _ = std::fs::remove_dir_all(&dir);
    std::fs::create_dir_all(&dir).unwrap();

    let data = bench_dataset();
    let platform = SimPlatform::top_channels(GameKind::Dota2, 2, 2, 92);
    let vid = platform.recent_videos(platform.channels()[0].id)[0];
    let truth = platform.ground_truth(vid).unwrap().clone();
    let svc = Arc::new(
        LightorService::open(
            &dir,
            bench_models(&data),
            platform,
            ServiceConfig::default(),
        )
        .unwrap(),
    );
    let server = HttpServer::bind(("127.0.0.1", 0), svc, ServerConfig::default()).unwrap();
    let mut client = HttpClient::connect(server.local_addr()).unwrap();

    // Warm the state map and corpus cache: the bench measures the
    // serving path, not the first crawl.
    let dots_path = format!("/video/{}/dots", vid.0);
    assert_eq!(client.get(&dots_path).unwrap().status, 200);

    // One realistic session upload, serialized once.
    let session = Campaign::new(64, 0xBE7C)
        .run_task(
            &truth.video,
            Sec(truth.video.highlights[0].range.start.0),
            1,
        )
        .sessions
        .remove(0);
    let upload = lightor_platform::wire::SessionUpload {
        video: vid.0,
        client: session.user.0,
        events: session
            .events
            .iter()
            .map(|&e| lightor_platform::wire::EventDto::from(e))
            .collect(),
    };
    let session_json = serde_json::to_string(&upload).unwrap();

    let mut g = c.benchmark_group("http_serve");
    g.throughput(Throughput::Elements(1));
    // Warm page load: state-map hit + JSON + one socket round trip.
    g.bench_function("get_dots_warm", |b| {
        b.iter(|| {
            let resp = client.get(&dots_path).unwrap();
            assert_eq!(resp.status, 200);
            black_box(resp)
        })
    });
    // Implicit-feedback ingestion: parse + validate + buffer + refine.
    g.bench_function("post_session", |b| {
        b.iter(|| {
            let resp = client.post_json("/sessions", &session_json).unwrap();
            assert_eq!(resp.status, 200);
            black_box(resp)
        })
    });
    g.finish();
    server.shutdown();
    let _ = std::fs::remove_dir_all(&dir);
}

fn bench_router_proxy(c: &mut Criterion) {
    let dir = std::env::temp_dir().join(format!("lightor-bench-router-{}", std::process::id()));
    let _ = std::fs::remove_dir_all(&dir);
    std::fs::create_dir_all(&dir).unwrap();

    let data = bench_dataset();
    let platform = SimPlatform::top_channels(GameKind::Dota2, 2, 2, 92);
    let vid = platform.recent_videos(platform.channels()[0].id)[0];
    let svc = Arc::new(
        LightorService::open(
            &dir,
            bench_models(&data),
            platform,
            ServiceConfig::default(),
        )
        .unwrap(),
    );
    let backend = HttpServer::bind(("127.0.0.1", 0), svc, ServerConfig::default()).unwrap();
    let router = RouterServer::bind(
        ("127.0.0.1", 0),
        ClusterConfig::new(vec![backend.local_addr()]),
        ServerConfig::default(),
    )
    .unwrap();

    let mut direct = HttpClient::connect(backend.local_addr()).unwrap();
    let mut via_router = HttpClient::connect(router.local_addr()).unwrap();
    let dots_path = format!("/video/{}/dots", vid.0);
    // Warm both paths: the shard's state map plus the router's pooled
    // keep-alive connection to the backend.
    assert_eq!(direct.get(&dots_path).unwrap().status, 200);
    assert_eq!(via_router.get(&dots_path).unwrap().status, 200);

    // Same warm GET measured with and without the extra hop — the gap
    // is the router's proxy overhead (parse + shard + forward + relay),
    // budgeted at ≤ 2× the direct p50.
    let mut g = c.benchmark_group("router_proxy");
    g.throughput(Throughput::Elements(1));
    g.bench_function("direct", |b| {
        b.iter(|| {
            let resp = direct.get(&dots_path).unwrap();
            assert_eq!(resp.status, 200);
            black_box(resp)
        })
    });
    g.bench_function("via_router", |b| {
        b.iter(|| {
            let resp = via_router.get(&dots_path).unwrap();
            assert_eq!(resp.status, 200);
            black_box(resp)
        })
    });
    g.finish();
    router.shutdown();
    backend.shutdown();
    let _ = std::fs::remove_dir_all(&dir);
}

fn crowd_video() -> LabeledVideo {
    LabeledVideo {
        meta: VideoMeta {
            id: VideoId(0),
            channel: ChannelId(0),
            game: GameKind::Dota2,
            duration: Sec(3600.0),
            viewers: 500,
        },
        chat: ChatLogView::empty(),
        highlights: vec![
            Highlight::from_secs(700.0, 716.0),
            Highlight::from_secs(1990.0, 2005.0),
        ],
    }
}

fn bench_campaign_run_task(c: &mut Criterion) {
    let video = crowd_video();
    let dots = [Sec(1992.0), Sec(2000.0), Sec(2035.0), Sec(705.0)];

    // Forcing the worker count through the rayon stub's env knob is
    // safe here: no parallel region is live between benches, and the
    // bench binary itself is single-threaded.
    for (label, threads) in [("threads_1", Some("1")), ("threads_auto", None)] {
        match threads {
            Some(n) => std::env::set_var("RAYON_NUM_THREADS", n),
            None => std::env::remove_var("RAYON_NUM_THREADS"),
        }
        let mut g = c.benchmark_group(&format!("campaign_run_task/{label}"));
        let mut campaign = Campaign::new(492, 0xBE7C);
        g.bench_function("one_task_16", |b| {
            b.iter(|| black_box(campaign.run_task(&video, dots[0], 16)))
        });
        let tasks: Vec<(&LabeledVideo, Sec)> = dots.iter().map(|&d| (&video, d)).collect();
        g.bench_function("round_4x16", |b| {
            b.iter(|| black_box(campaign.run_tasks(&tasks, 16)))
        });
        g.finish();
    }
    std::env::remove_var("RAYON_NUM_THREADS");
}

fn bench_chat_generation(c: &mut Criterion) {
    use lightor_chatsim::{ChatGenerator, GameProfile, VideoGenerator};
    use lightor_simkit::SeedTree;

    let profile = Arc::new(GameProfile::dota2());
    let vg = VideoGenerator::new(profile.clone());
    let cg = ChatGenerator::new(profile);
    let root = SeedTree::new(7);
    let spec = {
        let mut vrng = root.child("v").rng();
        vg.generate(VideoId(0), ChannelId(0), &mut vrng)
    };
    let mut g = c.benchmark_group("chat_generation");
    g.sample_size(10);
    // Bump-buffer fast path: compiled-lexicon writers emitting the
    // columnar ChatLogView directly.
    g.bench_function("one_video", |b| {
        b.iter(|| {
            let mut crng = root.child("c").rng();
            black_box(cg.generate(spec.clone(), &mut crng))
        })
    });
    // Pre-refactor reference: one String per message, owned ChatLog,
    // then columnarization. Output is bit-identical; only cost differs.
    g.bench_function("one_video_reference", |b| {
        b.iter(|| {
            let mut crng = root.child("c").rng();
            black_box(cg.generate_reference(spec.clone(), &mut crng))
        })
    });
    g.finish();
}

fn bench_dataset_build(c: &mut Criterion) {
    use lightor_chatsim::Dataset;

    // A small corpus (8 videos ≈ one quick-scale experiment's worth of
    // setup) at one forced worker thread and at the environment's
    // thread count — the two series expose the fan-out win on
    // multi-core hosts while threads_1 tracks the pure per-video cost.
    const N_VIDEOS: usize = 8;
    for (label, threads) in [("threads_1", Some("1")), ("threads_auto", None)] {
        match threads {
            Some(n) => std::env::set_var("RAYON_NUM_THREADS", n),
            None => std::env::remove_var("RAYON_NUM_THREADS"),
        }
        let mut g = c.benchmark_group(&format!("dataset_build/{label}"));
        g.sample_size(10);
        g.throughput(Throughput::Elements(N_VIDEOS as u64));
        g.bench_function("dota2_8_videos", |b| {
            b.iter(|| black_box(Dataset::generate(GameKind::Dota2, N_VIDEOS, 0xBE7C)))
        });
        g.finish();
    }
    std::env::remove_var("RAYON_NUM_THREADS");
}

criterion_group!(
    benches,
    bench_chatstore_decode,
    bench_service_open_video_warm,
    bench_campaign_run_task,
    bench_kv_put_throughput,
    bench_segmentlog_compact,
    bench_corpus_persist,
    bench_http_serve,
    bench_router_proxy,
    bench_chat_generation,
    bench_dataset_build,
);
criterion_main!(benches);
