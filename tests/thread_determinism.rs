//! Worker-thread-count independence of the scoring pipeline, driven
//! through the rayon stub's `RAYON_NUM_THREADS` knob.
//!
//! This lives in its own integration-test binary on purpose: it
//! mutates the process environment, and `std::env::set_var` racing a
//! concurrent `std::env::var` (which the rayon stub performs on every
//! `featurize_windows` call) is undefined behaviour on glibc. A single
//! `#[test]` in a dedicated binary means nothing else reads the
//! variable while it is being written.

use lightor::{FeatureSet, HighlightInitializer, InitializerConfig};
use lightor_chatsim::dota2_dataset;

#[test]
fn red_dots_identical_across_thread_counts() {
    let data = dota2_dataset(3, 0xE0);
    let views: Vec<_> = data.videos[..2]
        .iter()
        .map(|v| lightor::TrainingVideo {
            chat: &v.video.chat,
            duration: v.video.meta.duration,
            highlights: &v.video.highlights,
            label_ranges: &v.response_ranges,
        })
        .collect();
    let init = HighlightInitializer::train(&views, FeatureSet::Full, InitializerConfig::default());
    let sv = &data.videos[2];
    let chat = &sv.video.chat;
    let dur = sv.video.meta.duration;

    // Baseline with whatever the environment provides.
    let reference = init.red_dots(chat, dur, 10);
    assert!(!reference.is_empty());

    // Force different worker counts through the rayon stub's env knob.
    for threads in ["1", "2", "4", "13"] {
        std::env::set_var("RAYON_NUM_THREADS", threads);
        let dots = init.red_dots(chat, dur, 10);
        assert_eq!(dots, reference, "thread count {threads} changed output");
    }
    std::env::remove_var("RAYON_NUM_THREADS");

    // And the naive reference path agrees end to end.
    let naive_scored = init.score_windows_naive(&chat.to_chat_log(), dur);
    let fast_scored = init.score_windows(chat, dur);
    assert_eq!(fast_scored, naive_scored);
}
