//! Equivalence guarantees for the incremental featurization engine:
//! the fast corpus path must reproduce the retained naive reference
//! exactly. (The thread-count sweep lives in its own test binary,
//! `tests/thread_determinism.rs`, because it mutates the process
//! environment and must not share a process with tests that read it.)

use lightor::TokenizedChat;
use lightor_types::{ChatLog, ChatMessage, Sec, TimeRange, UserId};
use proptest::prelude::*;

proptest! {
    #![proptest_config(ProptestConfig::with_cases(16))]

    #[test]
    fn corpus_features_match_naive_on_random_chat(
        times in proptest::collection::vec(0.0..600.0f64, 0..150),
        seed in 0u64..500,
    ) {
        let pool = ["gg", "wp", "kill", "wow", "pog", "nice", "play", "lol", "ez"];
        let chat = ChatLog::new(
            times
                .iter()
                .enumerate()
                .map(|(i, &t)| {
                    let k = 1 + ((seed as usize + i) % 5);
                    let text = (0..k)
                        .map(|j| pool[(i * 7 + j * 3 + seed as usize) % pool.len()])
                        .collect::<Vec<_>>()
                        .join(" ");
                    ChatMessage::new(t, UserId(i as u64), text)
                })
                .collect(),
        );
        let corpus = TokenizedChat::build(&chat);
        let windows = lightor::sliding_windows(&chat, Sec(600.0), 25.0, 0.5);
        for f in corpus.featurize_windows(&windows, 5.0) {
            let naive = lightor::WindowFeatures::compute(chat.slice(f.range));
            prop_assert_eq!(f.features, naive);
            let peak = lightor::window_peak(&chat, f.range, 5.0);
            prop_assert_eq!(f.peak, peak);
        }
        // Spot-check an arbitrary (non-grid) window too.
        let w = TimeRange::from_secs(13.0, 47.5);
        let fw = corpus.featurize_windows(&[w], 5.0);
        prop_assert_eq!(fw[0].features, lightor::WindowFeatures::compute(chat.slice(w)));
    }
}
