//! Crash recovery and storage maintenance across the deployment stack:
//! legacy-layout migration, WAL-only durability through a service
//! restart, and dead-byte reclaim driven from the service and crawler.

use lightor::{ExtractorConfig, FeatureSet, HighlightExtractor, ModelBundle};
use lightor_chatsim::{dota2_dataset, SimPlatform};
use lightor_crowdsim::Campaign;
use lightor_eval::harness::{train_initializer, train_type_classifier};
use lightor_platform::{
    ChatStore, Crawler, Fault, FaultInjector, FaultKind, LightorService, ServiceConfig,
};
use lightor_types::{ChannelId, GameKind};
use std::path::PathBuf;

struct TempDir(PathBuf);
impl TempDir {
    fn new(tag: &str) -> Self {
        let p = std::env::temp_dir().join(format!(
            "lightor-recovery-{tag}-{}-{}",
            std::process::id(),
            std::time::SystemTime::now()
                .duration_since(std::time::UNIX_EPOCH)
                .unwrap()
                .as_nanos()
        ));
        std::fs::create_dir_all(&p).unwrap();
        TempDir(p)
    }
}
impl Drop for TempDir {
    fn drop(&mut self) {
        let _ = std::fs::remove_dir_all(&self.0);
    }
}

fn models(seed: u64) -> ModelBundle {
    let data = dota2_dataset(2, seed);
    let train: Vec<_> = data.videos.iter().collect();
    let initializer = train_initializer(&train, FeatureSet::Full);
    let mut campaign = Campaign::new(200, seed ^ 9);
    let (classifier, _) = train_type_classifier(&train, &mut campaign, 3, seed ^ 10);
    ModelBundle {
        initializer,
        extractor: HighlightExtractor::new(classifier, ExtractorConfig::default()),
        provenance: format!("recovery seed {seed}"),
    }
}

/// A service directory written by the pre-shard layout (one monolithic
/// `state.json`) must migrate on open: same states, new layout, and the
/// legacy file gone.
#[test]
fn legacy_monolithic_state_migrates_on_service_open() {
    let dir = TempDir::new("migrate");
    let platform = SimPlatform::top_channels(GameKind::Dota2, 1, 2, 3001);
    let vid = platform.recent_videos(platform.channels()[0].id)[0];

    // Phase 1: run a service, then demote its state dir to the legacy
    // single-file layout by concatenating the shard snapshots.
    let state_before = {
        let svc = LightorService::open(
            &dir.0,
            models(3002),
            platform.clone(),
            ServiceConfig::default(),
        )
        .unwrap();
        svc.open_video(vid).unwrap().unwrap();
        svc.video_state(vid).unwrap()
    };
    let state_dir = dir.0.join("state");
    let mut merged: std::collections::BTreeMap<String, serde_json::Value> =
        std::collections::BTreeMap::new();
    for entry in std::fs::read_dir(&state_dir).unwrap() {
        let p = entry.unwrap().path();
        if p.extension().is_some_and(|e| e == "json") {
            let part: std::collections::BTreeMap<String, serde_json::Value> =
                serde_json::from_slice(&std::fs::read(&p).unwrap()).unwrap();
            merged.extend(part);
        }
    }
    assert!(
        !merged.is_empty() || {
            // State may still be WAL-only; fold the live state in directly.
            merged.insert(
                format!("video:{}", vid.0),
                serde_json::to_value(&state_before).unwrap(),
            );
            true
        }
    );
    std::fs::remove_dir_all(&state_dir).unwrap();
    std::fs::write(
        dir.0.join("state.json"),
        serde_json::to_vec_pretty(&merged).unwrap(),
    )
    .unwrap();

    // Phase 2: the next open migrates and serves the same state.
    let svc =
        LightorService::open(&dir.0, models(3002), platform, ServiceConfig::default()).unwrap();
    let state_after = svc.video_state(vid).expect("state survived migration");
    assert_eq!(state_before, state_after);
    assert!(
        !dir.0.join("state.json").exists(),
        "legacy file not retired"
    );
    assert!(dir.0.join("state").is_dir(), "sharded layout not created");
}

/// Refinement state persisted only to the WAL (no snapshot ever forced)
/// must survive a hard restart, and the persistence counters must show
/// the write path is WAL appends, not whole-store rewrites.
#[test]
fn wal_only_state_survives_restart() {
    let dir = TempDir::new("wal-restart");
    let platform = SimPlatform::top_channels(GameKind::Dota2, 1, 2, 3003);
    let vid = platform.recent_videos(platform.channels()[0].id)[0];
    let truth = platform.ground_truth(vid).unwrap().clone();

    let before = {
        let svc = LightorService::open(
            &dir.0,
            models(3004),
            platform.clone(),
            ServiceConfig::default(),
        )
        .unwrap();
        svc.open_video(vid).unwrap().unwrap();
        let mut crowd = Campaign::new(100, 3005);
        for d in svc.video_state(vid).unwrap().dots {
            for session in crowd.run_task(&truth.video, d.current, 12).sessions {
                svc.log_session(vid, &session);
            }
        }
        svc.refine_video(vid).unwrap();
        let stats = svc.stats();
        assert!(stats.kv_wal_appends >= 2, "open + refine must both persist");
        assert_eq!(
            stats.kv_shard_rewrites, 0,
            "puts must not trigger whole-shard rewrites below the threshold"
        );
        svc.video_state(vid).unwrap()
        // Dropped here without any snapshot: the state lives in the WAL.
    };

    let svc2 =
        LightorService::open(&dir.0, models(3004), platform, ServiceConfig::default()).unwrap();
    assert_eq!(svc2.video_state(vid).unwrap(), before);
}

/// `compact_storage` folds the WAL into shard snapshots and compacts
/// the chat log; the new counters surface all of it.
#[test]
fn compact_storage_snapshots_kv_and_reports_counters() {
    let dir = TempDir::new("compact");
    let platform = SimPlatform::top_channels(GameKind::Dota2, 2, 2, 3006);
    let svc = LightorService::open(
        &dir.0,
        models(3007),
        platform.clone(),
        ServiceConfig::default(),
    )
    .unwrap();
    for c in platform.channels() {
        for &vid in platform.recent_videos(c.id) {
            svc.open_video(vid).unwrap().unwrap();
        }
    }
    let before = svc.stats();
    assert!(before.kv_wal_bytes > 0, "opens must be pending in the WAL");
    assert_eq!(before.chat_dead_bytes, 0, "fresh crawls leave nothing dead");

    let stats = svc.compact_storage().unwrap();
    // Every open persisted a chat record plus its v3 tokenized
    // companion; both are live and both survive compaction.
    assert_eq!(stats.live_records, before.stored_videos * 2);
    let after = svc.stats();
    assert_eq!(after.kv_wal_bytes, 0, "snapshot must retire the WAL");
    assert!(after.kv_shard_rewrites > 0);
    assert_eq!(after.chat_dead_bytes, 0);
}

/// A WAL append whose `sync_data` is injected to fail must not
/// acknowledge: the service flips degraded, the trimmed WAL stays
/// clean, and a restart serves exactly the pre-failure state.
#[test]
fn injected_wal_sync_failure_degrades_without_corrupting() {
    let dir = TempDir::new("sync-fault");
    let platform = SimPlatform::top_channels(GameKind::Dota2, 1, 2, 3101);
    let vids = platform.recent_videos(platform.channels()[0].id).to_vec();

    let before = {
        let svc = LightorService::open(
            &dir.0,
            models(3102),
            platform.clone(),
            ServiceConfig::default(),
        )
        .unwrap();
        svc.open_video(vids[0]).unwrap().unwrap();
        let good = svc.video_state(vids[0]).unwrap();

        // The next WAL append writes fully but its sync fails: the
        // frame must be trimmed and the write reported as failed.
        svc.fault_injector()
            .arm(Fault::once("kv.wal.sync", FaultKind::Error));
        let err = svc.open_video(vids[1]).unwrap_err();
        assert_eq!(err.to_string(), "injected fault at kv.wal.sync");
        assert!(svc.is_degraded(), "failed persistence must flip degraded");
        assert!(svc.stats().degraded);
        assert_eq!(svc.fault_injector().fired("kv.wal.sync"), 1);
        good
    };

    // Restart: the unsynced frame was trimmed, so replay is clean and
    // only the acknowledged video is there.
    let svc2 = LightorService::open(
        &dir.0,
        models(3102),
        platform.clone(),
        ServiceConfig::default(),
    )
    .unwrap();
    assert_eq!(svc2.video_state(vids[0]).unwrap(), before);
    assert!(
        svc2.video_state(vids[1]).is_none(),
        "unacknowledged state must not reappear"
    );
    assert!(
        !svc2.is_degraded(),
        "degraded does not persist across opens"
    );
    // The store still works: the failed video can be re-opened cleanly.
    svc2.open_video(vids[1]).unwrap().unwrap();
}

/// A torn WAL append — the write dies mid-frame, the partial bytes hit
/// disk, and even the cleanup `set_len` fails — leaves a genuinely
/// durable torn tail. Replay at the next open must truncate it and
/// recover every acknowledged record, for a tear inside the frame
/// header and for one inside the CRC-covered payload.
#[test]
fn injected_torn_wal_tail_is_truncated_on_recovery() {
    for (keep, tag) in [(5usize, "header"), (32usize, "payload")] {
        let dir = TempDir::new(&format!("torn-{tag}"));
        let platform = SimPlatform::top_channels(GameKind::Dota2, 1, 2, 3103);
        let vids = platform.recent_videos(platform.channels()[0].id).to_vec();

        let before = {
            let svc = LightorService::open(
                &dir.0,
                models(3104),
                platform.clone(),
                ServiceConfig::default(),
            )
            .unwrap();
            svc.open_video(vids[0]).unwrap().unwrap();
            let good = svc.video_state(vids[0]).unwrap();

            // Tear the next append after `keep` durable bytes AND fail
            // the trim that would normally clean up, so the torn frame
            // really reaches disk — the crash-mid-write worst case.
            let inj: &FaultInjector = svc.fault_injector();
            inj.arm(Fault::once("kv.wal.write", FaultKind::TornWrite { keep }));
            inj.arm(Fault::once("kv.wal.trim", FaultKind::Error));
            svc.open_video(vids[1]).unwrap_err();
            assert!(svc.is_degraded());
            assert_eq!(inj.fired("kv.wal.write"), 1, "torn write fired ({tag})");
            assert_eq!(inj.fired("kv.wal.trim"), 1, "trim failure fired ({tag})");
            good
        };

        // The WAL now ends in a torn frame. Recovery must truncate it,
        // keep the acknowledged record, and accept new writes.
        let svc2 = LightorService::open(
            &dir.0,
            models(3104),
            platform.clone(),
            ServiceConfig::default(),
        )
        .unwrap();
        assert_eq!(
            svc2.video_state(vids[0]).unwrap(),
            before,
            "acknowledged state lost to a torn tail ({tag})"
        );
        assert!(
            svc2.video_state(vids[1]).is_none(),
            "torn frame must not replay ({tag})"
        );
        svc2.open_video(vids[1]).unwrap().unwrap();
        assert!(svc2.video_state(vids[1]).is_some());
    }
}

/// A degraded service heals through `compact_storage`: the successful
/// snapshot proves persistence works again and clears the flag.
#[test]
fn compaction_clears_degraded_mode() {
    let dir = TempDir::new("heal");
    let platform = SimPlatform::top_channels(GameKind::Dota2, 1, 2, 3105);
    let vids = platform.recent_videos(platform.channels()[0].id).to_vec();
    let svc = LightorService::open(
        &dir.0,
        models(3106),
        platform.clone(),
        ServiceConfig::default(),
    )
    .unwrap();
    svc.open_video(vids[0]).unwrap().unwrap();

    svc.fault_injector()
        .arm(Fault::once("kv.wal.write", FaultKind::Error));
    svc.open_video(vids[1]).unwrap_err();
    assert!(svc.is_degraded());
    // Warm reads still work while degraded (read-only mode). Even the
    // failed video reads warm: open_video publishes to memory before
    // persisting, so only its durability was lost.
    assert!(svc.cached_dots(vids[0]).is_some());
    assert!(svc.cached_dots(vids[1]).is_some());

    // …and a successful compaction (fault was once-only) heals it.
    svc.compact_storage().unwrap();
    assert!(
        !svc.is_degraded(),
        "successful compaction must clear degraded"
    );
    assert!(!svc.stats().degraded);
    svc.open_video(vids[1]).unwrap().unwrap();
}

/// A chat store written before the v3 tokenized sections existed (the
/// crawler writes v2 chat records only) must open mixed: the first
/// service generation rebuilds every corpus from raw text and lazily
/// persists v3 companions; the next generation decodes them all with
/// zero re-tokenizations — and scores bit-exactly either way.
#[test]
fn mixed_v2_v3_store_upgrades_lazily_and_reloads_tokenized() {
    let dir = TempDir::new("mixed-v3");
    let platform = SimPlatform::top_channels(GameKind::Dota2, 1, 2, 3201);
    let channels: Vec<ChannelId> = platform.channels().iter().map(|c| c.id).collect();
    let vids: Vec<_> = platform.recent_videos(channels[0]).to_vec();

    // Phase 1: a v2-only store, as any pre-v3 deployment left behind.
    {
        let mut store = ChatStore::open(dir.0.join("chat")).unwrap();
        Crawler::new(&platform)
            .offline_pass(&channels, &mut store)
            .unwrap();
    }

    // Phase 2: first open on the mixed store — everything rebuilds,
    // and every rebuild lazily upgrades to a persisted v3 section.
    let scores_rebuilt = {
        let svc = LightorService::open(
            &dir.0,
            models(3202),
            platform.clone(),
            ServiceConfig::default(),
        )
        .unwrap();
        let (loaded, rebuilt) = svc.warm_corpora().unwrap();
        assert_eq!((loaded, rebuilt), (0, vids.len()), "v2-only store");
        let stats = svc.stats();
        assert_eq!(stats.tokenized_hits, 0);
        assert_eq!(stats.tokenized_misses, vids.len() as u64);
        assert_eq!(stats.tokenized_lazy_upgrades, vids.len() as u64);
        vids.iter()
            .map(|&v| svc.rescore_video(v, 5).unwrap().unwrap())
            .collect::<Vec<_>>()
    };

    // Phase 3: restart — every corpus decodes from its v3 section, the
    // tokenizer never runs, and scores are bit-identical.
    let svc2 = LightorService::open(
        &dir.0,
        models(3202),
        platform.clone(),
        ServiceConfig::default(),
    )
    .unwrap();
    let (loaded, rebuilt) = svc2.warm_corpora().unwrap();
    assert_eq!(
        (loaded, rebuilt),
        (vids.len(), 0),
        "restart must not re-tokenize"
    );
    let stats = svc2.stats();
    assert_eq!(stats.tokenized_hits, vids.len() as u64);
    assert_eq!(stats.tokenized_misses, 0);
    for (i, &v) in vids.iter().enumerate() {
        assert_eq!(
            svc2.rescore_video(v, 5).unwrap().unwrap(),
            scores_rebuilt[i],
            "decoded corpus must score bit-exactly vs rebuilt"
        );
    }
}

/// A torn v3 tokenized-companion write (crash mid-append) must not cost
/// anything durable: the paired chat record — written and synced first —
/// survives, reopen truncates the torn frame, and the corpus silently
/// rebuilds (and re-upgrades) on the next open.
#[test]
fn torn_tokenized_tail_is_truncated_and_rebuilt() {
    let dir = TempDir::new("torn-tok");
    let platform = SimPlatform::top_channels(GameKind::Dota2, 1, 2, 3203);
    let vid = platform.recent_videos(platform.channels()[0].id)[0];

    let dots_before = {
        let svc = LightorService::open(
            &dir.0,
            models(3204),
            platform.clone(),
            ServiceConfig::default(),
        )
        .unwrap();
        // Tear the v3 companion append mid-frame. The chat append uses a
        // different fault point ("log.append.write"), so the crawl's own
        // write goes through untouched.
        svc.fault_injector().arm(Fault::once(
            "log.tok.write",
            FaultKind::TornWrite { keep: 9 },
        ));
        let dots = svc.open_video(vid).unwrap().unwrap();
        assert_eq!(svc.fault_injector().fired("log.tok.write"), 1);
        // Losing the lazy upgrade is a perf event, not a durability one.
        assert!(!svc.is_degraded(), "a failed v3 upgrade must not degrade");
        assert_eq!(svc.stats().tokenized_lazy_upgrades, 0);
        dots
    };

    // Reopen over the torn tail: the chat record replays, the torn v3
    // frame is truncated, and the corpus rebuilds (miss, not a hit) —
    // this time persisting its v3 section successfully.
    let svc2 = LightorService::open(
        &dir.0,
        models(3204),
        platform.clone(),
        ServiceConfig::default(),
    )
    .unwrap();
    let (loaded, rebuilt) = svc2.warm_corpora().unwrap();
    assert_eq!((loaded, rebuilt), (0, 1), "torn v3 frame must not decode");
    assert_eq!(svc2.stats().tokenized_lazy_upgrades, 1);
    assert_eq!(svc2.cached_dots(vid).unwrap(), dots_before);

    // Third generation proves the re-upgrade stuck.
    drop(svc2);
    let svc3 =
        LightorService::open(&dir.0, models(3204), platform, ServiceConfig::default()).unwrap();
    assert_eq!(svc3.warm_corpora().unwrap(), (1, 0));
}

/// The crawler's re-crawl path accumulates dead bytes in the chat log
/// and reclaims ≥ 50% of them once past the thresholds, with every live
/// replay intact (the acceptance-criteria workload at store level).
#[test]
fn recrawl_workload_reclaims_half_of_dead_bytes() {
    let dir = TempDir::new("recrawl");
    let platform = SimPlatform::top_channels(GameKind::Dota2, 2, 3, 3008);
    let mut store = ChatStore::open(dir.0.join("chat")).unwrap();
    let crawler = Crawler::new(&platform);
    let channels: Vec<ChannelId> = platform.channels().iter().map(|c| c.id).collect();
    crawler.offline_pass(&channels, &mut store).unwrap();

    // Two refresh generations without reclaim would leave 2/3 dead;
    // run them through the re-crawl path and measure what came back.
    let mut reclaimed = 0u64;
    for _ in 0..2 {
        reclaimed += crawler
            .recrawl_pass(&channels, &mut store)
            .unwrap()
            .reclaimed_bytes;
    }
    let dead_seen = reclaimed + store.dead_bytes();
    assert!(dead_seen > 0, "re-crawls must orphan bytes");
    assert!(
        reclaimed * 2 >= dead_seen,
        "reclaimed {reclaimed} of {dead_seen} dead bytes (< 50%)"
    );
    for &ch in &channels {
        for &vid in platform.recent_videos(ch) {
            assert_eq!(
                &store.get_chat(vid).unwrap().unwrap(),
                platform.fetch_chat(vid).unwrap(),
                "live replay damaged by compaction"
            );
        }
    }
}
