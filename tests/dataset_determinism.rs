//! Thread-count independence and seed-compat pinning of dataset
//! construction, driven through the rayon stub's `RAYON_NUM_THREADS`
//! knob.
//!
//! Like `tests/thread_determinism.rs`, this lives in its own
//! integration-test binary on purpose: it mutates the process
//! environment, and `std::env::set_var` racing a concurrent
//! `std::env::var` (which the rayon stub performs on every parallel
//! call) is undefined behaviour on glibc. A single `#[test]` per binary
//! means nothing else reads the variable while it is being written.

use lightor_chatsim::{dota2_dataset, lol_dataset, ChatGenerator, Dataset, VideoGenerator};
use lightor_chatsim::{GameProfile, SimPlatform, SimVideo};
use lightor_simkit::SeedTree;
use lightor_types::{ChannelId, GameKind, VideoId};
use std::sync::Arc;

/// Deep corpus equality: every message's timestamp bits, user and text,
/// plus the labels the trainer consumes.
fn assert_corpora_identical(a: &[SimVideo], b: &[SimVideo], what: &str) {
    assert_eq!(a.len(), b.len(), "{what}: video count");
    for (i, (x, y)) in a.iter().zip(b).enumerate() {
        assert_eq!(x.video.chat, y.video.chat, "{what}: video {i} chat");
        assert_eq!(
            x.video.highlights, y.video.highlights,
            "{what}: video {i} highlights"
        );
        assert_eq!(
            x.response_ranges, y.response_ranges,
            "{what}: video {i} response ranges"
        );
        assert_eq!(
            x.reaction_delays, y.reaction_delays,
            "{what}: video {i} delays"
        );
    }
}

#[test]
fn generated_corpora_identical_across_thread_counts() {
    const SEED: u64 = 0xDA7A5E7;

    // Baseline with whatever the environment provides.
    let dota = dota2_dataset(6, SEED);
    let lol = lol_dataset(4, SEED ^ 1);
    let platform = SimPlatform::top_channels(GameKind::Dota2, 2, 3, SEED ^ 2);

    // Sweep worker counts through the rayon stub's env knob: corpora
    // must be byte-identical — the per-video SeedTree streams make the
    // parallel build order-free.
    for threads in ["1", "2", "8"] {
        std::env::set_var("RAYON_NUM_THREADS", threads);
        let dota_t = dota2_dataset(6, SEED);
        let lol_t = lol_dataset(4, SEED ^ 1);
        assert_corpora_identical(
            &dota_t.videos,
            &dota.videos,
            &format!("dota2 @ {threads} threads"),
        );
        assert_corpora_identical(
            &lol_t.videos,
            &lol.videos,
            &format!("lol @ {threads} threads"),
        );

        // The catalog/platform build fans out the same way.
        let platform_t = SimPlatform::top_channels(GameKind::Dota2, 2, 3, SEED ^ 2);
        assert_eq!(platform_t.video_count(), platform.video_count());
        for ch in platform.channels() {
            for vid in platform.recent_videos(ch.id) {
                assert_eq!(
                    platform_t.fetch_chat(*vid).unwrap(),
                    platform.fetch_chat(*vid).unwrap(),
                    "platform video {vid} @ {threads} threads"
                );
            }
        }
    }

    // Pin single-threaded output: with one worker, the parallel
    // builder, the serial builder, and the retained owned-String
    // reference generator (the pre-refactor cost model over the same
    // sampler) must all agree bit-for-bit for the reference seed —
    // proving the bump-buffer fast path changes cost, not content.
    // (The sampler itself is PR 5's: the draw-stream change vs PR ≤ 4
    // is documented in CHANGES.md.)
    std::env::set_var("RAYON_NUM_THREADS", "1");
    let fast = dota2_dataset(3, SEED);
    let serial = Dataset::generate_serial(GameKind::Dota2, 3, SEED);
    assert_corpora_identical(&fast.videos, &serial.videos, "parallel vs serial");

    let profile = Arc::new(GameProfile::dota2());
    let vg = VideoGenerator::new(profile.clone());
    let cg = ChatGenerator::new(profile);
    let root = SeedTree::new(SEED)
        .child("dataset")
        .child(GameKind::Dota2.name());
    let reference: Vec<SimVideo> = (0..3u64)
        .map(|i| {
            let node = root.index(i);
            let mut vrng = node.child("spec").rng();
            let spec = vg.generate(VideoId(i), ChannelId(1000 + i % 10), &mut vrng);
            let mut crng = node.child("chat").rng();
            cg.generate_reference(spec, &mut crng)
        })
        .collect();
    assert_corpora_identical(&fast.videos, &reference, "fast vs pre-refactor reference");

    std::env::remove_var("RAYON_NUM_THREADS");
}
