//! Integration tests for the HTTP edge: the paper's Figure 5 loop over
//! real loopback sockets — concurrent clients, keep-alive reuse,
//! malformed-input status codes, graceful-shutdown drain, and
//! restart-recovers-state (the `storage_recovery` fixture recipe, now
//! exercised through the server).

use lightor::{ExtractorConfig, FeatureSet, HighlightExtractor, ModelBundle};
use lightor_chatsim::{dota2_dataset, SimPlatform};
use lightor_crowdsim::Campaign;
use lightor_eval::harness::{train_initializer, train_type_classifier};
use lightor_platform::wire::{DotsResponse, EventDto, SessionUpload, StatsResponse};
use lightor_platform::{LightorService, ServiceConfig};
use lightor_server::{HttpClient, HttpServer, ServerConfig, SessionAccepted};
use lightor_types::{GameKind, Session, VideoId};
use std::io::Write;
use std::path::PathBuf;
use std::sync::Arc;
use std::time::Duration;

struct TempDir(PathBuf);
impl TempDir {
    fn new(tag: &str) -> Self {
        let p = std::env::temp_dir().join(format!(
            "lightor-http-{tag}-{}-{}",
            std::process::id(),
            std::time::SystemTime::now()
                .duration_since(std::time::UNIX_EPOCH)
                .unwrap()
                .as_nanos()
        ));
        std::fs::create_dir_all(&p).unwrap();
        TempDir(p)
    }
}
impl Drop for TempDir {
    fn drop(&mut self) {
        let _ = std::fs::remove_dir_all(&self.0);
    }
}

/// The `storage_recovery` model fixture: trained on simulated labelled
/// videos, deterministic per seed.
fn models(seed: u64) -> ModelBundle {
    let data = dota2_dataset(2, seed);
    let train: Vec<_> = data.videos.iter().collect();
    let initializer = train_initializer(&train, FeatureSet::Full);
    let mut campaign = Campaign::new(200, seed ^ 9);
    let (classifier, _) = train_type_classifier(&train, &mut campaign, 3, seed ^ 10);
    ModelBundle {
        initializer,
        extractor: HighlightExtractor::new(classifier, ExtractorConfig::default()),
        provenance: format!("http-server seed {seed}"),
    }
}

/// Service + server over a fresh platform; returns the platform too so
/// tests can find video ids and ground truth.
fn serve(dir: &std::path::Path, seed: u64) -> (HttpServer, SimPlatform) {
    let platform = SimPlatform::top_channels(GameKind::Dota2, 2, 2, seed);
    let svc = Arc::new(
        LightorService::open(
            dir,
            models(seed ^ 1),
            platform.clone(),
            ServiceConfig::default(),
        )
        .unwrap(),
    );
    let server = HttpServer::bind(("127.0.0.1", 0), svc, ServerConfig::default()).unwrap();
    (server, platform)
}

fn upload_json(video: u64, session: &Session) -> String {
    let upload = SessionUpload {
        video,
        client: session.user.0,
        events: session.events.iter().map(|&e| EventDto::from(e)).collect(),
    };
    serde_json::to_string(&upload).unwrap()
}

#[test]
fn full_paper_loop_over_real_sockets() {
    let dir = TempDir::new("loop");
    let (server, platform) = serve(&dir.0, 4001);
    let vid = platform.recent_videos(platform.channels()[0].id)[0];
    let truth = platform.ground_truth(vid).unwrap().clone();
    let mut client = HttpClient::connect(server.local_addr()).unwrap();

    // 1. Page load: fetch the dots.
    let resp = client.get(&format!("/video/{}/dots", vid.0)).unwrap();
    assert_eq!(resp.status, 200, "{}", resp.body_str());
    let dots: DotsResponse = resp.json().unwrap();
    assert_eq!(dots.video, vid.0);
    assert!(!dots.dots.is_empty());

    // 2. Viewers watch; the extension uploads their sessions.
    let mut crowd = Campaign::new(150, 4002);
    let mut refined_total = 0usize;
    for _ in 0..3 {
        for dot in &dots.dots {
            let task = crowd.run_task(&truth.video, lightor_types::Sec(dot.at_seconds), 12);
            for session in &task.sessions {
                let resp = client
                    .post_json("/sessions", &upload_json(vid.0, session))
                    .unwrap();
                assert_eq!(resp.status, 200, "{}", resp.body_str());
                let accepted: SessionAccepted = resp.json().unwrap();
                assert_eq!(accepted.video, vid.0);
                refined_total += accepted.dots_refined;
            }
        }
    }
    assert!(refined_total > 0, "no refinement round ran over the wire");

    // 3. The next page load sees refined (moved) dots.
    let resp = client.get(&format!("/video/{}/dots", vid.0)).unwrap();
    let after: DotsResponse = resp.json().unwrap();
    assert_eq!(after.dots.len(), dots.dots.len());
    assert!(
        after
            .dots
            .iter()
            .zip(&dots.dots)
            .any(|(a, b)| (a.at_seconds - b.at_seconds).abs() > 1e-9),
        "refinement did not move any dot"
    );

    // 4. Rescore at a different k.
    let resp = client
        .post_json(&format!("/video/{}/rescore", vid.0), "{\"k\": 3}")
        .unwrap();
    assert_eq!(resp.status, 200);
    let rescored: DotsResponse = resp.json().unwrap();
    assert_eq!(rescored.dots.len(), 3);

    // 5. Operations: stats carries both service and per-route counters.
    let resp = client.get("/stats").unwrap();
    assert_eq!(resp.status, 200);
    let stats: StatsResponse = resp.json().unwrap();
    assert_eq!(stats.stored_videos, 1);
    let dots_row = stats
        .http
        .iter()
        .find(|r| r.route == "GET /video/{id}/dots")
        .expect("dots route counters present");
    assert_eq!(dots_row.requests, 2);
    assert_eq!(dots_row.errors, 0);
    assert!(dots_row.latency_total_us > 0);
    let sessions_row = stats
        .http
        .iter()
        .find(|r| r.route == "POST /sessions")
        .unwrap();
    assert!(sessions_row.requests > 0);

    // 6. Compaction over the wire.
    let resp = client.post_json("/admin/compact", "").unwrap();
    assert_eq!(resp.status, 200);
    assert!(resp.body_str().contains("live_records"));

    server.shutdown();
}

#[test]
fn concurrent_clients_hammer_the_server() {
    let dir = TempDir::new("hammer");
    let (server, platform) = serve(&dir.0, 4010);
    let vids: Vec<VideoId> = platform
        .channels()
        .iter()
        .flat_map(|c| platform.recent_videos(c.id).to_vec())
        .collect();
    assert!(vids.len() >= 4);
    let addr = server.local_addr();

    // Warm every video once so sessions are accepted.
    let mut warm = HttpClient::connect(addr).unwrap();
    for vid in &vids {
        assert_eq!(
            warm.get(&format!("/video/{}/dots", vid.0)).unwrap().status,
            200
        );
    }

    let truths: Vec<_> = vids
        .iter()
        .map(|&v| platform.ground_truth(v).unwrap().clone())
        .collect();
    let threads = 8;
    let per_thread = 12;
    std::thread::scope(|scope| {
        for t in 0..threads {
            let vids = &vids;
            let truths = &truths;
            scope.spawn(move || {
                let mut client = HttpClient::connect(addr).unwrap();
                let mut crowd = Campaign::new(40, 5000 + t as u64);
                for i in 0..per_thread {
                    let vid = vids[(t + i) % vids.len()];
                    let truth = &truths[(t + i) % vids.len()];
                    match i % 3 {
                        0 => {
                            let r = client.get(&format!("/video/{}/dots", vid.0)).unwrap();
                            assert_eq!(r.status, 200, "{}", r.body_str());
                        }
                        1 => {
                            let dot = truth.video.highlights[0].range.start;
                            let task = crowd.run_task(&truth.video, dot, 4);
                            let r = client
                                .post_json("/sessions", &upload_json(vid.0, &task.sessions[0]))
                                .unwrap();
                            assert_eq!(r.status, 200, "{}", r.body_str());
                        }
                        _ => {
                            let r = client
                                .post_json(&format!("/video/{}/rescore", vid.0), "{\"k\": 4}")
                                .unwrap();
                            assert_eq!(r.status, 200, "{}", r.body_str());
                        }
                    }
                }
            });
        }
    });

    // Every request must be accounted for in the route counters.
    let mut client = HttpClient::connect(addr).unwrap();
    let stats: StatsResponse = client.get("/stats").unwrap().json().unwrap();
    let total: u64 = stats.http.iter().map(|r| r.requests).sum();
    assert!(
        total >= (threads * per_thread + vids.len()) as u64,
        "counters lost requests: {total}"
    );
    let errors: u64 = stats.http.iter().map(|r| r.errors).sum();
    assert_eq!(errors, 0, "hammering produced error responses");
    server.shutdown();
}

#[test]
fn keep_alive_reuses_one_connection() {
    let dir = TempDir::new("keepalive");
    let (server, platform) = serve(&dir.0, 4020);
    let vid = platform.recent_videos(platform.channels()[0].id)[0];
    let mut client = HttpClient::connect(server.local_addr()).unwrap();

    // Many sequential requests on one TCP connection; every response
    // must advertise keep-alive (same stream, no reconnects).
    for i in 0..20 {
        let resp = if i % 2 == 0 {
            client.get("/healthz").unwrap()
        } else {
            client.get(&format!("/video/{}/dots", vid.0)).unwrap()
        };
        assert_eq!(resp.status, 200);
        assert_eq!(resp.header("connection"), Some("keep-alive"), "req {i}");
    }
    // An explicit Connection: close is honoured.
    let resp = client
        .send_raw(b"GET /healthz HTTP/1.1\r\nConnection: close\r\n\r\n")
        .unwrap();
    assert_eq!(resp.status, 200);
    assert!(resp.closed());
    server.shutdown();
}

#[test]
fn malformed_requests_get_the_right_status_codes() {
    let dir = TempDir::new("malformed");
    let (server, platform) = serve(&dir.0, 4030);
    let vid = platform.recent_videos(platform.channels()[0].id)[0];
    let addr = server.local_addr();
    // Track a video so unknown-video vs tracked is distinguishable.
    HttpClient::connect(addr)
        .unwrap()
        .get(&format!("/video/{}/dots", vid.0))
        .unwrap();

    // Parse-level failures (connection closes afterwards → fresh
    // client per case).
    let parse_cases: Vec<(&[u8], u16)> = vec![
        (b"NOT A REQUEST\r\n\r\n", 400),
        (b"GET /healthz HTTP/2.0\r\n\r\n", 400),
        (b"GET /healthz HTTP/1.1\r\nbroken header\r\n\r\n", 400),
        (
            b"POST /sessions HTTP/1.1\r\nContent-Length: nope\r\n\r\n",
            400,
        ),
        (
            // Chunked is supported now; an *unknown* coding is not.
            b"POST /sessions HTTP/1.1\r\nTransfer-Encoding: gzip\r\n\r\n",
            501,
        ),
        (
            // TE + Content-Length together is a smuggling vector.
            b"POST /sessions HTTP/1.1\r\nTransfer-Encoding: chunked\r\nContent-Length: 3\r\n\r\n",
            400,
        ),
    ];
    for (raw, want) in parse_cases {
        let mut c = HttpClient::connect(addr).unwrap();
        let resp = c.send_raw(raw).unwrap();
        assert_eq!(resp.status, want, "{}", resp.body_str());
        assert!(resp.closed(), "parse errors must close the connection");
    }

    // Oversized head → 431.
    let mut c = HttpClient::connect(addr).unwrap();
    let mut raw = b"GET /healthz HTTP/1.1\r\nX-Padding: ".to_vec();
    raw.extend(vec![b'a'; 9000]);
    raw.extend_from_slice(b"\r\n\r\n");
    let resp = c.send_raw(&raw).unwrap();
    assert_eq!(resp.status, 431);

    // Oversized declared body → 413 (default cap is 1 MiB).
    let mut c = HttpClient::connect(addr).unwrap();
    let resp = c
        .send_raw(b"POST /sessions HTTP/1.1\r\nContent-Length: 2097152\r\n\r\n")
        .unwrap();
    assert_eq!(resp.status, 413);

    // Semantic failures keep the connection alive.
    let mut c = HttpClient::connect(addr).unwrap();
    let resp = c.get("/no/such/route").unwrap();
    assert_eq!(resp.status, 404);
    let resp = c.request("POST", "/healthz", None).unwrap();
    assert_eq!(resp.status, 405);
    let resp = c.get("/video/notanumber/dots").unwrap();
    assert_eq!(resp.status, 400);
    let resp = c.get("/video/999999/dots").unwrap();
    assert_eq!(resp.status, 404, "platform-unknown video");
    let resp = c.post_json("/sessions", "this is not json").unwrap();
    assert_eq!(resp.status, 400);
    // NaN timestamp → 422 typed error.
    let resp = c
        .post_json(
            "/sessions",
            &format!(
                r#"{{"video":{},"client":1,"events":[{{"type":"play","at":NaN}}]}}"#,
                vid.0
            ),
        )
        .unwrap();
    assert_eq!(resp.status, 400, "NaN is not even valid JSON");
    let resp = c
        .post_json(
            "/sessions",
            &format!(
                r#"{{"video":{},"client":1,"events":[{{"type":"play","at":-5.0}}]}}"#,
                vid.0
            ),
        )
        .unwrap();
    assert_eq!(resp.status, 422);
    assert!(
        resp.body_str().contains("negative_timestamp"),
        "{}",
        resp.body_str()
    );
    // Session for a video nobody tracked → 422 unknown_video.
    let resp = c
        .post_json(
            "/sessions",
            r#"{"video":999999,"client":1,"events":[{"type":"play","at":5.0}]}"#,
        )
        .unwrap();
    assert_eq!(resp.status, 422);
    assert!(
        resp.body_str().contains("unknown_video"),
        "{}",
        resp.body_str()
    );
    // Empty session → 422 no_events.
    let resp = c
        .post_json(
            "/sessions",
            &format!(r#"{{"video":{},"client":1,"events":[]}}"#, vid.0),
        )
        .unwrap();
    assert_eq!(resp.status, 422);
    assert!(resp.body_str().contains("no_events"));
    // Bad rescore k → 422.
    let resp = c
        .post_json(&format!("/video/{}/rescore", vid.0), "{\"k\": 0}")
        .unwrap();
    assert_eq!(resp.status, 422);

    // All of those must be visible in the error counters.
    let stats: StatsResponse = c.get("/stats").unwrap().json().unwrap();
    let errors: u64 = stats.http.iter().map(|r| r.errors).sum();
    assert!(
        errors >= 12,
        "expected the failure matrix in counters, got {errors}"
    );
    server.shutdown();
}

#[test]
fn graceful_shutdown_drains_the_in_flight_request() {
    let dir = TempDir::new("drain");
    let (server, platform) = serve(&dir.0, 4040);
    let vid = platform.recent_videos(platform.channels()[0].id)[0];
    let addr = server.local_addr();

    // Warm the video so the drained request is cheap and deterministic.
    HttpClient::connect(addr)
        .unwrap()
        .get(&format!("/video/{}/dots", vid.0))
        .unwrap();

    // Start a request but hold back the final bytes so it is in flight
    // when shutdown fires.
    let mut client = HttpClient::connect(addr).unwrap();
    let head = format!("GET /video/{}/dots HTTP/1.1\r\nHost: h\r\n\r\n", vid.0);
    let (partial, rest) = head.as_bytes().split_at(head.len() - 4);
    // Raw write without waiting for a response yet.
    clientside_write(&mut client, partial);
    // Give the worker time to read the partial request into its parser.
    std::thread::sleep(Duration::from_millis(150));

    let shutdown_thread = std::thread::spawn(move || {
        server.shutdown();
    });
    // Shutdown is now draining; complete the request.
    std::thread::sleep(Duration::from_millis(100));
    let resp = client.send_raw(rest).unwrap();
    assert_eq!(resp.status, 200, "in-flight request was not drained");
    let dots: DotsResponse = resp.json().unwrap();
    assert!(!dots.dots.is_empty());
    assert!(resp.closed(), "drained connection must announce close");
    shutdown_thread.join().unwrap();

    // After shutdown the port no longer accepts work.
    assert!(
        HttpClient::connect(addr).is_err() || {
            let mut c = HttpClient::connect(addr).unwrap();
            c.get("/healthz").is_err()
        },
        "server still serving after shutdown"
    );
}

/// Write bytes on the client's stream without reading a response.
fn clientside_write(client: &mut HttpClient, bytes: &[u8]) {
    client.stream_mut().write_all(bytes).unwrap();
}

#[test]
fn restart_recovers_refined_state_over_http() {
    let dir = TempDir::new("restart");
    let vid;
    let refined_dots: DotsResponse;
    {
        let (server, platform) = serve(&dir.0, 4050);
        vid = platform.recent_videos(platform.channels()[0].id)[0];
        let truth = platform.ground_truth(vid).unwrap().clone();
        let mut client = HttpClient::connect(server.local_addr()).unwrap();
        let dots: DotsResponse = client
            .get(&format!("/video/{}/dots", vid.0))
            .unwrap()
            .json()
            .unwrap();
        let mut crowd = Campaign::new(120, 4051);
        for dot in &dots.dots {
            let task = crowd.run_task(&truth.video, lightor_types::Sec(dot.at_seconds), 12);
            for session in &task.sessions {
                let r = client
                    .post_json("/sessions", &upload_json(vid.0, session))
                    .unwrap();
                assert_eq!(r.status, 200);
            }
        }
        refined_dots = client
            .get(&format!("/video/{}/dots", vid.0))
            .unwrap()
            .json()
            .unwrap();
        server.shutdown();
        // State lives in the KV WAL + chat log under `dir` now.
    }

    // A brand-new server process (same data dir, same seed) must serve
    // the refined positions straight from storage.
    let (server, _platform) = serve(&dir.0, 4050);
    let mut client = HttpClient::connect(server.local_addr()).unwrap();
    let recovered: DotsResponse = client
        .get(&format!("/video/{}/dots", vid.0))
        .unwrap()
        .json()
        .unwrap();
    assert_eq!(recovered, refined_dots, "restart lost refined dot state");
    let stats: StatsResponse = client.get("/stats").unwrap().json().unwrap();
    assert_eq!(stats.stored_videos, 1);
    assert_eq!(stats.tracked_videos, 1);
    server.shutdown();
}

#[test]
fn backlog_overflow_sheds_load_with_503() {
    // A server with one worker and a tiny backlog: occupy the worker
    // with an idle keep-alive connection, fill the queue, and the next
    // connection must be answered 503 at the door.
    let dir = TempDir::new("backlog");
    let platform = SimPlatform::top_channels(GameKind::Dota2, 1, 1, 4060);
    let svc = Arc::new(
        LightorService::open(&dir.0, models(4061), platform, ServiceConfig::default()).unwrap(),
    );
    let server = HttpServer::bind(
        ("127.0.0.1", 0),
        svc,
        ServerConfig {
            workers: 1,
            backlog: 1,
            ..ServerConfig::default()
        },
    )
    .unwrap();
    let addr = server.local_addr();

    // Connection A occupies the single worker (idle keep-alive).
    let mut a = HttpClient::connect(addr).unwrap();
    assert_eq!(a.get("/healthz").unwrap().status, 200);
    // Connection B sits in the queue (never picked up while A lives).
    let _b = HttpClient::connect(addr).unwrap();
    std::thread::sleep(Duration::from_millis(100));
    // Connection C must be shed.
    let mut c = HttpClient::connect(addr).unwrap();
    let resp = c.get("/healthz").unwrap();
    assert_eq!(resp.status, 503, "{}", resp.body_str());
    server.shutdown();
}

/// A plausible short viewing session for upload bodies.
fn sample_session() -> Session {
    use lightor_types::{Interaction, Sec, UserId};
    Session::new(
        UserId(5),
        vec![
            Interaction::Play {
                video_ts: Sec(10.0),
            },
            Interaction::Pause {
                video_ts: Sec(22.0),
            },
            Interaction::Leave {
                video_ts: Sec(22.0),
            },
        ],
    )
}

#[test]
fn chunked_bodies_are_decoded_for_buffered_routes() {
    let dir = TempDir::new("chunked");
    let (server, platform) = serve(&dir.0, 4080);
    let vid = platform.recent_videos(platform.channels()[0].id)[0];
    let addr = server.local_addr();
    // Track the video first so the upload is accepted.
    HttpClient::connect(addr)
        .unwrap()
        .get(&format!("/video/{}/dots", vid.0))
        .unwrap();

    // The same `POST /sessions` body, but chunked — split mid-JSON so
    // the decoder has to reassemble across frames.
    let body = upload_json(vid.0, &sample_session());
    let (a, b) = body.as_bytes().split_at(body.len() / 2);
    let mut raw =
        b"POST /sessions HTTP/1.1\r\nHost: h\r\nTransfer-Encoding: chunked\r\n\r\n".to_vec();
    for part in [a, b] {
        raw.extend_from_slice(format!("{:x}\r\n", part.len()).as_bytes());
        raw.extend_from_slice(part);
        raw.extend_from_slice(b"\r\n");
    }
    raw.extend_from_slice(b"0\r\n\r\n");
    let mut c = HttpClient::connect(addr).unwrap();
    let resp = c.send_raw(&raw).unwrap();
    assert_eq!(resp.status, 200, "{}", resp.body_str());
    let accepted: SessionAccepted = resp.json().unwrap();
    assert_eq!(accepted.video, vid.0);
    server.shutdown();
}

#[test]
fn stalled_bodies_time_out_with_408() {
    let dir = TempDir::new("stall");
    let platform = SimPlatform::top_channels(GameKind::Dota2, 1, 1, 4090);
    let svc = Arc::new(
        LightorService::open(&dir.0, models(4091), platform, ServiceConfig::default()).unwrap(),
    );
    let server = HttpServer::bind(
        ("127.0.0.1", 0),
        svc,
        ServerConfig {
            body_progress: Duration::from_millis(200),
            ..ServerConfig::default()
        },
    )
    .unwrap();
    let addr = server.local_addr();

    // Buffered route: the declared body never arrives.
    let mut c = HttpClient::connect(addr).unwrap();
    let resp = c
        .send_raw(b"POST /sessions HTTP/1.1\r\nHost: h\r\nContent-Length: 64\r\n\r\n")
        .unwrap();
    assert_eq!(resp.status, 408, "{}", resp.body_str());
    assert!(resp.body_str().contains("request_timeout"));
    assert!(resp.closed(), "a timed-out connection must close");

    // Streamed route: one chunk arrives, then the uploader stalls
    // (slowloris). The server must answer 408 on its own.
    let mut c = HttpClient::connect(addr).unwrap();
    c.start_chunked("POST", "/sessions/stream").unwrap();
    c.send_chunk(br#"{"video":1,"#).unwrap();
    let resp = c
        .read_early_relay(std::time::Instant::now() + Duration::from_secs(5))
        .unwrap();
    assert_eq!(resp.status, 408, "{}", String::from_utf8_lossy(resp.body()));
    server.shutdown();
}

#[test]
fn degraded_service_serves_warm_reads_and_503s_writes() {
    use lightor_platform::{Fault, FaultKind};

    let dir = TempDir::new("degraded");
    let platform = SimPlatform::top_channels(GameKind::Dota2, 1, 2, 4070);
    let vids = platform.recent_videos(platform.channels()[0].id).to_vec();
    let svc = Arc::new(
        LightorService::open(&dir.0, models(4071), platform, ServiceConfig::default()).unwrap(),
    );
    let server = HttpServer::bind(("127.0.0.1", 0), svc.clone(), ServerConfig::default()).unwrap();
    let mut client = HttpClient::connect(server.local_addr()).unwrap();

    // Warm one video, then make the next persistence attempt fail: the
    // cold open answers 500 and flips the service read-only.
    assert_eq!(
        client
            .get(&format!("/video/{}/dots", vids[0].0))
            .unwrap()
            .status,
        200
    );
    svc.fault_injector()
        .arm(Fault::once("kv.wal.write", FaultKind::Error));
    let resp = client.get(&format!("/video/{}/dots", vids[1].0)).unwrap();
    assert_eq!(resp.status, 500, "{}", resp.body_str());
    let stats: StatsResponse = client.get("/stats").unwrap().json().unwrap();
    assert!(stats.degraded, "degraded must be visible in /stats");

    // Read-only mode: warm reads still answer; writes are refused with
    // 503 + Retry-After instead of acknowledging what cannot be kept.
    assert_eq!(
        client
            .get(&format!("/video/{}/dots", vids[0].0))
            .unwrap()
            .status,
        200,
        "warm reads must survive degraded mode"
    );
    let resp = client
        .post_json("/sessions", &upload_json(vids[0].0, &sample_session()))
        .unwrap();
    assert_eq!(resp.status, 503, "{}", resp.body_str());
    assert!(
        resp.header("retry-after").is_some(),
        "503 carries Retry-After"
    );
    let resp = client
        .post_json(&format!("/video/{}/rescore", vids[0].0), "")
        .unwrap();
    assert_eq!(resp.status, 503, "rescore is a write too");

    // Compaction is the repair path: it stays allowed, and success
    // clears the flag and re-opens the write path.
    assert_eq!(client.post_json("/admin/compact", "").unwrap().status, 200);
    let stats: StatsResponse = client.get("/stats").unwrap().json().unwrap();
    assert!(!stats.degraded, "successful compaction must clear degraded");
    let resp = client
        .post_json("/sessions", &upload_json(vids[0].0, &sample_session()))
        .unwrap();
    assert_eq!(resp.status, 200, "{}", resp.body_str());
    server.shutdown();
}
