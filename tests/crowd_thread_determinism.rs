//! Worker-thread-count independence of the crowd-simulation layer,
//! driven through the rayon stub's `RAYON_NUM_THREADS` knob — the
//! crowd-side mirror of `tests/thread_determinism.rs`.
//!
//! Like that test, this lives in its own integration-test binary on
//! purpose: it mutates the process environment, and `std::env::set_var`
//! racing a concurrent `std::env::var` (which the rayon stub performs
//! on every parallel call) is undefined behaviour on glibc. A single
//! `#[test]` per binary means nothing else reads the variable while it
//! is being written.

use lightor_crowdsim::Campaign;
use lightor_types::{
    ChannelId, ChatLogView, GameKind, Highlight, LabeledVideo, Sec, Session, VideoId, VideoMeta,
};

fn test_video() -> LabeledVideo {
    LabeledVideo {
        meta: VideoMeta {
            id: VideoId(0),
            channel: ChannelId(0),
            game: GameKind::Dota2,
            duration: Sec(3600.0),
            viewers: 500,
        },
        chat: ChatLogView::empty(),
        highlights: vec![
            Highlight::from_secs(700.0, 716.0),
            Highlight::from_secs(1990.0, 2005.0),
        ],
    }
}

/// One full crowd workload: a few `run_task` rounds plus a batched
/// `run_tasks` round, concatenating every session produced.
fn run_workload(video: &LabeledVideo) -> Vec<Session> {
    let mut campaign = Campaign::new(200, 0xC0FFEE);
    let mut sessions: Vec<Session> = Vec::new();
    for dot in [Sec(1992.0), Sec(2035.0), Sec(705.0)] {
        sessions.extend(campaign.run_task(video, dot, 12).sessions);
    }
    let batch: Vec<(&LabeledVideo, Sec)> = [Sec(1990.0), Sec(2000.0), Sec(730.0)]
        .iter()
        .map(|&d| (video, d))
        .collect();
    for result in campaign.run_tasks(&batch, 16) {
        sessions.extend(result.sessions);
    }
    sessions
}

#[test]
fn crowd_sessions_identical_across_thread_counts() {
    let video = test_video();

    // Baseline with whatever the environment provides.
    let reference = run_workload(&video);
    assert_eq!(reference.len(), 3 * 12 + 3 * 16);

    // Force different worker counts through the rayon stub's env knob:
    // every session (events, users, ordering) must be byte-identical.
    for threads in ["1", "2", "8"] {
        std::env::set_var("RAYON_NUM_THREADS", threads);
        let swept = run_workload(&video);
        assert_eq!(
            swept, reference,
            "thread count {threads} changed crowd-simulation output"
        );
    }
    std::env::remove_var("RAYON_NUM_THREADS");
}
