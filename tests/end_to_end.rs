//! Cross-crate integration tests: the full LIGHTOR workflow against the
//! simulators, asserting the paper's headline behaviours end to end.

use lightor::{ExtractorConfig, FeatureSet, HighlightExtractor, Lightor, ModelBundle};
use lightor_chatsim::{dota2_dataset, SimVideo};
use lightor_crowdsim::Campaign;
use lightor_eval::harness::{train_initializer, train_type_classifier};
use lightor_eval::metrics::{video_precision_end, video_precision_start};
use lightor_types::Sec;

fn build_system(train: &[&SimVideo], seed: u64) -> (Lightor, Campaign) {
    let initializer = train_initializer(train, FeatureSet::Full);
    let mut campaign = Campaign::new(492, seed);
    let (classifier, _) = train_type_classifier(train, &mut campaign, 4, seed ^ 1);
    let system = Lightor::new(
        initializer,
        HighlightExtractor::new(classifier, ExtractorConfig::default()),
    );
    (system, campaign)
}

#[test]
fn full_workflow_reaches_usable_precision() {
    let data = dota2_dataset(5, 1001);
    let train: Vec<&SimVideo> = data.videos[..2].iter().collect();
    let (system, mut campaign) = build_system(&train, 1002);

    let mut start_ps = Vec::new();
    let mut end_ps = Vec::new();
    for sv in &data.videos[2..] {
        let video = &sv.video;
        let mut collect = |_i: usize, pos: Sec| campaign.run_task(video, pos, 10).plays;
        let out = system.extract_highlights(&video.chat, video.meta.duration, 5, &mut collect);
        assert_eq!(out.len(), 5);
        let starts: Vec<Sec> = out.iter().map(|h| h.start).collect();
        let ends: Vec<Option<Sec>> = out.iter().map(|h| h.end).collect();
        start_ps.push(video_precision_start(&starts, sv));
        end_ps.push(video_precision_end(&ends, sv));
    }
    let mean_start = start_ps.iter().sum::<f64>() / start_ps.len() as f64;
    let mean_end = end_ps.iter().sum::<f64>() / end_ps.len() as f64;
    // Paper headline: "very high precision (up to 70%-90%)".
    assert!(mean_start >= 0.65, "end-to-end P@5(start) = {mean_start}");
    assert!(mean_end >= 0.5, "end-to-end P@5(end) = {mean_end}");
}

#[test]
fn workflow_is_deterministic_under_fixed_seeds() {
    let data = dota2_dataset(3, 1003);
    let train: Vec<&SimVideo> = data.videos[..1].iter().collect();

    let run = || {
        let (system, mut campaign) = build_system(&train, 1004);
        let sv = &data.videos[2];
        let video = &sv.video;
        let mut collect = |_i: usize, pos: Sec| campaign.run_task(video, pos, 10).plays;
        system.extract_highlights(&video.chat, video.meta.duration, 5, &mut collect)
    };
    let a = run();
    let b = run();
    assert_eq!(a, b, "same seeds must reproduce identical extractions");
}

#[test]
fn extracted_boundaries_are_ordered_and_in_video() {
    let data = dota2_dataset(3, 1005);
    let train: Vec<&SimVideo> = data.videos[..1].iter().collect();
    let (system, mut campaign) = build_system(&train, 1006);

    let sv = &data.videos[1];
    let video = &sv.video;
    let mut collect = |_i: usize, pos: Sec| campaign.run_task(video, pos, 10).plays;
    let out = system.extract_highlights(&video.chat, video.meta.duration, 8, &mut collect);
    for h in &out {
        assert!(h.start.0 >= 0.0 && h.start.0 <= video.meta.duration.0);
        if let Some(e) = h.end {
            assert!(e.0 >= h.start.0 - 1e-9, "end {e} before start {}", h.start);
            assert!(e.0 <= video.meta.duration.0 + 1e-9);
        }
        assert!(h.iterations >= 1);
    }
}

#[test]
fn model_bundle_round_trips_through_json() {
    let data = dota2_dataset(2, 1007);
    let train: Vec<&SimVideo> = data.videos[..1].iter().collect();
    let (system, _campaign) = build_system(&train, 1008);

    let bundle = ModelBundle {
        initializer: system.initializer.clone(),
        extractor: system.extractor.clone(),
        provenance: "integration".into(),
    };
    let json = bundle.to_json().unwrap();
    let back = ModelBundle::from_json(&json).unwrap();

    // The deserialized model must make identical predictions.
    let sv = &data.videos[1];
    let a = bundle
        .initializer
        .red_dots(&sv.video.chat, sv.video.meta.duration, 5);
    let b = back
        .initializer
        .red_dots(&sv.video.chat, sv.video.meta.duration, 5);
    assert_eq!(a, b);
}
