//! Streaming-ingestion integration tests over real loopback sockets:
//! chunked NDJSON uploads to `POST /sessions/stream`, per-line typed
//! rejections under a hostile-input matrix, error-budget exhaustion,
//! mid-line disconnects, sequence-based idempotent replay, freeze-window
//! interaction, and `/stats` counter reconciliation.

use lightor::{ExtractorConfig, FeatureSet, HighlightExtractor, ModelBundle};
use lightor_chatsim::{dota2_dataset, SimPlatform};
use lightor_crowdsim::Campaign;
use lightor_eval::harness::{train_initializer, train_type_classifier};
use lightor_platform::wire::{
    DotsResponse, EventDto, StatsResponse, StreamAccepted, StreamBatchDto, StreamRejected,
};
use lightor_platform::{LightorService, ServiceConfig};
use lightor_server::{HttpClient, HttpServer, ServerConfig};
use lightor_types::{GameKind, Session};
use std::path::PathBuf;
use std::sync::Arc;
use std::time::{Duration, Instant};

struct TempDir(PathBuf);
impl TempDir {
    fn new(tag: &str) -> Self {
        let p = std::env::temp_dir().join(format!(
            "lightor-stream-{tag}-{}-{}",
            std::process::id(),
            std::time::SystemTime::now()
                .duration_since(std::time::UNIX_EPOCH)
                .unwrap()
                .as_nanos()
        ));
        std::fs::create_dir_all(&p).unwrap();
        TempDir(p)
    }
}
impl Drop for TempDir {
    fn drop(&mut self) {
        let _ = std::fs::remove_dir_all(&self.0);
    }
}

fn models(seed: u64) -> ModelBundle {
    let data = dota2_dataset(2, seed);
    let train: Vec<_> = data.videos.iter().collect();
    let initializer = train_initializer(&train, FeatureSet::Full);
    let mut campaign = Campaign::new(200, seed ^ 9);
    let (classifier, _) = train_type_classifier(&train, &mut campaign, 3, seed ^ 10);
    ModelBundle {
        initializer,
        extractor: HighlightExtractor::new(classifier, ExtractorConfig::default()),
        provenance: format!("streaming seed {seed}"),
    }
}

fn serve(dir: &std::path::Path, seed: u64) -> (HttpServer, SimPlatform) {
    let platform = SimPlatform::top_channels(GameKind::Dota2, 2, 2, seed);
    let svc = Arc::new(
        LightorService::open(
            dir,
            models(seed ^ 1),
            platform.clone(),
            ServiceConfig::default(),
        )
        .unwrap(),
    );
    let server = HttpServer::bind(("127.0.0.1", 0), svc, ServerConfig::default()).unwrap();
    (server, platform)
}

/// One NDJSON line: a [`StreamBatchDto`] for this session's events.
fn batch_line(video: u64, seq: Option<u64>, session: &Session) -> String {
    let batch = StreamBatchDto {
        video,
        client: session.user.0,
        seq,
        events: session.events.iter().map(|&e| EventDto::from(e)).collect(),
    };
    let mut line = serde_json::to_string(&batch).unwrap();
    line.push('\n');
    line
}

#[test]
fn streamed_ndjson_folds_batches_incrementally() {
    let dir = TempDir::new("fold");
    let (server, platform) = serve(&dir.0, 5001);
    let vid = platform.recent_videos(platform.channels()[0].id)[0];
    let truth = platform.ground_truth(vid).unwrap().clone();
    let addr = server.local_addr();

    let mut reader = HttpClient::connect(addr).unwrap();
    let before: DotsResponse = reader
        .get(&format!("/video/{}/dots", vid.0))
        .unwrap()
        .json()
        .unwrap();
    assert!(!before.dots.is_empty());

    // The same crowd the buffered loop test uses, but shipped as one
    // long-lived chunked NDJSON stream: one event batch per line.
    let mut crowd = Campaign::new(150, 5002);
    let mut lines: Vec<String> = Vec::new();
    for _ in 0..3 {
        for dot in &before.dots {
            let task = crowd.run_task(&truth.video, lightor_types::Sec(dot.at_seconds), 12);
            for session in &task.sessions {
                lines.push(batch_line(vid.0, None, session));
            }
        }
    }
    let total_lines = lines.len() as u64;

    let mut uploader = HttpClient::connect(addr).unwrap();
    uploader.start_chunked("POST", "/sessions/stream").unwrap();
    // First line split mid-JSON across two chunks: the decoder must
    // reassemble before parsing.
    let first = lines[0].clone();
    let (a, b) = first.as_bytes().split_at(first.len() / 2);
    uploader.send_chunk(a).unwrap();
    uploader.send_chunk(b).unwrap();

    // While the stream is open, the already-received lines must be
    // folded (no buffer-the-whole-body): /stats shows the open stream
    // and accepted lines before the terminating chunk is sent.
    let deadline = Instant::now() + Duration::from_secs(10);
    loop {
        let stats: StatsResponse = reader.get("/stats").unwrap().json().unwrap();
        if stats.stream_open == 1 && stats.stream_lines_accepted >= 1 {
            break;
        }
        assert!(
            Instant::now() < deadline,
            "first line was not folded while the stream stayed open: {stats:?}"
        );
        std::thread::sleep(Duration::from_millis(20));
    }

    for line in &lines[1..] {
        uploader.send_chunk(line.as_bytes()).unwrap();
    }
    let resp = uploader
        .finish_chunked(Instant::now() + Duration::from_secs(30))
        .unwrap();
    assert_eq!(resp.status, 200, "{}", resp.body_str());
    let ack: StreamAccepted = resp.json().unwrap();
    assert_eq!(ack.lines_accepted, total_lines);
    assert_eq!(ack.lines_rejected, 0, "{:?}", ack.rejected);
    assert_eq!(ack.batches_folded, total_lines);
    assert_eq!(ack.batches_replayed, 0);
    assert!(ack.plays_buffered > 0, "crowd plays must buffer");
    assert!(ack.dots_refined > 0, "the stream must refine dots");

    // The crowd moved the dots — same observable as the buffered loop.
    let after: DotsResponse = reader
        .get(&format!("/video/{}/dots", vid.0))
        .unwrap()
        .json()
        .unwrap();
    assert_eq!(after.dots.len(), before.dots.len());
    assert!(
        after
            .dots
            .iter()
            .zip(&before.dots)
            .any(|(a, b)| (a.at_seconds - b.at_seconds).abs() > 1e-9),
        "streamed refinement moved no dot"
    );

    // Counter reconciliation: the ack and /stats agree line for line.
    let stats: StatsResponse = reader.get("/stats").unwrap().json().unwrap();
    assert_eq!(stats.stream_open, 0, "stream must be closed out");
    assert_eq!(stats.stream_lines_accepted, ack.lines_accepted);
    assert_eq!(stats.stream_lines_rejected, 0);
    assert_eq!(
        stats.stream_batches_folded + stats.stream_batches_replayed,
        ack.lines_accepted,
        "every accepted line folds or replays"
    );
    server.shutdown();
}

#[test]
fn hostile_lines_reject_the_line_not_the_stream() {
    let dir = TempDir::new("hostile");
    let (server, platform) = serve(&dir.0, 5010);
    let vid = platform.recent_videos(platform.channels()[0].id)[0];
    let addr = server.local_addr();
    let mut client = HttpClient::connect(addr).unwrap();
    // Track the video so valid lines are foldable.
    client.get(&format!("/video/{}/dots", vid.0)).unwrap();

    let valid = format!(
        r#"{{"video":{},"client":1,"events":[{{"type":"play","at":5.0}},{{"type":"pause","at":9.0}}]}}"#,
        vid.0
    );
    let mut oversized = format!(r#"{{"video":{},"client":1,"events":["#, vid.0);
    oversized.push_str(&r#"{"type":"play","at":5.0},"#.repeat(14_000)); // ~322 KiB > 256 KiB cap
    oversized.push_str(r#"{"type":"pause","at":9.0}]}"#);

    // The matrix, one physical line each. Line numbers are 1-based and
    // count every physical line — blanks keep their number.
    let body = [
        valid.as_str(),                     // line 1: folds
        "",                                 // line 2: blank, skipped
        "\u{0}\u{1}garbage bytes \u{fffd}", // line 3: bad_json
        "{\"video\":",                      // line 4: truncated JSON
        &format!(
            r#"{{"video":{},"client":1,"events":[{{"type":"play","at":NaN}}]}}"#,
            vid.0
        ), // 5: NaN is not JSON
        &format!(
            r#"{{"video":{},"client":1,"events":[{{"type":"play","at":-3.0}}]}}"#,
            vid.0
        ), // 6: negative_timestamp
        r#"{"video":999999,"client":1,"events":[{"type":"play","at":5.0}]}"#, // 7: unknown_video
        &format!(r#"{{"video":{},"client":1,"events":[]}}"#, vid.0), // 8: no_events
        &oversized,                         // line 9: line_too_long
        valid.as_str(),                     // line 10: still folds
    ]
    .join("\n");

    // Buffered POST to the streaming route exercises the same per-line
    // machinery without chunking.
    let resp = client.post_json("/sessions/stream", &body).unwrap();
    assert_eq!(resp.status, 200, "{}", resp.body_str());
    let ack: StreamAccepted = resp.json().unwrap();
    assert_eq!(ack.lines_accepted, 2, "both valid lines fold");
    assert_eq!(ack.batches_folded, 2);
    let got: Vec<(u64, &str)> = ack
        .rejected
        .iter()
        .map(|r| (r.line, r.code.as_str()))
        .collect();
    assert_eq!(
        got,
        vec![
            (3, "bad_json"),
            (4, "bad_json"),
            (5, "bad_json"),
            (6, "negative_timestamp"),
            (7, "unknown_video"),
            (8, "no_events"),
            (9, "line_too_long"),
        ],
        "typed per-line rejections with exact 1-based line numbers"
    );
    assert_eq!(ack.lines_rejected, 7);
    server.shutdown();
}

#[test]
fn error_budget_exhaustion_cuts_the_stream_with_422() {
    let dir = TempDir::new("budget");
    let (server, platform) = serve(&dir.0, 5020);
    let vid = platform.recent_videos(platform.channels()[0].id)[0];
    let addr = server.local_addr();
    let mut client = HttpClient::connect(addr).unwrap();
    client.get(&format!("/video/{}/dots", vid.0)).unwrap();

    // 17 garbage lines blow the 16-line budget on line 17; the valid
    // line behind them must never be processed.
    let mut body = "not json\n".repeat(17);
    body.push_str(&format!(
        "{{\"video\":{},\"client\":1,\"events\":[{{\"type\":\"play\",\"at\":5.0}}]}}\n",
        vid.0
    ));
    let resp = client.post_json("/sessions/stream", &body).unwrap();
    assert_eq!(resp.status, 422, "{}", resp.body_str());
    let rejected: StreamRejected = resp.json().unwrap();
    assert_eq!(rejected.error, "error_budget_exhausted");
    assert_eq!(rejected.line, 17, "the budget-blowing line is named");
    assert_eq!(rejected.rejected.len(), 17);

    // A terminal mid-stream error cuts the connection (the rest of the
    // body is undrained) — reconnect to read the counters.
    let mut client = HttpClient::connect(addr).unwrap();
    let stats: StatsResponse = client.get("/stats").unwrap().json().unwrap();
    assert_eq!(
        stats.stream_batches_folded, 0,
        "nothing past the terminal line may fold"
    );
    server.shutdown();
}

#[test]
fn mid_line_disconnect_keeps_acked_lines_and_replays_idempotently() {
    let dir = TempDir::new("midline");
    let (server, platform) = serve(&dir.0, 5030);
    let vid = platform.recent_videos(platform.channels()[0].id)[0];
    let addr = server.local_addr();
    let mut reader = HttpClient::connect(addr).unwrap();
    let dots: DotsResponse = reader
        .get(&format!("/video/{}/dots", vid.0))
        .unwrap()
        .json()
        .unwrap();
    let near = dots.dots[0].at_seconds;

    let line = |seq: u64| {
        format!(
            "{{\"video\":{},\"client\":77,\"seq\":{seq},\"events\":[{{\"type\":\"play\",\"at\":{}}},{{\"type\":\"pause\",\"at\":{}}}]}}\n",
            vid.0,
            near - 1.0,
            near + 5.0
        )
    };

    // Stream line 1 complete, then die mid-way through line 2.
    {
        let mut uploader = HttpClient::connect(addr).unwrap();
        uploader.start_chunked("POST", "/sessions/stream").unwrap();
        uploader.send_chunk(line(1).as_bytes()).unwrap();
        let partial = line(2);
        uploader
            .send_chunk(&partial.as_bytes()[..partial.len() / 2])
            .unwrap();
        // Wait until line 1 is folded, then drop the connection
        // without the terminating chunk.
        let deadline = Instant::now() + Duration::from_secs(10);
        loop {
            let stats: StatsResponse = reader.get("/stats").unwrap().json().unwrap();
            if stats.stream_lines_accepted >= 1 {
                break;
            }
            assert!(Instant::now() < deadline, "line 1 never folded");
            std::thread::sleep(Duration::from_millis(20));
        }
    }

    // The partial line vanished with the connection; the complete line
    // is durable. Resume the whole session from the top: the already
    // acknowledged seq replays (folds nothing twice), the new one folds.
    let body = format!("{}{}", line(1), line(2));
    let deadline = Instant::now() + Duration::from_secs(10);
    let ack: StreamAccepted = loop {
        let resp = reader.post_json("/sessions/stream", &body).unwrap();
        assert_eq!(resp.status, 200, "{}", resp.body_str());
        let ack: StreamAccepted = resp.json().unwrap();
        // The dead stream's watermark write races the reconnect only
        // in the instant after the drop; settle on the final state.
        if ack.batches_replayed >= 1 || Instant::now() >= deadline {
            break ack;
        }
        std::thread::sleep(Duration::from_millis(20));
    };
    assert_eq!(ack.lines_accepted, 2);
    assert_eq!(ack.batches_replayed, 1, "seq 1 was already acknowledged");
    assert_eq!(ack.batches_folded, 1, "seq 2 folds exactly once");
    assert_eq!(ack.last_seq, 2);

    // A full re-send is a pure no-op now.
    let resp = reader.post_json("/sessions/stream", &body).unwrap();
    let ack: StreamAccepted = resp.json().unwrap();
    assert_eq!(ack.batches_replayed, 2);
    assert_eq!(ack.batches_folded, 0);
    server.shutdown();
}

#[test]
fn freeze_window_terminates_the_stream_with_503_retry_after() {
    let dir = TempDir::new("freeze");
    let (server, platform) = serve(&dir.0, 5040);
    let vid = platform.recent_videos(platform.channels()[0].id)[0];
    let addr = server.local_addr();
    let mut client = HttpClient::connect(addr).unwrap();
    client.get(&format!("/video/{}/dots", vid.0)).unwrap();

    // Arm a write freeze via the export cutover window.
    let resp = client
        .post_json(
            "/admin/export",
            &format!(r#"{{"videos":[{}],"since_seq":0,"freeze_ms":5000}}"#, vid.0),
        )
        .unwrap();
    assert_eq!(resp.status, 200, "{}", resp.body_str());

    // A streamed batch for the frozen video is answered 503 "frozen"
    // with a Retry-After, terminating the stream cleanly mid-flight.
    let mut uploader = HttpClient::connect(addr).unwrap();
    uploader.start_chunked("POST", "/sessions/stream").unwrap();
    uploader
        .send_chunk(
            format!(
                "{{\"video\":{},\"client\":1,\"events\":[{{\"type\":\"play\",\"at\":5.0}}]}}\n",
                vid.0
            )
            .as_bytes(),
        )
        .unwrap();
    let resp = uploader
        .read_early_relay(Instant::now() + Duration::from_secs(10))
        .unwrap();
    assert_eq!(resp.status, 503, "{}", String::from_utf8_lossy(resp.body()));
    assert!(
        String::from_utf8_lossy(resp.body()).contains("frozen"),
        "{}",
        String::from_utf8_lossy(resp.body())
    );
    assert!(resp.retry_after().is_some(), "503 carries Retry-After");
    server.shutdown();
}
