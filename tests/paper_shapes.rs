//! The paper's qualitative claims, asserted as executable shape tests at
//! quick scale. Each test names the figure/table it guards.

use lightor_eval::experiments::{fig11, fig3, fig8, fig9, table1};
use lightor_eval::ExpEnv;

#[test]
fn figure3_type1_uniformish_type2_normalish() {
    let ((m1, s1), (m2, s2)) = fig3::summary(&ExpEnv::quick());
    // Type I spreads far wider than Type II...
    assert!(s1 > 1.3 * s2, "spread: Type I {s1} vs Type II {s2}");
    // ...and Type II is concentrated near the highlight start (dots are
    // placed −6…+4 s around it, so the quick-scale mean can sit a touch
    // below zero; the band tolerates the small-sample draw while still
    // rejecting Type-I-like scatter).
    assert!((-4.0..=14.0).contains(&m2), "Type II mean {m2}");
    // Type I's mean sits within its wide scatter (no strong bias).
    assert!(m1.abs() < s1, "Type I mean {m1} vs std {s1}");
}

#[test]
fn figure8_iteration_improves_lightor_only() {
    let r = fig8::compute(&ExpEnv::quick());
    let first = r.lightor_start[0];
    let last = *r.lightor_start.last().unwrap();
    assert!(
        last >= first,
        "start precision must not regress: {first} -> {last}"
    );
    assert!(last > r.socialskip.0 + 0.1);
    assert!(last > r.moocer.0 + 0.1);
    assert!(*r.lightor_end.last().unwrap() > r.socialskip.1 + 0.1);
}

#[test]
fn figure9_applicability_fractions() {
    let r = fig9::compute(&ExpEnv::quick());
    assert!(r.frac_chat_ok >= 0.75 && r.frac_chat_ok < 1.0);
    assert_eq!(r.frac_viewers_ok, 1.0);
}

#[test]
fn figure11_transfer_gap_ordering() {
    let (lightor, lstm) = fig11::compute(&ExpEnv::quick());
    let avg = |xs: &[f64]| xs.iter().sum::<f64>() / xs.len() as f64;
    let lightor_gap = avg(&lightor.lol) - avg(&lightor.dota2);
    let lstm_gap = avg(&lstm.lol) - avg(&lstm.dota2);
    assert!(
        lstm_gap > lightor_gap,
        "LSTM gap {lstm_gap} vs Lightor gap {lightor_gap}"
    );
}

#[test]
fn table1_lightor_wins_and_trains_faster() {
    let r = table1::compute(&ExpEnv::quick());
    assert!(r.lightor.0 > r.joint.0, "start precision ordering");
    assert!(r.joint_train > r.lightor_train, "training time ordering");
}
