//! Property tests over the simulators, at the workspace level: the
//! generated worlds must satisfy the invariants every downstream
//! component assumes.

use lightor_chatsim::{dota2_dataset, lol_dataset};
use lightor_crowdsim::{simulate_session, SessionParams, Worker, WorkerStyle};
use lightor_types::{Sec, UserId};
use proptest::prelude::*;

proptest! {
    #![proptest_config(ProptestConfig::with_cases(8))]

    #[test]
    fn generated_videos_are_internally_consistent(seed in 0u64..5000) {
        let data = dota2_dataset(1, seed);
        let sv = &data.videos[0];
        let dur = sv.video.meta.duration.0;

        // Every timestamp is finite, non-negative, inside the video,
        // and the view is non-decreasing (the incremental featurizer's
        // binary searches and the columnar codec both assume this).
        let chat = &sv.video.chat;
        for i in 0..chat.len() {
            let t = chat.ts(i).0;
            prop_assert!(t.is_finite(), "non-finite timestamp {t}");
            prop_assert!((0.0..=dur).contains(&t), "timestamp {t} outside [0, {dur}]");
            if i > 0 {
                prop_assert!(chat.ts(i - 1).0 <= t, "timestamps decrease at {i}");
            }
        }

        // Highlights sorted, disjoint, inside the video, length-bounded.
        for w in sv.video.highlights.windows(2) {
            prop_assert!(w[0].end().0 <= w[1].start().0);
        }
        for h in &sv.video.highlights {
            prop_assert!(h.start().0 >= 0.0 && h.end().0 <= dur);
            let len = h.range.duration().0;
            prop_assert!((1.0..=50.0).contains(&len), "len {}", len);
        }

        // Response ranges: one per highlight, starting after its start.
        prop_assert_eq!(sv.response_ranges.len(), sv.video.highlights.len());
        for (h, r) in sv.video.highlights.iter().zip(&sv.response_ranges) {
            prop_assert!(r.start.0 >= h.start().0);
        }
    }

    #[test]
    fn reaction_bursts_exceed_background_rate(seed in 0u64..2000) {
        // The highlight-window chat-rate contrast is the signal every
        // downstream feature depends on: if a rewrite of the generator
        // ever flattened the bursts, windows would stop being
        // separable. Require most bursts visibly above the whole-video
        // average rate, and the mean burst rate well above it.
        let data = dota2_dataset(1, seed % 997);
        let sv = &data.videos[0];
        let chat = &sv.video.chat;
        let dur = sv.video.meta.duration.0;
        let avg_rate = chat.len() as f64 / dur;
        prop_assert!(avg_rate > 0.0);

        let mut elevated = 0usize;
        let mut rate_sum = 0.0;
        for w in &sv.response_ranges {
            let rate = chat.count_in(*w) as f64 / w.duration().0.max(1e-9);
            rate_sum += rate;
            if rate > 1.5 * avg_rate {
                elevated += 1;
            }
        }
        let n = sv.response_ranges.len();
        prop_assert!(n > 0);
        prop_assert!(
            elevated * 10 >= n * 7,
            "only {elevated}/{n} bursts above 1.5x the average rate"
        );
        prop_assert!(
            rate_sum / n as f64 > 2.0 * avg_rate,
            "mean burst rate {} vs average {avg_rate}",
            rate_sum / n as f64
        );
    }

    #[test]
    fn sessions_never_leave_the_video(seed in 0u64..5000, dot in 120.0..3000.0f64) {
        let data = lol_dataset(1, seed % 97);
        let video = &data.videos[0].video;
        let dot = Sec(dot.min(video.meta.duration.0 - 1.0));
        let params = SessionParams::default();
        for (i, style) in [
            WorkerStyle::Engaged,
            WorkerStyle::Impatient,
            WorkerStyle::Seeker,
            WorkerStyle::Binger,
            WorkerStyle::Random,
        ]
        .into_iter()
        .enumerate()
        {
            let worker = Worker {
                id: UserId(i as u64),
                style,
                patience: 4.0 + (seed % 10) as f64,
                hold: 1.0 + (seed % 8) as f64,
            };
            let mut rng = lightor_simkit::SeedTree::new(seed).index(i as u64).rng();
            let session = simulate_session(video, dot, &worker, &params, &mut rng);
            for play in session.plays() {
                prop_assert!(play.start().0 >= 0.0);
                prop_assert!(play.end().0 <= video.meta.duration.0 + 1e-9);
            }
        }
    }
}
