//! Property tests over the simulators, at the workspace level: the
//! generated worlds must satisfy the invariants every downstream
//! component assumes.

use lightor_chatsim::{dota2_dataset, lol_dataset};
use lightor_crowdsim::{simulate_session, SessionParams, Worker, WorkerStyle};
use lightor_types::{Sec, UserId};
use proptest::prelude::*;

proptest! {
    #![proptest_config(ProptestConfig::with_cases(8))]

    #[test]
    fn generated_videos_are_internally_consistent(seed in 0u64..5000) {
        let data = dota2_dataset(1, seed);
        let sv = &data.videos[0];
        let dur = sv.video.meta.duration.0;

        // Chat inside the video, sorted.
        let msgs = sv.video.chat.messages();
        prop_assert!(msgs.windows(2).all(|w| w[0].ts.0 <= w[1].ts.0));
        prop_assert!(msgs.iter().all(|m| (0.0..=dur).contains(&m.ts.0)));

        // Highlights sorted, disjoint, inside the video, length-bounded.
        for w in sv.video.highlights.windows(2) {
            prop_assert!(w[0].end().0 <= w[1].start().0);
        }
        for h in &sv.video.highlights {
            prop_assert!(h.start().0 >= 0.0 && h.end().0 <= dur);
            let len = h.range.duration().0;
            prop_assert!((1.0..=50.0).contains(&len), "len {}", len);
        }

        // Response ranges: one per highlight, starting after its start.
        prop_assert_eq!(sv.response_ranges.len(), sv.video.highlights.len());
        for (h, r) in sv.video.highlights.iter().zip(&sv.response_ranges) {
            prop_assert!(r.start.0 >= h.start().0);
        }
    }

    #[test]
    fn sessions_never_leave_the_video(seed in 0u64..5000, dot in 120.0..3000.0f64) {
        let data = lol_dataset(1, seed % 97);
        let video = &data.videos[0].video;
        let dot = Sec(dot.min(video.meta.duration.0 - 1.0));
        let params = SessionParams::default();
        for (i, style) in [
            WorkerStyle::Engaged,
            WorkerStyle::Impatient,
            WorkerStyle::Seeker,
            WorkerStyle::Binger,
            WorkerStyle::Random,
        ]
        .into_iter()
        .enumerate()
        {
            let worker = Worker {
                id: UserId(i as u64),
                style,
                patience: 4.0 + (seed % 10) as f64,
                hold: 1.0 + (seed % 8) as f64,
            };
            let mut rng = lightor_simkit::SeedTree::new(seed).index(i as u64).rng();
            let session = simulate_session(video, dot, &worker, &params, &mut rng);
            for play in session.plays() {
                prop_assert!(play.start().0 >= 0.0);
                prop_assert!(play.end().0 <= video.meta.duration.0 + 1e-9);
            }
        }
    }
}
