//! Integration of the deployment stack: crawl → store → serve → interact
//! → refine → persist → restart, end to end across crates.

use lightor::{ExtractorConfig, FeatureSet, HighlightExtractor, ModelBundle};
use lightor_chatsim::{dota2_dataset, SimPlatform};
use lightor_crowdsim::Campaign;
use lightor_eval::harness::{train_initializer, train_type_classifier};
use lightor_platform::{LightorService, ServiceConfig};
use lightor_types::{GameKind, Sec};
use std::path::PathBuf;

struct TempDir(PathBuf);
impl TempDir {
    fn new(tag: &str) -> Self {
        let p = std::env::temp_dir().join(format!(
            "lightor-int-{tag}-{}-{}",
            std::process::id(),
            std::time::SystemTime::now()
                .duration_since(std::time::UNIX_EPOCH)
                .unwrap()
                .as_nanos()
        ));
        std::fs::create_dir_all(&p).unwrap();
        TempDir(p)
    }
}
impl Drop for TempDir {
    fn drop(&mut self) {
        let _ = std::fs::remove_dir_all(&self.0);
    }
}

fn models(seed: u64) -> ModelBundle {
    let data = dota2_dataset(2, seed);
    let train: Vec<_> = data.videos.iter().collect();
    let initializer = train_initializer(&train, FeatureSet::Full);
    let mut campaign = Campaign::new(200, seed ^ 9);
    let (classifier, _) = train_type_classifier(&train, &mut campaign, 3, seed ^ 10);
    ModelBundle {
        initializer,
        extractor: HighlightExtractor::new(classifier, ExtractorConfig::default()),
        provenance: format!("integration seed {seed}"),
    }
}

#[test]
fn service_lifecycle_with_real_crowd() {
    let dir = TempDir::new("lifecycle");
    let platform = SimPlatform::top_channels(GameKind::Dota2, 2, 3, 2001);
    let svc = LightorService::open(
        &dir.0,
        models(2002),
        platform.clone(),
        ServiceConfig::default(),
    )
    .unwrap();

    let vid = platform.recent_videos(platform.channels()[1].id)[0];
    let dots = svc.open_video(vid).unwrap().unwrap();
    assert!(!dots.is_empty());

    // Paper requirement: >100 viewers per video for the Extractor. Run
    // 3 crowd rounds of 12 viewers per dot.
    let truth = platform.ground_truth(vid).unwrap().clone();
    let mut crowd = Campaign::new(150, 2003);
    for _ in 0..3 {
        let current: Vec<Sec> = svc
            .video_state(vid)
            .unwrap()
            .dots
            .iter()
            .map(|d| d.current)
            .collect();
        for dot in current {
            for session in crowd.run_task(&truth.video, dot, 12).sessions {
                svc.log_session(vid, &session);
            }
        }
        svc.refine_video(vid).unwrap();
    }

    let state = svc.video_state(vid).unwrap();
    let refined = state.dots.iter().filter(|d| d.rounds > 0).count();
    assert!(
        refined >= dots.len() / 2,
        "only {refined} dots saw refinement"
    );
    let with_end = state.dots.iter().filter(|d| d.end.is_some()).count();
    assert!(with_end >= 1, "no boundary extracted after 3 rounds");

    // Refined starts should still be plausible positions.
    for d in &state.dots {
        assert!(d.current.0 >= 0.0);
        assert!(d.current.0 <= truth.video.meta.duration.0);
    }
}

#[test]
fn service_state_survives_restart_and_continues() {
    let dir = TempDir::new("restart");
    let platform = SimPlatform::top_channels(GameKind::Dota2, 1, 2, 2004);
    let vid = platform.recent_videos(platform.channels()[0].id)[0];
    let truth = platform.ground_truth(vid).unwrap().clone();

    // Phase 1: open, interact, refine, drop.
    let before = {
        let svc = LightorService::open(
            &dir.0,
            models(2005),
            platform.clone(),
            ServiceConfig::default(),
        )
        .unwrap();
        let dots = svc.open_video(vid).unwrap().unwrap();
        let mut crowd = Campaign::new(100, 2006);
        for dot in &dots {
            for session in crowd.run_task(&truth.video, dot.at, 12).sessions {
                svc.log_session(vid, &session);
            }
        }
        svc.refine_video(vid).unwrap();
        svc.video_state(vid).unwrap()
    };

    // Phase 2: reopen; persisted positions must match, and the service
    // can keep refining.
    let svc2 =
        LightorService::open(&dir.0, models(2005), platform, ServiceConfig::default()).unwrap();
    let after = svc2.video_state(vid).unwrap();
    let pos_before: Vec<f64> = before.dots.iter().map(|d| d.current.0).collect();
    let pos_after: Vec<f64> = after.dots.iter().map(|d| d.current.0).collect();
    assert_eq!(pos_before, pos_after);

    let mut crowd = Campaign::new(100, 2007);
    for d in &after.dots {
        for session in crowd.run_task(&truth.video, d.current, 12).sessions {
            svc2.log_session(vid, &session);
        }
    }
    let updated = svc2.refine_video(vid).unwrap();
    assert!(updated > 0, "refinement must continue after restart");
}
