//! The generalization story (Section VII-E, Figure 11a): train LIGHTOR's
//! three general features on one game, apply the model unchanged to
//! another game.
//!
//! ```text
//! cargo run --release --example train_and_generalize
//! ```

use lightor::FeatureSet;
use lightor_chatsim::{dota2_dataset, lol_dataset};
use lightor_eval::harness::train_initializer;
use lightor_eval::metrics::video_precision_start;
use lightor_types::Sec;

fn main() {
    // Train on LoL championship broadcasts...
    let lol = lol_dataset(8, 91);
    let train: Vec<_> = lol.videos[..4].iter().collect();
    let init = train_initializer(&train, FeatureSet::Full);
    println!(
        "trained on {} LoL videos (c = {:.0} s)",
        train.len(),
        init.adjustment()
    );

    // ...and evaluate on both games without retraining anything.
    for (label, videos) in [
        ("LoL   (same game)", &lol.videos[4..]),
        ("Dota2 (cross game)", &dota2_dataset(4, 92).videos[..]),
    ] {
        let mut per_video = Vec::new();
        for sv in videos {
            let dots = init.red_dots(&sv.video.chat, sv.video.meta.duration, 5);
            let starts: Vec<Sec> = dots.iter().map(|d| d.at).collect();
            per_video.push(video_precision_start(&starts, sv));
        }
        let mean = per_video.iter().sum::<f64>() / per_video.len() as f64;
        println!(
            "  {label}: P@5(start) = {mean:.3} over {} videos",
            per_video.len()
        );
    }

    println!(
        "\nThe three features (message number / length / similarity) are \
         game-agnostic,\nso the cross-game drop is small — the paper's Figure 11a."
    );
}
