//! Platform-operator scenario (Section VI-B): crawl the top channels,
//! batch-extract highlight candidates for every recorded video, and
//! summarize quality against ground truth.
//!
//! ```text
//! cargo run --release --example batch_pipeline
//! ```

use lightor::FeatureSet;
use lightor_chatsim::{dota2_dataset, SimPlatform};
use lightor_eval::harness::train_initializer;
use lightor_eval::metrics::video_precision_start;
use lightor_platform::{ChatStore, Crawler};
use lightor_simkit::OnlineStats;
use lightor_types::{GameKind, Sec};

fn main() -> std::io::Result<()> {
    // Train once on a handful of labelled videos.
    let labelled = dota2_dataset(3, 81);
    let train: Vec<_> = labelled.videos.iter().collect();
    let initializer = train_initializer(&train, FeatureSet::Full);
    println!(
        "trained on {} videos, c = {:.0} s",
        train.len(),
        initializer.adjustment()
    );

    // Crawl the platform into the chat store (the operator's nightly job).
    let platform = SimPlatform::top_channels(GameKind::Dota2, 5, 8, 82);
    let dir = std::env::temp_dir().join(format!("lightor-batch-{}", std::process::id()));
    let mut store = ChatStore::open(dir.join("chat"))?;
    let crawler = Crawler::new(&platform);
    let channels: Vec<_> = platform.channels().iter().map(|c| c.id).collect();
    let stats = crawler.offline_pass(&channels, &mut store)?;
    println!(
        "crawl: {} videos, {} messages ({} skipped)",
        stats.crawled, stats.messages, stats.skipped
    );

    // Batch-extract top-5 candidates per video; measure against the
    // simulator's ground truth. Store reads are zero-copy views, and
    // scoring tokenizes straight out of them — no per-message Strings
    // anywhere on this loop.
    let mut precision = OnlineStats::new();
    let mut skipped_low_rate = 0;
    for sv in platform.all_videos() {
        let chat = store.get_chat_view(sv.video.meta.id)?.expect("crawled");
        // The Section VII-D applicability rule: skip videos under 500
        // messages/hour — LIGHTOR abstains rather than guessing.
        if chat.rate_per_hour(sv.video.meta.duration) < 500.0 {
            skipped_low_rate += 1;
            continue;
        }
        let dots = initializer.red_dots(&chat, sv.video.meta.duration, 5);
        let starts: Vec<Sec> = dots.iter().map(|d| d.at).collect();
        precision.push(video_precision_start(&starts, sv));
    }
    println!(
        "\nbatch results over {} videos ({} skipped as low-rate):",
        precision.count(),
        skipped_low_rate
    );
    println!(
        "  P@5(start): mean {:.3}, min {:.3}, max {:.3}",
        precision.mean().unwrap_or(0.0),
        precision.min().unwrap_or(0.0),
        precision.max().unwrap_or(0.0)
    );

    std::fs::remove_dir_all(&dir).ok();
    Ok(())
}
