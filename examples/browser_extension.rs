//! The Section VI deployment, end to end over real TCP sockets: the
//! web-service back end runs behind the hand-rolled HTTP/1.1 front end
//! (`lightor_server`), and this process plays the browser extension —
//! it fetches red dots on "page load", streams viewer sessions back as
//! JSON uploads, and re-fetches the dots to watch refinement move them
//! (paper Figure 5).
//!
//! ```text
//! cargo run --release --example browser_extension
//! ```

use lightor::{ExtractorConfig, FeatureSet, HighlightExtractor, ModelBundle};
use lightor_chatsim::{dota2_dataset, SimPlatform};
use lightor_crowdsim::Campaign;
use lightor_eval::harness::{train_initializer, train_type_classifier};
use lightor_platform::wire::{DotsResponse, EventDto, SessionUpload, StatsResponse};
use lightor_platform::{LightorService, ServiceConfig};
use lightor_server::{HttpClient, HttpServer, ServerConfig, SessionAccepted};
use lightor_types::{GameKind, Sec};
use std::sync::Arc;

fn main() -> std::io::Result<()> {
    // Back-end setup: train models offline (one labelled video), then
    // open the service against the live platform.
    let labelled = dota2_dataset(1, 71);
    let train: Vec<_> = labelled.videos.iter().collect();
    let mut campaign = Campaign::new(300, 72);
    let initializer = train_initializer(&train, FeatureSet::Full);
    let (classifier, _) = train_type_classifier(&train, &mut campaign, 4, 73);
    let models = ModelBundle {
        initializer,
        extractor: HighlightExtractor::new(classifier, ExtractorConfig::default()),
        provenance: "browser-extension example".into(),
    };

    let platform = SimPlatform::top_channels(GameKind::Dota2, 3, 4, 74);
    let dir = std::env::temp_dir().join(format!("lightor-extension-{}", std::process::id()));
    let svc = Arc::new(LightorService::open(
        &dir,
        models,
        platform.clone(),
        ServiceConfig::default(),
    )?);

    // Bring the network edge up on a loopback port.
    let server = HttpServer::bind(("127.0.0.1", 0), svc, ServerConfig::default())?;
    let addr = server.local_addr();
    println!("server listening on http://{addr}\n");

    // A user opens a recorded video page: the extension extracts the
    // video id and GETs the red dots over the wire.
    let vid = platform.recent_videos(platform.channels()[0].id)[1];
    let mut client = HttpClient::connect(addr)?;
    let resp = client.get(&format!("/video/{}/dots", vid.0))?;
    let dots: DotsResponse = resp.json().expect("dots JSON");
    println!(
        "GET /video/{}/dots -> {}\n{}\n",
        vid.0,
        resp.status,
        String::from_utf8_lossy(&resp.body)
    );

    // Viewers watch around the dots; the extension POSTs each session
    // back as JSON. Every upload may trigger a refinement round.
    let truth = platform.ground_truth(vid).unwrap().clone();
    let mut viewers = Campaign::new(200, 75);
    for round in 0..3 {
        let mut uploads = 0;
        let mut refined = 0;
        for dot in &dots.dots {
            let task = viewers.run_task(&truth.video, Sec(dot.at_seconds), 12);
            for session in task.sessions {
                let upload = SessionUpload {
                    video: vid.0,
                    client: session.user.0,
                    events: session.events.iter().map(|&e| EventDto::from(e)).collect(),
                };
                let resp =
                    client.post_json("/sessions", &serde_json::to_string(&upload).unwrap())?;
                assert_eq!(resp.status, 200, "{}", String::from_utf8_lossy(&resp.body));
                let accepted: SessionAccepted = resp.json().expect("session JSON");
                uploads += 1;
                refined += accepted.dots_refined;
            }
        }
        println!(
            "round {}: {uploads} session uploads over POST /sessions, {refined} dot refinements",
            round + 1
        );
    }

    // The next page load sees the refined positions.
    let after: DotsResponse = client
        .get(&format!("/video/{}/dots", vid.0))?
        .json()
        .unwrap();
    println!("\nred dots before refinement -> after (re-fetched over the wire):");
    for (i, (b, a)) in dots.dots.iter().zip(&after.dots).enumerate() {
        println!(
            "  dot {}: {:7.1}s -> {:7.1}s{}",
            i + 1,
            b.at_seconds,
            a.at_seconds,
            if (b.at_seconds - a.at_seconds).abs() > 1e-9 {
                "  (moved)"
            } else {
                ""
            }
        );
    }

    // Operations: per-route counters ride along in GET /stats.
    let stats: StatsResponse = client.get("/stats")?.json().unwrap();
    println!("\nGET /stats -> per-route counters:");
    for row in stats.http.iter().filter(|r| r.requests > 0) {
        println!(
            "  {:26} {:4} requests, {:2} errors, mean {:6.1} µs",
            row.route,
            row.requests,
            row.errors,
            row.latency_total_us as f64 / row.requests as f64
        );
    }

    server.shutdown();
    std::fs::remove_dir_all(&dir).ok();
    Ok(())
}
