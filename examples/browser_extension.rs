//! The Section VI deployment: a web-service back end serving a browser
//! extension. The extension sends a video id, receives red dots to draw,
//! and streams interaction events back as JSON; extraction rounds refine
//! the dots continuously and every artifact is persisted.
//!
//! ```text
//! cargo run --release --example browser_extension
//! ```

use lightor::{ExtractorConfig, FeatureSet, HighlightExtractor, ModelBundle};
use lightor_chatsim::{dota2_dataset, SimPlatform};
use lightor_crowdsim::Campaign;
use lightor_eval::harness::{train_initializer, train_type_classifier};
use lightor_platform::wire::{DotsResponse, EventDto, SessionUpload};
use lightor_platform::{LightorService, ServiceConfig};
use lightor_types::GameKind;

fn main() -> std::io::Result<()> {
    // Back-end setup: train models offline (one labelled video), then
    // open the service against the live platform.
    let labelled = dota2_dataset(1, 71);
    let train: Vec<_> = labelled.videos.iter().collect();
    let mut campaign = Campaign::new(300, 72);
    let initializer = train_initializer(&train, FeatureSet::Full);
    let (classifier, _) = train_type_classifier(&train, &mut campaign, 4, 73);
    let models = ModelBundle {
        initializer,
        extractor: HighlightExtractor::new(classifier, ExtractorConfig::default()),
        provenance: "browser-extension example".into(),
    };

    let platform = SimPlatform::top_channels(GameKind::Dota2, 3, 4, 74);
    let dir = std::env::temp_dir().join(format!("lightor-extension-{}", std::process::id()));
    let svc = LightorService::open(&dir, models, platform.clone(), ServiceConfig::default())?;

    // A user opens a recorded video page: the extension extracts the
    // video id and asks the back end for dots.
    let vid = platform.recent_videos(platform.channels()[0].id)[1];
    let dots = svc.open_video(vid)?.expect("video exists on the platform");
    let response = DotsResponse {
        video: vid.0,
        dots: dots.iter().map(|&d| d.into()).collect(),
    };
    println!(
        "GET /video/{}/dots ->\n{}\n",
        vid.0,
        serde_json::to_string_pretty(&response).unwrap()
    );

    // Viewers watch around the dots; the extension streams sessions back.
    // (Simulated here by the crowd model; a real extension posts the same
    // JSON payloads.)
    let truth = platform.ground_truth(vid).unwrap().clone();
    let mut viewers = Campaign::new(200, 75);
    for round in 0..3 {
        let mut uploads = 0;
        for dot in &dots {
            let task = viewers.run_task(&truth.video, dot.at, 12);
            for session in task.sessions {
                let upload = SessionUpload {
                    video: vid.0,
                    client: session.user.0,
                    events: session.events.iter().map(|&e| EventDto::from(e)).collect(),
                };
                // Serialize/deserialize across the "wire", then ingest.
                let json = serde_json::to_string(&upload).unwrap();
                let parsed: SessionUpload = serde_json::from_str(&json).unwrap();
                let (video, session) = parsed.into_session();
                svc.log_session(video, &session);
                uploads += 1;
            }
        }
        let refined = svc.refine_video(vid)?;
        println!(
            "round {}: {uploads} session uploads, {refined} dots refined",
            round + 1
        );
    }

    // Final state, as the next page load would see it.
    let state = svc.video_state(vid).expect("state exists");
    println!("\nfinal red-dot state for {}:", vid);
    for (i, d) in state.dots.iter().enumerate() {
        println!(
            "  dot {}: {:7.1}s -> {:7.1}s  end={} rounds={} converged={}",
            i + 1,
            d.initial.at.0,
            d.current.0,
            d.end
                .map(|e| format!("{:.1}", e.0))
                .unwrap_or_else(|| "-".into()),
            d.rounds,
            d.converged
        );
    }

    std::fs::remove_dir_all(&dir).ok();
    Ok(())
}
