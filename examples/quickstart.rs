//! Quickstart: train LIGHTOR on one labelled video, extract highlights
//! from an unseen video with a simulated crowd, print the results.
//!
//! ```text
//! cargo run --release --example quickstart
//! ```

use lightor::{
    ExtractorConfig, FeatureSet, HighlightExtractor, HighlightInitializer, InitializerConfig,
    Lightor, TrainingVideo,
};
use lightor_chatsim::dota2_dataset;
use lightor_crowdsim::Campaign;
use lightor_eval::harness::train_type_classifier;
use lightor_types::Sec;

fn main() {
    // 1. Data. Two simulated Dota2 videos with ground-truth highlights:
    //    one for training (the paper labels exactly one video), one to
    //    extract from.
    let data = dota2_dataset(2, 42);
    let train = &data.videos[0];
    let target = &data.videos[1];
    println!(
        "training video: {} messages, {} labelled highlights",
        train.video.chat.len(),
        train.video.highlights.len()
    );

    // 2. Train the Highlight Initializer (window model + adjustment c).
    let initializer = HighlightInitializer::train(
        &[TrainingVideo {
            chat: &train.video.chat,
            duration: train.video.meta.duration,
            highlights: &train.video.highlights,
            label_ranges: &train.response_ranges,
        }],
        FeatureSet::Full,
        InitializerConfig::default(),
    );
    println!(
        "learned reaction-delay constant c = {:.0} s",
        initializer.adjustment()
    );

    // 3. Train the Type I/II classifier from crowd interactions on the
    //    training video (one AMT-style campaign).
    let mut campaign = Campaign::new(492, 43);
    let (classifier, acc) = train_type_classifier(&[train], &mut campaign, 4, 44);
    println!("type classifier hold-out accuracy = {acc:.2} (paper: ~0.80)");

    // 4. Wire the system and run the full workflow on the unseen video.
    let system = Lightor::new(
        initializer,
        HighlightExtractor::new(classifier, ExtractorConfig::default()),
    );
    let video = &target.video;
    let mut collect = |_dot_idx: usize, pos: Sec| campaign.run_task(video, pos, 10).plays;
    let highlights = system.extract_highlights(&video.chat, video.meta.duration, 5, &mut collect);

    // 5. Report, with ground truth for reference (a real deployment has
    //    none, of course).
    println!("\nextracted top-5 highlights of {}:", video.meta.id);
    for (i, h) in highlights.iter().enumerate() {
        let verdict = if video.is_good_dot(h.start, Sec(10.0)) {
            "hit "
        } else {
            "miss"
        };
        match h.end {
            Some(e) => println!(
                "  #{} [{:7.1} .. {:7.1}]  ({} crowd rounds, {verdict})",
                i + 1,
                h.start.0,
                e.0,
                h.iterations
            ),
            None => println!(
                "  #{} start {:7.1}, end unresolved ({} rounds, {verdict})",
                i + 1,
                h.start.0,
                h.iterations
            ),
        }
    }
    println!("\nground truth for comparison:");
    for h in &video.highlights {
        println!("     {}", h.range);
    }
}
