//! Minimal offline replacement for `criterion`.
//!
//! Benches run with `cargo bench` via `harness = false` targets exactly
//! like the real crate. Measurement is deliberately simple: a short
//! warm-up, then timed batches until a time budget or the sample count
//! is reached, reporting mean and best ns/iter (plus throughput when
//! configured). Good enough for before/after comparisons on the same
//! machine, which is all this workspace needs.
//!
//! Two environment knobs support CI smoke runs:
//!
//! * `CRITERION_QUICK=1` — shrink sample counts and time budgets so a
//!   whole bench binary finishes in seconds;
//! * `CRITERION_JSON=<path>` — after all groups run, write every
//!   benchmark's median/best ns-per-iter to `<path>` as JSON (the
//!   workspace records serving-path medians in `BENCH_platform.json`
//!   this way, giving PRs a perf trajectory to compare against).

use std::sync::Mutex;
use std::time::{Duration, Instant};

/// One finished benchmark, retained for the optional JSON report.
#[derive(Clone, Debug)]
struct BenchRecord {
    name: String,
    median_ns: f64,
    best_ns: f64,
}

static RESULTS: Mutex<Vec<BenchRecord>> = Mutex::new(Vec::new());

fn quick_mode() -> bool {
    std::env::var("CRITERION_QUICK").is_ok_and(|v| !v.is_empty() && v != "0")
}

fn json_escape(s: &str) -> String {
    s.chars()
        .flat_map(|c| match c {
            '"' => "\\\"".chars().collect::<Vec<_>>(),
            '\\' => "\\\\".chars().collect(),
            c if (c as u32) < 0x20 => format!("\\u{:04x}", c as u32).chars().collect(),
            c => vec![c],
        })
        .collect()
}

/// Write the collected results as JSON to `$CRITERION_JSON`, if set.
/// Called by `criterion_main!` after every group has run; harmless (and
/// silent) when the variable is absent.
pub fn write_json_report() {
    let Ok(path) = std::env::var("CRITERION_JSON") else {
        return;
    };
    if path.is_empty() {
        return;
    }
    let results = RESULTS.lock().unwrap_or_else(|e| e.into_inner());
    let mut out = String::from("{\n  \"benches\": [\n");
    for (i, r) in results.iter().enumerate() {
        out.push_str(&format!(
            "    {{\"name\": \"{}\", \"median_ns\": {:.1}, \"best_ns\": {:.1}}}{}\n",
            json_escape(&r.name),
            r.median_ns,
            r.best_ns,
            if i + 1 < results.len() { "," } else { "" }
        ));
    }
    out.push_str("  ]\n}\n");
    if let Err(e) = std::fs::write(&path, out) {
        eprintln!("criterion: failed to write {path}: {e}");
    } else {
        println!("criterion: wrote {} result(s) to {path}", results.len());
    }
}

pub use std::hint::black_box;

/// Throughput annotation for a benchmark group.
#[derive(Clone, Copy, Debug)]
pub enum Throughput {
    /// Elements processed per iteration.
    Elements(u64),
    /// Bytes processed per iteration.
    Bytes(u64),
}

/// Top-level benchmark driver.
pub struct Criterion {
    sample_size: usize,
    measure_budget: Duration,
}

impl Default for Criterion {
    fn default() -> Self {
        if quick_mode() {
            Criterion {
                sample_size: 10,
                measure_budget: Duration::from_millis(300),
            }
        } else {
            Criterion {
                sample_size: 50,
                measure_budget: Duration::from_secs(3),
            }
        }
    }
}

impl Criterion {
    /// Run one benchmark.
    pub fn bench_function<F>(&mut self, name: impl AsRef<str>, mut f: F) -> &mut Self
    where
        F: FnMut(&mut Bencher),
    {
        run_bench(
            name.as_ref(),
            self.sample_size,
            self.measure_budget,
            None,
            &mut f,
        );
        self
    }

    /// Open a named group of related benchmarks.
    pub fn benchmark_group(&mut self, name: &str) -> BenchmarkGroup<'_> {
        BenchmarkGroup {
            name: name.to_string(),
            sample_size: self.sample_size,
            measure_budget: self.measure_budget,
            throughput: None,
            _parent: std::marker::PhantomData,
        }
    }
}

/// A group of benchmarks sharing configuration.
pub struct BenchmarkGroup<'a> {
    name: String,
    sample_size: usize,
    measure_budget: Duration,
    throughput: Option<Throughput>,
    _parent: std::marker::PhantomData<&'a mut Criterion>,
}

impl<'a> BenchmarkGroup<'a> {
    /// Set the number of measured samples.
    pub fn sample_size(&mut self, n: usize) -> &mut Self {
        self.sample_size = n.max(1);
        self
    }

    /// Annotate throughput for per-element/-byte rates.
    pub fn throughput(&mut self, t: Throughput) -> &mut Self {
        self.throughput = Some(t);
        self
    }

    /// Set the measurement time budget.
    pub fn measurement_time(&mut self, d: Duration) -> &mut Self {
        self.measure_budget = d;
        self
    }

    /// Run one benchmark inside the group.
    pub fn bench_function<F>(&mut self, name: impl AsRef<str>, mut f: F) -> &mut Self
    where
        F: FnMut(&mut Bencher),
    {
        let full = format!("{}/{}", self.name, name.as_ref());
        run_bench(
            &full,
            self.sample_size,
            self.measure_budget,
            self.throughput,
            &mut f,
        );
        self
    }

    /// Finish the group (report separator).
    pub fn finish(&mut self) {}
}

/// Passed to the benchmark closure; call [`Bencher::iter`].
pub struct Bencher {
    iters: u64,
    elapsed: Duration,
}

impl Bencher {
    /// Time `f` over this sample's iteration count.
    pub fn iter<O, F: FnMut() -> O>(&mut self, mut f: F) {
        let start = Instant::now();
        for _ in 0..self.iters {
            black_box(f());
        }
        self.elapsed = start.elapsed();
    }
}

fn time_once<F: FnMut(&mut Bencher)>(iters: u64, f: &mut F) -> Duration {
    let mut b = Bencher {
        iters,
        elapsed: Duration::ZERO,
    };
    f(&mut b);
    b.elapsed
}

fn run_bench<F>(
    name: &str,
    sample_size: usize,
    budget: Duration,
    throughput: Option<Throughput>,
    f: &mut F,
) where
    F: FnMut(&mut Bencher),
{
    // Calibrate: find an iteration count taking ≳1 ms per sample.
    let mut iters: u64 = 1;
    loop {
        let t = time_once(iters, f);
        if t >= Duration::from_millis(1) || iters >= 1 << 20 {
            break;
        }
        iters *= 4;
    }

    let deadline = Instant::now() + budget;
    let mut samples_ns: Vec<f64> = Vec::with_capacity(sample_size);
    for _ in 0..sample_size {
        let t = time_once(iters, f);
        samples_ns.push(t.as_nanos() as f64 / iters as f64);
        if Instant::now() > deadline {
            break;
        }
    }
    samples_ns.sort_by(|a, b| a.total_cmp(b));
    let best = samples_ns.first().copied().unwrap_or(0.0);
    let median = samples_ns[samples_ns.len() / 2];

    let rate = throughput.map(|t| match t {
        Throughput::Elements(n) => format!(" ({:.3} Melem/s)", n as f64 / median * 1e3),
        Throughput::Bytes(n) => {
            format!(" ({:.1} MiB/s)", n as f64 / median * 1e9 / (1 << 20) as f64)
        }
    });
    println!(
        "{name:<45} time: [median {} best {}]{}",
        fmt_ns(median),
        fmt_ns(best),
        rate.unwrap_or_default()
    );
    RESULTS
        .lock()
        .unwrap_or_else(|e| e.into_inner())
        .push(BenchRecord {
            name: name.to_string(),
            median_ns: median,
            best_ns: best,
        });
}

fn fmt_ns(ns: f64) -> String {
    if ns >= 1e9 {
        format!("{:.3} s", ns / 1e9)
    } else if ns >= 1e6 {
        format!("{:.3} ms", ns / 1e6)
    } else if ns >= 1e3 {
        format!("{:.3} µs", ns / 1e3)
    } else {
        format!("{ns:.1} ns")
    }
}

/// Mirror of `criterion_group!`.
#[macro_export]
macro_rules! criterion_group {
    ($group:ident, $($target:path),+ $(,)?) => {
        fn $group() {
            let mut criterion = $crate::Criterion::default();
            $($target(&mut criterion);)+
        }
    };
}

/// Mirror of `criterion_main!`. Additionally flushes the optional JSON
/// report (`$CRITERION_JSON`) once every group has run.
#[macro_export]
macro_rules! criterion_main {
    ($($group:ident),+ $(,)?) => {
        fn main() {
            $($group();)+
            $crate::write_json_report();
        }
    };
}
