//! Minimal offline replacement for `rand_distr`: Normal (Box–Muller),
//! Exp (inverse CDF) and Poisson (Knuth for small means, normal
//! approximation for large).

pub use rand::distributions::Distribution;
use rand::distributions::Standard;
use rand::RngCore;

/// Parameter validation error.
#[derive(Clone, Copy, Debug, PartialEq, Eq)]
pub struct Error(&'static str);

impl std::fmt::Display for Error {
    fn fmt(&self, f: &mut std::fmt::Formatter<'_>) -> std::fmt::Result {
        write!(f, "{}", self.0)
    }
}

impl std::error::Error for Error {}

/// Uniform draw in `(0, 1]` — safe for `ln`.
#[inline]
fn unit_open<R: RngCore + ?Sized>(rng: &mut R) -> f64 {
    ((rng.next_u64() >> 11) + 1) as f64 * (1.0 / (1u64 << 53) as f64)
}

/// Normal (Gaussian) distribution.
#[derive(Clone, Copy, Debug)]
pub struct Normal<F> {
    mean: F,
    std_dev: F,
}

impl Normal<f64> {
    /// Build; errors when parameters are non-finite or `std_dev < 0`.
    pub fn new(mean: f64, std_dev: f64) -> Result<Self, Error> {
        if !mean.is_finite() || !std_dev.is_finite() || std_dev < 0.0 {
            return Err(Error("invalid Normal parameters"));
        }
        Ok(Normal { mean, std_dev })
    }
}

impl Distribution<f64> for Normal<f64> {
    #[inline]
    fn sample<R: RngCore + ?Sized>(&self, rng: &mut R) -> f64 {
        // Box–Muller; one value per draw keeps the sampler stateless.
        let u1 = unit_open(rng);
        let u2: f64 = Standard.sample(rng);
        let z = (-2.0 * u1.ln()).sqrt() * (std::f64::consts::TAU * u2).cos();
        self.mean + self.std_dev * z
    }
}

/// Exponential distribution with rate `lambda`.
#[derive(Clone, Copy, Debug)]
pub struct Exp<F> {
    lambda: F,
}

impl Exp<f64> {
    /// Build; errors when `lambda <= 0` or non-finite.
    pub fn new(lambda: f64) -> Result<Self, Error> {
        if !lambda.is_finite() || lambda <= 0.0 {
            return Err(Error("invalid Exp rate"));
        }
        Ok(Exp { lambda })
    }
}

impl Distribution<f64> for Exp<f64> {
    #[inline]
    fn sample<R: RngCore + ?Sized>(&self, rng: &mut R) -> f64 {
        -unit_open(rng).ln() / self.lambda
    }
}

/// Poisson distribution.
#[derive(Clone, Copy, Debug)]
pub struct Poisson<F> {
    mean: F,
}

impl Poisson<f64> {
    /// Build; errors when `mean <= 0` or non-finite.
    pub fn new(mean: f64) -> Result<Self, Error> {
        if !mean.is_finite() || mean <= 0.0 {
            return Err(Error("invalid Poisson mean"));
        }
        Ok(Poisson { mean })
    }
}

impl Distribution<f64> for Poisson<f64> {
    fn sample<R: RngCore + ?Sized>(&self, rng: &mut R) -> f64 {
        if self.mean < 30.0 {
            // Knuth: multiply uniforms until below e^-mean.
            let limit = (-self.mean).exp();
            let mut k = 0u64;
            let mut p = 1.0;
            loop {
                p *= unit_open(rng);
                if p <= limit {
                    return k as f64;
                }
                k += 1;
            }
        } else {
            // Normal approximation, adequate for simulation workloads.
            let n = Normal {
                mean: self.mean,
                std_dev: self.mean.sqrt(),
            };
            n.sample(rng).round().max(0.0)
        }
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use rand::rngs::StdRng;
    use rand::SeedableRng;

    #[test]
    fn normal_moments() {
        let d = Normal::new(5.0, 2.0).unwrap();
        let mut rng = StdRng::seed_from_u64(1);
        let n = 40_000;
        let xs: Vec<f64> = (0..n).map(|_| d.sample(&mut rng)).collect();
        let mean = xs.iter().sum::<f64>() / n as f64;
        let var = xs.iter().map(|x| (x - mean).powi(2)).sum::<f64>() / n as f64;
        assert!((mean - 5.0).abs() < 0.05, "mean {mean}");
        assert!((var - 4.0).abs() < 0.2, "var {var}");
    }

    #[test]
    fn exp_mean() {
        let d = Exp::new(2.0).unwrap();
        let mut rng = StdRng::seed_from_u64(2);
        let n = 40_000;
        let mean = (0..n).map(|_| d.sample(&mut rng)).sum::<f64>() / n as f64;
        assert!((mean - 0.5).abs() < 0.02, "mean {mean}");
    }

    #[test]
    fn poisson_small_and_large_mean() {
        let mut rng = StdRng::seed_from_u64(3);
        for target in [3.0, 80.0] {
            let d = Poisson::new(target).unwrap();
            let n = 20_000;
            let mean = (0..n).map(|_| d.sample(&mut rng)).sum::<f64>() / n as f64;
            assert!(
                (mean - target).abs() < target.sqrt() * 0.15,
                "target {target} mean {mean}"
            );
        }
    }

    #[test]
    fn invalid_parameters_error() {
        assert!(Normal::new(0.0, -1.0).is_err());
        assert!(Exp::new(0.0).is_err());
        assert!(Poisson::new(0.0).is_err());
        assert!(Normal::new(f64::NAN, 1.0).is_err());
    }
}
