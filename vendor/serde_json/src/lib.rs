//! Minimal offline replacement for `serde_json` over the vendored
//! serde's [`Value`] tree: a JSON printer (compact + pretty) and a
//! recursive-descent parser.
//!
//! Numbers print via Rust's shortest-round-trip float formatting, so
//! `f64` values survive a serialize → parse cycle bit-exactly.

use serde::{Deserialize, Serialize};
use std::fmt::Write as _;

pub use serde::Error;
/// Re-export: `serde_json::Value` is the vendored serde's value tree.
pub use serde::Value;

/// Result alias matching `serde_json::Result`.
pub type Result<T> = std::result::Result<T, Error>;

/// Serialize to a compact JSON string.
pub fn to_string<T: Serialize + ?Sized>(value: &T) -> Result<String> {
    let mut out = String::new();
    write_value(&mut out, &value.to_value(), None, 0);
    Ok(out)
}

/// Serialize to an indented JSON string.
pub fn to_string_pretty<T: Serialize + ?Sized>(value: &T) -> Result<String> {
    let mut out = String::new();
    write_value(&mut out, &value.to_value(), Some(2), 0);
    Ok(out)
}

/// Serialize to pretty JSON bytes.
pub fn to_vec_pretty<T: Serialize + ?Sized>(value: &T) -> Result<Vec<u8>> {
    to_string_pretty(value).map(String::into_bytes)
}

/// Serialize to compact JSON bytes.
pub fn to_vec<T: Serialize + ?Sized>(value: &T) -> Result<Vec<u8>> {
    to_string(value).map(String::into_bytes)
}

/// Convert any serializable value into a [`Value`] tree.
pub fn to_value<T: Serialize>(value: T) -> Result<Value> {
    Ok(value.to_value())
}

/// Convert a [`Value`] tree into a deserializable type.
pub fn from_value<T: Deserialize>(value: Value) -> Result<T> {
    T::from_value(&value)
}

/// Print a *borrowed* [`Value`] tree as compact JSON.
///
/// `to_string(&value)` round-trips through `Serialize::to_value`,
/// which clones the whole tree; this prints in place.
pub fn value_to_string(v: &Value) -> String {
    let mut out = String::new();
    write_value(&mut out, v, None, 0);
    out
}

/// Convert a *borrowed* [`Value`] tree into a deserializable type.
///
/// The vendored serde deserializes from `&Value` natively, so callers
/// that keep a `Value` tree around (e.g. a KV store's in-memory map)
/// can decode without cloning the tree first.
pub fn from_value_ref<T: Deserialize>(value: &Value) -> Result<T> {
    T::from_value(value)
}

/// Parse a JSON string into a deserializable type.
pub fn from_str<T: Deserialize>(s: &str) -> Result<T> {
    let value = parse(s)?;
    T::from_value(&value)
}

/// Parse JSON bytes into a deserializable type.
pub fn from_slice<T: Deserialize>(bytes: &[u8]) -> Result<T> {
    let s = std::str::from_utf8(bytes).map_err(Error::custom)?;
    from_str(s)
}

// ---------------------------------------------------------------------
// Printer
// ---------------------------------------------------------------------

fn write_value(out: &mut String, v: &Value, indent: Option<usize>, depth: usize) {
    match v {
        Value::Null => out.push_str("null"),
        Value::Bool(true) => out.push_str("true"),
        Value::Bool(false) => out.push_str("false"),
        Value::I64(n) => {
            let _ = write!(out, "{n}");
        }
        Value::U64(n) => {
            let _ = write!(out, "{n}");
        }
        Value::F64(f) => write_f64(out, *f),
        Value::Str(s) => write_escaped(out, s),
        Value::Seq(items) => {
            out.push('[');
            for (i, item) in items.iter().enumerate() {
                if i > 0 {
                    out.push(',');
                }
                write_sep(out, indent, depth + 1);
                write_value(out, item, indent, depth + 1);
            }
            if !items.is_empty() {
                write_sep(out, indent, depth);
            }
            out.push(']');
        }
        Value::Map(entries) => {
            out.push('{');
            for (i, (k, item)) in entries.iter().enumerate() {
                if i > 0 {
                    out.push(',');
                }
                write_sep(out, indent, depth + 1);
                write_escaped(out, k);
                out.push(':');
                if indent.is_some() {
                    out.push(' ');
                }
                write_value(out, item, indent, depth + 1);
            }
            if !entries.is_empty() {
                write_sep(out, indent, depth);
            }
            out.push('}');
        }
    }
}

fn write_sep(out: &mut String, indent: Option<usize>, depth: usize) {
    if let Some(step) = indent {
        out.push('\n');
        for _ in 0..depth * step {
            out.push(' ');
        }
    }
}

fn write_f64(out: &mut String, f: f64) {
    if f.is_finite() {
        // Rust's `{}` float formatting is shortest-round-trip; keep a
        // trailing `.0` so integral floats still parse back as F64.
        let s = format!("{f}");
        out.push_str(&s);
        if !s.contains(['.', 'e', 'E']) {
            out.push_str(".0");
        }
    } else {
        // Real JSON has no NaN/inf; match serde_json by emitting null.
        out.push_str("null");
    }
}

fn write_escaped(out: &mut String, s: &str) {
    out.push('"');
    for c in s.chars() {
        match c {
            '"' => out.push_str("\\\""),
            '\\' => out.push_str("\\\\"),
            '\n' => out.push_str("\\n"),
            '\r' => out.push_str("\\r"),
            '\t' => out.push_str("\\t"),
            c if (c as u32) < 0x20 => {
                let _ = write!(out, "\\u{:04x}", c as u32);
            }
            c => out.push(c),
        }
    }
    out.push('"');
}

// ---------------------------------------------------------------------
// Parser
// ---------------------------------------------------------------------

struct Parser<'a> {
    bytes: &'a [u8],
    pos: usize,
}

fn parse(s: &str) -> Result<Value> {
    let mut p = Parser {
        bytes: s.as_bytes(),
        pos: 0,
    };
    p.skip_ws();
    let v = p.value()?;
    p.skip_ws();
    if p.pos != p.bytes.len() {
        return Err(Error::custom("trailing characters after JSON value"));
    }
    Ok(v)
}

impl<'a> Parser<'a> {
    fn skip_ws(&mut self) {
        while let Some(&b) = self.bytes.get(self.pos) {
            if matches!(b, b' ' | b'\t' | b'\n' | b'\r') {
                self.pos += 1;
            } else {
                break;
            }
        }
    }

    fn peek(&self) -> Option<u8> {
        self.bytes.get(self.pos).copied()
    }

    fn expect(&mut self, b: u8) -> Result<()> {
        if self.peek() == Some(b) {
            self.pos += 1;
            Ok(())
        } else {
            Err(Error::custom(format!(
                "expected `{}` at byte {}",
                b as char, self.pos
            )))
        }
    }

    fn eat_literal(&mut self, lit: &str) -> bool {
        if self.bytes[self.pos..].starts_with(lit.as_bytes()) {
            self.pos += lit.len();
            true
        } else {
            false
        }
    }

    fn value(&mut self) -> Result<Value> {
        match self.peek() {
            Some(b'n') if self.eat_literal("null") => Ok(Value::Null),
            Some(b't') if self.eat_literal("true") => Ok(Value::Bool(true)),
            Some(b'f') if self.eat_literal("false") => Ok(Value::Bool(false)),
            Some(b'"') => self.string().map(Value::Str),
            Some(b'[') => self.seq(),
            Some(b'{') => self.map(),
            Some(b) if b == b'-' || b.is_ascii_digit() => self.number(),
            _ => Err(Error::custom(format!("unexpected byte at {}", self.pos))),
        }
    }

    fn seq(&mut self) -> Result<Value> {
        self.expect(b'[')?;
        let mut items = Vec::new();
        self.skip_ws();
        if self.peek() == Some(b']') {
            self.pos += 1;
            return Ok(Value::Seq(items));
        }
        loop {
            self.skip_ws();
            items.push(self.value()?);
            self.skip_ws();
            match self.peek() {
                Some(b',') => self.pos += 1,
                Some(b']') => {
                    self.pos += 1;
                    return Ok(Value::Seq(items));
                }
                _ => return Err(Error::custom("expected `,` or `]`")),
            }
        }
    }

    fn map(&mut self) -> Result<Value> {
        self.expect(b'{')?;
        let mut entries = Vec::new();
        self.skip_ws();
        if self.peek() == Some(b'}') {
            self.pos += 1;
            return Ok(Value::Map(entries));
        }
        loop {
            self.skip_ws();
            let key = self.string()?;
            self.skip_ws();
            self.expect(b':')?;
            self.skip_ws();
            let value = self.value()?;
            entries.push((key, value));
            self.skip_ws();
            match self.peek() {
                Some(b',') => self.pos += 1,
                Some(b'}') => {
                    self.pos += 1;
                    return Ok(Value::Map(entries));
                }
                _ => return Err(Error::custom("expected `,` or `}`")),
            }
        }
    }

    fn string(&mut self) -> Result<String> {
        self.expect(b'"')?;
        let mut out = String::new();
        loop {
            let b = self
                .peek()
                .ok_or_else(|| Error::custom("unterminated string"))?;
            self.pos += 1;
            match b {
                b'"' => return Ok(out),
                b'\\' => {
                    let esc = self
                        .peek()
                        .ok_or_else(|| Error::custom("unterminated escape"))?;
                    self.pos += 1;
                    match esc {
                        b'"' => out.push('"'),
                        b'\\' => out.push('\\'),
                        b'/' => out.push('/'),
                        b'b' => out.push('\u{8}'),
                        b'f' => out.push('\u{c}'),
                        b'n' => out.push('\n'),
                        b'r' => out.push('\r'),
                        b't' => out.push('\t'),
                        b'u' => {
                            let cp = self.hex4()?;
                            let ch = if (0xD800..0xDC00).contains(&cp) {
                                // surrogate pair
                                if !self.eat_literal("\\u") {
                                    return Err(Error::custom("lone surrogate"));
                                }
                                let lo = self.hex4()?;
                                let c = 0x10000 + ((cp - 0xD800) << 10) + (lo - 0xDC00);
                                char::from_u32(c)
                            } else {
                                char::from_u32(cp)
                            };
                            out.push(ch.ok_or_else(|| Error::custom("bad codepoint"))?);
                        }
                        _ => return Err(Error::custom("bad escape")),
                    }
                }
                _ => {
                    // Collect the full UTF-8 sequence starting at pos-1.
                    let start = self.pos - 1;
                    let width = utf8_width(b);
                    self.pos = start + width;
                    let chunk = self
                        .bytes
                        .get(start..self.pos)
                        .ok_or_else(|| Error::custom("truncated UTF-8"))?;
                    let s = std::str::from_utf8(chunk).map_err(Error::custom)?;
                    out.push_str(s);
                }
            }
        }
    }

    fn hex4(&mut self) -> Result<u32> {
        let chunk = self
            .bytes
            .get(self.pos..self.pos + 4)
            .ok_or_else(|| Error::custom("truncated \\u escape"))?;
        let s = std::str::from_utf8(chunk).map_err(Error::custom)?;
        self.pos += 4;
        u32::from_str_radix(s, 16).map_err(Error::custom)
    }

    fn number(&mut self) -> Result<Value> {
        let start = self.pos;
        if self.peek() == Some(b'-') {
            self.pos += 1;
        }
        let mut is_float = false;
        while let Some(b) = self.peek() {
            match b {
                b'0'..=b'9' => self.pos += 1,
                b'.' | b'e' | b'E' | b'+' | b'-' => {
                    is_float = true;
                    self.pos += 1;
                }
                _ => break,
            }
        }
        let text = std::str::from_utf8(&self.bytes[start..self.pos]).map_err(Error::custom)?;
        if !is_float {
            if text.starts_with('-') {
                if let Ok(n) = text.parse::<i64>() {
                    return Ok(Value::I64(n));
                }
            } else if let Ok(n) = text.parse::<u64>() {
                return Ok(Value::U64(n));
            }
        }
        text.parse::<f64>().map(Value::F64).map_err(Error::custom)
    }
}

fn utf8_width(b: u8) -> usize {
    match b {
        0x00..=0x7F => 1,
        0xC0..=0xDF => 2,
        0xE0..=0xEF => 3,
        _ => 4,
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn round_trips_scalars() {
        assert_eq!(to_string(&true).unwrap(), "true");
        assert!(from_str::<bool>("true").unwrap());
        assert_eq!(to_string(&25.0f64).unwrap(), "25.0");
        assert_eq!(from_str::<f64>("25.0").unwrap(), 25.0);
        assert_eq!(
            from_str::<u64>(&to_string(&u64::MAX).unwrap()).unwrap(),
            u64::MAX
        );
        let tricky = 0.1f64 + 0.2;
        assert_eq!(
            from_str::<f64>(&to_string(&tricky).unwrap()).unwrap(),
            tricky
        );
    }

    #[test]
    fn round_trips_strings() {
        let s = "a \"quoted\" line\nwith \\ unicode ∞".to_string();
        let js = to_string(&s).unwrap();
        assert_eq!(from_str::<String>(&js).unwrap(), s);
    }

    #[test]
    fn round_trips_collections() {
        let v = vec![1u64, 2, 3];
        assert_eq!(from_str::<Vec<u64>>(&to_string(&v).unwrap()).unwrap(), v);
        let opt: Option<f64> = None;
        assert_eq!(to_string(&opt).unwrap(), "null");
        assert_eq!(from_str::<Option<f64>>("null").unwrap(), None);
    }

    #[test]
    fn pretty_parses_back() {
        let v = Value::Map(vec![
            ("a".into(), Value::U64(1)),
            (
                "b".into(),
                Value::Seq(vec![Value::Bool(false), Value::Null]),
            ),
        ]);
        let js = to_string_pretty(&v).unwrap();
        assert_eq!(from_str::<Value>(&js).unwrap(), v);
    }
}
