//! Minimal offline replacement for `bytes`: `BytesMut` plus the `Buf`
//! and `BufMut` traits, little-endian accessors only (all this
//! workspace's wire formats are LE).

use std::ops::{Deref, DerefMut};

/// Read-side cursor over a byte source.
pub trait Buf {
    /// Bytes left to read.
    fn remaining(&self) -> usize;

    /// Skip `n` bytes.
    fn advance(&mut self, n: usize);

    /// Copy out `N` bytes (helper for the typed getters).
    fn copy_array<const N: usize>(&mut self) -> [u8; N];

    /// Read a little-endian `u16`.
    fn get_u16_le(&mut self) -> u16 {
        u16::from_le_bytes(self.copy_array())
    }

    /// Read a little-endian `u32`.
    fn get_u32_le(&mut self) -> u32 {
        u32::from_le_bytes(self.copy_array())
    }

    /// Read a little-endian `u64`.
    fn get_u64_le(&mut self) -> u64 {
        u64::from_le_bytes(self.copy_array())
    }

    /// Read a little-endian `f64`.
    fn get_f64_le(&mut self) -> f64 {
        f64::from_le_bytes(self.copy_array())
    }

    /// Read a single byte.
    fn get_u8(&mut self) -> u8 {
        self.copy_array::<1>()[0]
    }
}

impl Buf for &[u8] {
    fn remaining(&self) -> usize {
        self.len()
    }

    fn advance(&mut self, n: usize) {
        *self = &self[n..];
    }

    fn copy_array<const N: usize>(&mut self) -> [u8; N] {
        let mut out = [0u8; N];
        out.copy_from_slice(&self[..N]);
        *self = &self[N..];
        out
    }
}

/// Write-side buffer.
pub trait BufMut {
    /// Append raw bytes.
    fn put_slice(&mut self, src: &[u8]);

    /// Append a single byte.
    fn put_u8(&mut self, v: u8) {
        self.put_slice(&[v]);
    }

    /// Append a little-endian `u16`.
    fn put_u16_le(&mut self, v: u16) {
        self.put_slice(&v.to_le_bytes());
    }

    /// Append a little-endian `u32`.
    fn put_u32_le(&mut self, v: u32) {
        self.put_slice(&v.to_le_bytes());
    }

    /// Append a little-endian `u64`.
    fn put_u64_le(&mut self, v: u64) {
        self.put_slice(&v.to_le_bytes());
    }

    /// Append a little-endian `f64`.
    fn put_f64_le(&mut self, v: f64) {
        self.put_slice(&v.to_le_bytes());
    }
}

impl BufMut for Vec<u8> {
    fn put_slice(&mut self, src: &[u8]) {
        self.extend_from_slice(src);
    }
}

/// A growable byte buffer (thin wrapper over `Vec<u8>`).
#[derive(Clone, Debug, Default, PartialEq, Eq)]
pub struct BytesMut {
    inner: Vec<u8>,
}

impl BytesMut {
    /// An empty buffer.
    pub fn new() -> Self {
        BytesMut::default()
    }

    /// An empty buffer with reserved capacity.
    pub fn with_capacity(cap: usize) -> Self {
        BytesMut {
            inner: Vec::with_capacity(cap),
        }
    }

    /// Length in bytes.
    pub fn len(&self) -> usize {
        self.inner.len()
    }

    /// True when empty.
    pub fn is_empty(&self) -> bool {
        self.inner.is_empty()
    }

    /// Copy out as a plain vector.
    pub fn to_vec(&self) -> Vec<u8> {
        self.inner.clone()
    }
}

impl BufMut for BytesMut {
    fn put_slice(&mut self, src: &[u8]) {
        self.inner.extend_from_slice(src);
    }
}

impl Deref for BytesMut {
    type Target = [u8];
    fn deref(&self) -> &[u8] {
        &self.inner
    }
}

impl DerefMut for BytesMut {
    fn deref_mut(&mut self) -> &mut [u8] {
        &mut self.inner
    }
}

impl AsRef<[u8]> for BytesMut {
    fn as_ref(&self) -> &[u8] {
        &self.inner
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn round_trip() {
        let mut buf = BytesMut::new();
        buf.put_u32_le(7);
        buf.put_u64_le(u64::MAX);
        buf.put_f64_le(1.5);
        buf.put_u16_le(300);
        buf.put_slice(b"hey");
        let mut r: &[u8] = &buf;
        assert_eq!(r.remaining(), 4 + 8 + 8 + 2 + 3);
        assert_eq!(r.get_u32_le(), 7);
        assert_eq!(r.get_u64_le(), u64::MAX);
        assert_eq!(r.get_f64_le(), 1.5);
        assert_eq!(r.get_u16_le(), 300);
        assert_eq!(r, b"hey");
        r.advance(3);
        assert_eq!(r.remaining(), 0);
    }
}
