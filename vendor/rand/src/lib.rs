//! Minimal offline replacement for `rand` 0.8, covering the API surface
//! this workspace uses: `StdRng` (xoshiro256++ seeded via splitmix64),
//! `Rng::{gen, gen_range, gen_bool, sample, sample_iter}`,
//! `SeedableRng::seed_from_u64`, `seq::SliceRandom::{choose, shuffle}`
//! and `distributions::{Distribution, Standard}`.
//!
//! Not a cryptographic RNG and not stream-compatible with the real
//! crate — the workspace only needs deterministic, well-mixed streams.

use std::ops::{Range, RangeInclusive};

/// Core entropy source.
pub trait RngCore {
    /// The next 64 uniformly random bits.
    fn next_u64(&mut self) -> u64;

    /// The next 32 uniformly random bits.
    #[inline]
    fn next_u32(&mut self) -> u32 {
        (self.next_u64() >> 32) as u32
    }
}

impl<R: RngCore + ?Sized> RngCore for &mut R {
    #[inline]
    fn next_u64(&mut self) -> u64 {
        (**self).next_u64()
    }
}

/// Seedable construction.
pub trait SeedableRng: Sized {
    /// Derive a full RNG state from a 64-bit seed.
    fn seed_from_u64(seed: u64) -> Self;
}

fn splitmix64(state: &mut u64) -> u64 {
    *state = state.wrapping_add(0x9e3779b97f4a7c15);
    let mut z = *state;
    z = (z ^ (z >> 30)).wrapping_mul(0xbf58476d1ce4e5b9);
    z = (z ^ (z >> 27)).wrapping_mul(0x94d049bb133111eb);
    z ^ (z >> 31)
}

pub mod rngs {
    use super::{splitmix64, RngCore, SeedableRng};

    /// xoshiro256++ — fast, well-mixed, deterministic.
    #[derive(Clone, Debug)]
    pub struct StdRng {
        s: [u64; 4],
    }

    impl SeedableRng for StdRng {
        fn seed_from_u64(seed: u64) -> Self {
            let mut sm = seed;
            let mut s = [0u64; 4];
            for w in &mut s {
                *w = splitmix64(&mut sm);
            }
            // All-zero state is degenerate; splitmix of any seed never
            // produces four zero words, but guard anyway.
            if s == [0; 4] {
                s[0] = 0x9e3779b97f4a7c15;
            }
            StdRng { s }
        }
    }

    impl RngCore for StdRng {
        #[inline]
        fn next_u64(&mut self) -> u64 {
            let result = (self.s[0].wrapping_add(self.s[3]))
                .rotate_left(23)
                .wrapping_add(self.s[0]);
            let t = self.s[1] << 17;
            self.s[2] ^= self.s[0];
            self.s[3] ^= self.s[1];
            self.s[1] ^= self.s[2];
            self.s[0] ^= self.s[3];
            self.s[2] ^= t;
            self.s[3] = self.s[3].rotate_left(45);
            result
        }
    }
}

pub mod distributions {
    use super::RngCore;

    /// A distribution over values of type `T`.
    pub trait Distribution<T> {
        /// Draw one value.
        fn sample<R: RngCore + ?Sized>(&self, rng: &mut R) -> T;
    }

    /// The "natural" uniform distribution of a primitive type: full
    /// range for integers, `[0, 1)` for floats.
    #[derive(Clone, Copy, Debug, Default)]
    pub struct Standard;

    impl Distribution<u64> for Standard {
        #[inline]
        fn sample<R: RngCore + ?Sized>(&self, rng: &mut R) -> u64 {
            rng.next_u64()
        }
    }

    impl Distribution<u32> for Standard {
        #[inline]
        fn sample<R: RngCore + ?Sized>(&self, rng: &mut R) -> u32 {
            rng.next_u32()
        }
    }

    impl Distribution<bool> for Standard {
        #[inline]
        fn sample<R: RngCore + ?Sized>(&self, rng: &mut R) -> bool {
            rng.next_u64() & 1 == 1
        }
    }

    impl Distribution<f64> for Standard {
        #[inline]
        fn sample<R: RngCore + ?Sized>(&self, rng: &mut R) -> f64 {
            // 53 mantissa bits → uniform in [0, 1).
            (rng.next_u64() >> 11) as f64 * (1.0 / (1u64 << 53) as f64)
        }
    }

    impl Distribution<f32> for Standard {
        #[inline]
        fn sample<R: RngCore + ?Sized>(&self, rng: &mut R) -> f32 {
            (rng.next_u32() >> 8) as f32 * (1.0 / (1u32 << 24) as f32)
        }
    }

    /// Iterator over draws from a distribution (see `Rng::sample_iter`).
    pub struct DistIter<D, R, T> {
        pub(crate) dist: D,
        pub(crate) rng: R,
        pub(crate) _marker: std::marker::PhantomData<T>,
    }

    impl<D, R, T> Iterator for DistIter<D, R, T>
    where
        D: Distribution<T>,
        R: RngCore,
    {
        type Item = T;
        fn next(&mut self) -> Option<T> {
            Some(self.dist.sample(&mut self.rng))
        }
    }
}

use distributions::{DistIter, Distribution, Standard};

/// A type with a natural uniform sampling range (`gen_range` support).
pub trait SampleUniform: Sized {
    /// Uniform draw from `[lo, hi)`.
    fn sample_half_open<R: RngCore + ?Sized>(rng: &mut R, lo: Self, hi: Self) -> Self;
    /// Uniform draw from `[lo, hi]`.
    fn sample_inclusive<R: RngCore + ?Sized>(rng: &mut R, lo: Self, hi: Self) -> Self;
}

/// Shared integer-draw core: `draw % span` with `span` as u128.
///
/// The hot case — `span` fits in u64, i.e. every range except the full
/// 128-bit-wide `i64`/`u64` spans — runs in pure 64-bit arithmetic:
/// `x % s` for `x: u64, s: u64` is identical whether computed in u64 or
/// u128, so this changes no draw values, only the cost (u128 modulo is
/// several times a u64 `div`; `gen_range` is the single hottest RNG op
/// in the simulators).
#[inline]
fn draw_mod_span<R: RngCore + ?Sized>(rng: &mut R, span: u128) -> u128 {
    let x = rng.next_u64();
    if let Ok(s) = u64::try_from(span) {
        (x % s) as u128
    } else {
        // span > u64::MAX (e.g. i64::MIN..=i64::MAX): one u64 never
        // reaches the modulus, so the draw passes through unchanged —
        // same result the u128 modulo produced.
        x as u128
    }
}

macro_rules! impl_sample_uniform_int {
    ($($t:ty),*) => {$(
        impl SampleUniform for $t {
            #[inline]
            fn sample_half_open<R: RngCore + ?Sized>(rng: &mut R, lo: Self, hi: Self) -> Self {
                assert!(lo < hi, "gen_range: empty range");
                let span = (hi as i128 - lo as i128) as u128;
                let draw = draw_mod_span(rng, span) as i128;
                (lo as i128 + draw) as $t
            }
            #[inline]
            fn sample_inclusive<R: RngCore + ?Sized>(rng: &mut R, lo: Self, hi: Self) -> Self {
                assert!(lo <= hi, "gen_range: empty range");
                let span = (hi as i128 - lo as i128) as u128 + 1;
                let draw = draw_mod_span(rng, span) as i128;
                (lo as i128 + draw) as $t
            }
        }
    )*};
}
impl_sample_uniform_int!(u8, u16, u32, u64, usize, i8, i16, i32, i64, isize);

macro_rules! impl_sample_uniform_float {
    ($($t:ty),*) => {$(
        impl SampleUniform for $t {
            #[inline]
            fn sample_half_open<R: RngCore + ?Sized>(rng: &mut R, lo: Self, hi: Self) -> Self {
                assert!(lo < hi, "gen_range: empty range");
                let u: $t = Standard.sample(rng);
                lo + u * (hi - lo)
            }
            #[inline]
            fn sample_inclusive<R: RngCore + ?Sized>(rng: &mut R, lo: Self, hi: Self) -> Self {
                assert!(lo <= hi, "gen_range: empty range");
                let u: $t = Standard.sample(rng);
                lo + u * (hi - lo)
            }
        }
    )*};
}
impl_sample_uniform_float!(f32, f64);

/// A range argument accepted by [`Rng::gen_range`].
pub trait SampleRange<T> {
    /// Draw a uniform value from the range.
    fn sample_from<R: RngCore + ?Sized>(self, rng: &mut R) -> T;
}

impl<T: SampleUniform> SampleRange<T> for Range<T> {
    #[inline]
    fn sample_from<R: RngCore + ?Sized>(self, rng: &mut R) -> T {
        T::sample_half_open(rng, self.start, self.end)
    }
}

impl<T: SampleUniform + Copy> SampleRange<T> for RangeInclusive<T> {
    #[inline]
    fn sample_from<R: RngCore + ?Sized>(self, rng: &mut R) -> T {
        T::sample_inclusive(rng, *self.start(), *self.end())
    }
}

/// User-facing random value generation, blanket-implemented for every
/// [`RngCore`].
pub trait Rng: RngCore {
    /// Sample via the [`Standard`] distribution.
    #[inline]
    fn gen<T>(&mut self) -> T
    where
        Standard: Distribution<T>,
    {
        Standard.sample(self)
    }

    /// Uniform draw from a range.
    #[inline]
    fn gen_range<T, S: SampleRange<T>>(&mut self, range: S) -> T {
        range.sample_from(self)
    }

    /// Bernoulli draw.
    #[inline]
    fn gen_bool(&mut self, p: f64) -> bool {
        assert!((0.0..=1.0).contains(&p), "gen_bool: p out of [0,1]");
        let u: f64 = Standard.sample(self);
        u < p
    }

    /// Draw from an arbitrary distribution.
    #[inline]
    fn sample<T, D: Distribution<T>>(&mut self, dist: D) -> T {
        dist.sample(self)
    }

    /// Endless iterator of draws from a distribution.
    fn sample_iter<T, D: Distribution<T>>(self, dist: D) -> DistIter<D, Self, T>
    where
        Self: Sized,
    {
        DistIter {
            dist,
            rng: self,
            _marker: std::marker::PhantomData,
        }
    }
}

impl<R: RngCore + ?Sized> Rng for R {}

pub mod seq {
    use super::{Rng, RngCore};

    /// Random selection and shuffling over slices.
    pub trait SliceRandom {
        /// Element type.
        type Item;

        /// A uniformly random element, `None` when empty.
        fn choose<R: RngCore + ?Sized>(&self, rng: &mut R) -> Option<&Self::Item>;

        /// Fisher–Yates shuffle in place.
        fn shuffle<R: RngCore + ?Sized>(&mut self, rng: &mut R);
    }

    impl<T> SliceRandom for [T] {
        type Item = T;

        #[inline]
        fn choose<R: RngCore + ?Sized>(&self, rng: &mut R) -> Option<&T> {
            if self.is_empty() {
                None
            } else {
                let i = rng.gen_range(0..self.len());
                self.get(i)
            }
        }

        fn shuffle<R: RngCore + ?Sized>(&mut self, rng: &mut R) {
            for i in (1..self.len()).rev() {
                let j = rng.gen_range(0..=i);
                self.swap(i, j);
            }
        }
    }
}

#[cfg(test)]
mod tests {
    use super::rngs::StdRng;
    use super::seq::SliceRandom;
    use super::{Rng, SeedableRng};

    #[test]
    fn deterministic_and_mixed() {
        let mut a = StdRng::seed_from_u64(7);
        let mut b = StdRng::seed_from_u64(7);
        let xs: Vec<u64> = (0..8).map(|_| a.next_u64()).collect();
        let ys: Vec<u64> = (0..8).map(|_| b.next_u64()).collect();
        assert_eq!(xs, ys);
        let mut c = StdRng::seed_from_u64(8);
        assert_ne!(xs[0], c.next_u64());
        use super::RngCore;
        let _ = &xs;
    }

    #[test]
    fn ranges_stay_in_bounds() {
        let mut rng = StdRng::seed_from_u64(1);
        for _ in 0..1000 {
            let x: f64 = rng.gen_range(2.0..5.0);
            assert!((2.0..5.0).contains(&x));
            let n: i32 = rng.gen_range(1..=3);
            assert!((1..=3).contains(&n));
            let u: f64 = rng.gen();
            assert!((0.0..1.0).contains(&u));
        }
    }

    #[test]
    fn uniform_mean_is_sane() {
        let mut rng = StdRng::seed_from_u64(2);
        let n = 20_000;
        let mean: f64 = (0..n).map(|_| rng.gen::<f64>()).sum::<f64>() / n as f64;
        assert!((mean - 0.5).abs() < 0.01, "mean {mean}");
    }

    #[test]
    fn shuffle_and_choose() {
        let mut rng = StdRng::seed_from_u64(3);
        let mut v: Vec<u32> = (0..50).collect();
        v.shuffle(&mut rng);
        let mut sorted = v.clone();
        sorted.sort_unstable();
        assert_eq!(sorted, (0..50).collect::<Vec<_>>());
        assert!(v.choose(&mut rng).is_some());
        let empty: Vec<u32> = vec![];
        assert!(empty.choose(&mut rng).is_none());
    }
}
