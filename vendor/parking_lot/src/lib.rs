//! Minimal offline replacement for `parking_lot`, backed by `std::sync`
//! with poisoning unwrapped (parking_lot mutexes do not poison).

use std::sync::{self, MutexGuard, RwLockReadGuard, RwLockWriteGuard};

/// Non-poisoning mutex.
#[derive(Debug, Default)]
pub struct Mutex<T> {
    inner: sync::Mutex<T>,
}

impl<T> Mutex<T> {
    /// Wrap a value.
    pub fn new(value: T) -> Self {
        Mutex {
            inner: sync::Mutex::new(value),
        }
    }

    /// Lock, recovering from poisoning like parking_lot would.
    pub fn lock(&self) -> MutexGuard<'_, T> {
        self.inner.lock().unwrap_or_else(|e| e.into_inner())
    }

    /// Consume, returning the inner value.
    pub fn into_inner(self) -> T {
        self.inner.into_inner().unwrap_or_else(|e| e.into_inner())
    }
}

/// Non-poisoning reader-writer lock.
#[derive(Debug, Default)]
pub struct RwLock<T> {
    inner: sync::RwLock<T>,
}

impl<T> RwLock<T> {
    /// Wrap a value.
    pub fn new(value: T) -> Self {
        RwLock {
            inner: sync::RwLock::new(value),
        }
    }

    /// Shared lock.
    pub fn read(&self) -> RwLockReadGuard<'_, T> {
        self.inner.read().unwrap_or_else(|e| e.into_inner())
    }

    /// Exclusive lock.
    pub fn write(&self) -> RwLockWriteGuard<'_, T> {
        self.inner.write().unwrap_or_else(|e| e.into_inner())
    }
}
