//! Minimal offline replacement for `serde`, just large enough for this
//! workspace.
//!
//! Instead of the real serde's visitor architecture, serialization goes
//! through a self-describing [`Value`] tree: `Serialize` renders a value
//! into a `Value`, `Deserialize` reads one back. The vendored
//! `serde_json` then prints/parses `Value` as JSON. The derive macros
//! (re-exported from the vendored `serde_derive`) generate
//! field-by-field conversions against this API.

use std::collections::{BTreeMap, HashMap};
use std::fmt;

pub use serde_derive::{Deserialize, Serialize};

/// A self-describing data tree — the interchange format between
/// `Serialize`, `Deserialize` and the vendored `serde_json`.
#[derive(Clone, Debug, PartialEq, Default)]
pub enum Value {
    /// JSON `null`.
    #[default]
    Null,
    /// A boolean.
    Bool(bool),
    /// A signed integer (negative JSON integers).
    I64(i64),
    /// An unsigned integer (non-negative JSON integers).
    U64(u64),
    /// A floating-point number.
    F64(f64),
    /// A string.
    Str(String),
    /// An array.
    Seq(Vec<Value>),
    /// An object; insertion-ordered.
    Map(Vec<(String, Value)>),
}

impl Value {
    /// Look up a key in a `Map` value.
    pub fn get_key(&self, key: &str) -> Option<&Value> {
        match self {
            Value::Map(entries) => entries.iter().find(|(k, _)| k == key).map(|(_, v)| v),
            _ => None,
        }
    }
}

/// Serialization/deserialization error with a human-readable message.
#[derive(Clone, Debug)]
pub struct Error {
    msg: String,
}

impl Error {
    /// Construct from any displayable message.
    pub fn custom(msg: impl fmt::Display) -> Self {
        Error {
            msg: msg.to_string(),
        }
    }
}

impl fmt::Display for Error {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        write!(f, "{}", self.msg)
    }
}

impl std::error::Error for Error {}

/// Serialize into a [`Value`] tree.
pub trait Serialize {
    /// Render `self` as a `Value`.
    fn to_value(&self) -> Value;
}

/// Deserialize from a [`Value`] tree.
pub trait Deserialize: Sized {
    /// Read `Self` back out of a `Value`.
    fn from_value(v: &Value) -> Result<Self, Error>;
}

/// Compatibility alias namespace mirroring `serde::de`.
pub mod de {
    /// Owned deserialization — blanket-implemented for every
    /// [`Deserialize`](crate::Deserialize) type.
    pub trait DeserializeOwned: crate::Deserialize {}
    impl<T: crate::Deserialize> DeserializeOwned for T {}
}

/// Fetch and deserialize a named field of a `Map` value (derive helper).
pub fn get_field<T: Deserialize>(v: &Value, name: &str) -> Result<T, Error> {
    match v.get_key(name) {
        Some(inner) => T::from_value(inner),
        None => Err(Error::custom(format!("missing field `{name}`"))),
    }
}

/// Fetch a named field, falling back to `Default::default()` when the
/// key is absent (`#[serde(default)]` derive helper).
pub fn get_field_or_default<T: Deserialize + Default>(v: &Value, name: &str) -> Result<T, Error> {
    match v.get_key(name) {
        Some(inner) => T::from_value(inner),
        None => Ok(T::default()),
    }
}

/// Fetch the `i`-th element of a `Seq` value (derive helper).
pub fn seq_item(v: &Value, i: usize) -> Result<&Value, Error> {
    match v {
        Value::Seq(items) => items
            .get(i)
            .ok_or_else(|| Error::custom(format!("missing tuple element {i}"))),
        _ => Err(Error::custom("expected sequence")),
    }
}

/// Split an externally-tagged enum value into `(variant_name, inner)`
/// (derive helper). Unit variants arrive as plain strings.
pub fn variant_parts(v: &Value) -> Result<(&str, &Value), Error> {
    match v {
        Value::Str(s) => Ok((s.as_str(), &Value::Null)),
        Value::Map(entries) if entries.len() == 1 => Ok((entries[0].0.as_str(), &entries[0].1)),
        _ => Err(Error::custom("expected enum representation")),
    }
}

// ---------------------------------------------------------------------
// Primitive impls
// ---------------------------------------------------------------------

impl Serialize for Value {
    fn to_value(&self) -> Value {
        self.clone()
    }
}

impl Deserialize for Value {
    fn from_value(v: &Value) -> Result<Self, Error> {
        Ok(v.clone())
    }
}

impl Serialize for bool {
    fn to_value(&self) -> Value {
        Value::Bool(*self)
    }
}

impl Deserialize for bool {
    fn from_value(v: &Value) -> Result<Self, Error> {
        match v {
            Value::Bool(b) => Ok(*b),
            _ => Err(Error::custom("expected bool")),
        }
    }
}

macro_rules! impl_unsigned {
    ($($t:ty),*) => {$(
        impl Serialize for $t {
            fn to_value(&self) -> Value {
                Value::U64(*self as u64)
            }
        }
        impl Deserialize for $t {
            fn from_value(v: &Value) -> Result<Self, Error> {
                let n = match v {
                    Value::U64(n) => *n,
                    Value::I64(n) if *n >= 0 => *n as u64,
                    Value::F64(f) if *f >= 0.0 && f.fract() == 0.0 => *f as u64,
                    _ => return Err(Error::custom("expected unsigned integer")),
                };
                <$t>::try_from(n).map_err(|_| Error::custom("integer out of range"))
            }
        }
    )*};
}
impl_unsigned!(u8, u16, u32, u64, usize);

macro_rules! impl_signed {
    ($($t:ty),*) => {$(
        impl Serialize for $t {
            fn to_value(&self) -> Value {
                let n = *self as i64;
                if n >= 0 {
                    Value::U64(n as u64)
                } else {
                    Value::I64(n)
                }
            }
        }
        impl Deserialize for $t {
            fn from_value(v: &Value) -> Result<Self, Error> {
                let n = match v {
                    Value::I64(n) => *n,
                    Value::U64(n) if *n <= i64::MAX as u64 => *n as i64,
                    Value::F64(f) if f.fract() == 0.0 => *f as i64,
                    _ => return Err(Error::custom("expected integer")),
                };
                <$t>::try_from(n).map_err(|_| Error::custom("integer out of range"))
            }
        }
    )*};
}
impl_signed!(i8, i16, i32, i64, isize);

macro_rules! impl_float {
    ($($t:ty),*) => {$(
        impl Serialize for $t {
            fn to_value(&self) -> Value {
                Value::F64(*self as f64)
            }
        }
        impl Deserialize for $t {
            fn from_value(v: &Value) -> Result<Self, Error> {
                match v {
                    Value::F64(f) => Ok(*f as $t),
                    Value::I64(n) => Ok(*n as $t),
                    Value::U64(n) => Ok(*n as $t),
                    _ => Err(Error::custom("expected number")),
                }
            }
        }
    )*};
}
impl_float!(f32, f64);

impl Serialize for String {
    fn to_value(&self) -> Value {
        Value::Str(self.clone())
    }
}

impl Deserialize for String {
    fn from_value(v: &Value) -> Result<Self, Error> {
        match v {
            Value::Str(s) => Ok(s.clone()),
            _ => Err(Error::custom("expected string")),
        }
    }
}

impl Serialize for str {
    fn to_value(&self) -> Value {
        Value::Str(self.to_owned())
    }
}

impl<T: Serialize + ?Sized> Serialize for &T {
    fn to_value(&self) -> Value {
        (**self).to_value()
    }
}

impl<T: Serialize> Serialize for Option<T> {
    fn to_value(&self) -> Value {
        match self {
            Some(x) => x.to_value(),
            None => Value::Null,
        }
    }
}

impl<T: Deserialize> Deserialize for Option<T> {
    fn from_value(v: &Value) -> Result<Self, Error> {
        match v {
            Value::Null => Ok(None),
            other => Ok(Some(T::from_value(other)?)),
        }
    }
}

impl<T: Serialize> Serialize for Vec<T> {
    fn to_value(&self) -> Value {
        Value::Seq(self.iter().map(Serialize::to_value).collect())
    }
}

impl<T: Deserialize> Deserialize for Vec<T> {
    fn from_value(v: &Value) -> Result<Self, Error> {
        match v {
            Value::Seq(items) => items.iter().map(T::from_value).collect(),
            _ => Err(Error::custom("expected sequence")),
        }
    }
}

impl<T: Serialize> Serialize for [T] {
    fn to_value(&self) -> Value {
        Value::Seq(self.iter().map(Serialize::to_value).collect())
    }
}

impl<T: Serialize, const N: usize> Serialize for [T; N] {
    fn to_value(&self) -> Value {
        Value::Seq(self.iter().map(Serialize::to_value).collect())
    }
}

impl<T: Deserialize + fmt::Debug, const N: usize> Deserialize for [T; N] {
    fn from_value(v: &Value) -> Result<Self, Error> {
        let items: Vec<T> = Vec::from_value(v)?;
        <[T; N]>::try_from(items).map_err(|_| Error::custom("wrong array length"))
    }
}

macro_rules! impl_tuple {
    ($(($($name:ident : $idx:tt),+)),+) => {$(
        impl<$($name: Serialize),+> Serialize for ($($name,)+) {
            fn to_value(&self) -> Value {
                Value::Seq(vec![$(self.$idx.to_value()),+])
            }
        }
        impl<$($name: Deserialize),+> Deserialize for ($($name,)+) {
            fn from_value(v: &Value) -> Result<Self, Error> {
                Ok(($($name::from_value(seq_item(v, $idx)?)?,)+))
            }
        }
    )+};
}
impl_tuple!((A: 0), (A: 0, B: 1), (A: 0, B: 1, C: 2), (A: 0, B: 1, C: 2, D: 3));

impl<V: Serialize> Serialize for BTreeMap<String, V> {
    fn to_value(&self) -> Value {
        Value::Map(
            self.iter()
                .map(|(k, v)| (k.clone(), v.to_value()))
                .collect(),
        )
    }
}

impl<V: Deserialize> Deserialize for BTreeMap<String, V> {
    fn from_value(v: &Value) -> Result<Self, Error> {
        match v {
            Value::Map(entries) => entries
                .iter()
                .map(|(k, v)| Ok((k.clone(), V::from_value(v)?)))
                .collect(),
            _ => Err(Error::custom("expected map")),
        }
    }
}

impl<V: Serialize> Serialize for HashMap<String, V> {
    fn to_value(&self) -> Value {
        Value::Map(
            self.iter()
                .map(|(k, v)| (k.clone(), v.to_value()))
                .collect(),
        )
    }
}

impl<V: Deserialize> Deserialize for HashMap<String, V> {
    fn from_value(v: &Value) -> Result<Self, Error> {
        match v {
            Value::Map(entries) => entries
                .iter()
                .map(|(k, v)| Ok((k.clone(), V::from_value(v)?)))
                .collect(),
            _ => Err(Error::custom("expected map")),
        }
    }
}
