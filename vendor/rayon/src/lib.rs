//! Minimal offline replacement for `rayon`, covering the shapes this
//! workspace uses: `par_iter()` / `par_chunks()` on slices followed by
//! `map(...)` and an order-preserving `collect()`.
//!
//! Execution model: eager, not work-stealing. The input is split into
//! one contiguous span per worker thread (`std::thread::scope`), each
//! worker maps its span, and the spans are stitched back together in
//! input order — so results are **always** in the sequential order and
//! independent of thread count. `RAYON_NUM_THREADS` caps the worker
//! count like the real crate.
//!
//! # Why this does NOT reuse `lightor_server::pool::ThreadPool`
//!
//! The workspace now has a general bounded worker pool (built for the
//! HTTP front end's accept backlog), and re-pointing this stub's
//! per-call `thread::scope` spawn at it looks like an obvious win for
//! small fan-outs. It was considered and rejected, for two reasons
//! that only a real work-stealing scheduler fixes:
//!
//! 1. **Nested parallel regions deadlock a fixed pool.** Regions here
//!    nest: `lightor_eval::harness::par_red_dots` fans out over videos
//!    and each video's `HighlightInitializer` scoring fans out again
//!    over window chunks. On a fixed N-worker pool, N outer closures
//!    occupy every worker while blocking on inner closures that can
//!    never be scheduled. Real rayon escapes this because a blocked
//!    worker *steals* and runs its own children; a queue-only pool
//!    cannot without reimplementing that scheduler.
//! 2. **Borrowed closures cannot cross a `'static` queue safely.**
//!    This stub's closures borrow the caller's stack (slices, `&f`),
//!    which `thread::scope` makes sound. A long-lived pool queue
//!    requires `'static` jobs, so shipping borrows through it would
//!    need lifetime-erasing `unsafe` plus a completion latch — the
//!    exact machinery `thread::scope` already provides, minus the
//!    proof obligations.
//!
//! So per-call scoped spawn stays. The measured break-even is
//! unchanged: fan-outs of a few hundred microseconds and up win
//! (`initializer_score_full_video`), and the serving path's small
//! fan-outs (`campaign_run_task` at ~5 µs) stay near-flat on 1 CPU —
//! acceptable until a registry-access build swaps in real rayon.

use std::num::NonZeroUsize;

/// Number of worker threads to use.
///
/// The `RAYON_NUM_THREADS` override is re-read on every call (tests use
/// it as a live knob), but the machine's own parallelism is cached:
/// `available_parallelism()` performs syscalls/cgroup reads on Linux,
/// which would otherwise dominate short parallel regions.
pub fn current_num_threads() -> usize {
    if let Ok(v) = std::env::var("RAYON_NUM_THREADS") {
        if let Ok(n) = v.parse::<usize>() {
            if n >= 1 {
                return n;
            }
        }
    }
    static MACHINE: std::sync::OnceLock<usize> = std::sync::OnceLock::new();
    *MACHINE.get_or_init(|| {
        std::thread::available_parallelism()
            .map(NonZeroUsize::get)
            .unwrap_or(1)
    })
}

/// A pending parallel iterator over slice elements.
pub struct ParIter<'a, T> {
    items: &'a [T],
}

/// A pending parallel iterator over contiguous slice chunks.
pub struct ParChunks<'a, T> {
    items: &'a [T],
    size: usize,
}

/// A mapped parallel iterator, ready to collect.
pub struct ParMap<I, F> {
    inner: I,
    f: F,
}

impl<'a, T: Sync> ParIter<'a, T> {
    /// Map each element.
    pub fn map<R, F>(self, f: F) -> ParMap<Self, F>
    where
        R: Send,
        F: Fn(&'a T) -> R + Sync,
    {
        ParMap { inner: self, f }
    }

    /// Number of elements.
    pub fn len(&self) -> usize {
        self.items.len()
    }

    /// True when empty.
    pub fn is_empty(&self) -> bool {
        self.items.is_empty()
    }
}

impl<'a, T: Sync> ParChunks<'a, T> {
    /// Map each chunk.
    pub fn map<R, F>(self, f: F) -> ParMap<Self, F>
    where
        R: Send,
        F: Fn(&'a [T]) -> R + Sync,
    {
        ParMap { inner: self, f }
    }
}

impl<'a, T, R, F> ParMap<ParIter<'a, T>, F>
where
    T: Sync,
    R: Send,
    F: Fn(&'a T) -> R + Sync,
{
    /// Run the map and collect results in input order.
    pub fn collect<C: FromIterator<R>>(self) -> C {
        let items = self.inner.items;
        let f = self.f;
        // The closure receives `&'a T` (not a reborrow), matching rayon.
        let mapped = parallel_map_indices(items.len(), |i| f(&items[i]));
        mapped.into_iter().collect()
    }
}

impl<'a, T, R, F> ParMap<ParChunks<'a, T>, F>
where
    T: Sync,
    R: Send,
    F: Fn(&'a [T]) -> R + Sync,
{
    /// Run the map and collect chunk results in input order.
    pub fn collect<C: FromIterator<R>>(self) -> C {
        let items = self.inner.items;
        let size = self.inner.size.max(1);
        let f = self.f;
        let n_chunks = items.len().div_ceil(size);
        let mapped = parallel_map_indices(n_chunks, |i| {
            let lo = i * size;
            let hi = (lo + size).min(items.len());
            f(&items[lo..hi])
        });
        mapped.into_iter().collect()
    }
}

/// Order-preserving parallel map over an index range.
pub fn parallel_map_indices<R, F>(n: usize, f: F) -> Vec<R>
where
    R: Send,
    F: Fn(usize) -> R + Sync,
{
    let threads = current_num_threads().clamp(1, n.max(1));
    if threads <= 1 || n <= 1 {
        return (0..n).map(f).collect();
    }
    let chunk = n.div_ceil(threads);
    let mut out: Vec<Vec<R>> = Vec::with_capacity(threads);
    std::thread::scope(|scope| {
        let handles: Vec<_> = (0..threads)
            .map(|t| {
                let f = &f;
                scope.spawn(move || {
                    let lo = t * chunk;
                    let hi = ((t + 1) * chunk).min(n);
                    (lo..hi).map(f).collect::<Vec<R>>()
                })
            })
            .collect();
        for h in handles {
            out.push(h.join().expect("rayon stub worker panicked"));
        }
    });
    out.into_iter().flatten().collect()
}

/// `par_iter()` on slice-like containers.
pub trait IntoParallelRefIterator<'a> {
    /// Element type.
    type Item: Sync + 'a;

    /// A parallel iterator over `&Self::Item`.
    fn par_iter(&'a self) -> ParIter<'a, Self::Item>;
}

impl<'a, T: Sync + 'a> IntoParallelRefIterator<'a> for [T] {
    type Item = T;
    fn par_iter(&'a self) -> ParIter<'a, T> {
        ParIter { items: self }
    }
}

impl<'a, T: Sync + 'a> IntoParallelRefIterator<'a> for Vec<T> {
    type Item = T;
    fn par_iter(&'a self) -> ParIter<'a, T> {
        ParIter { items: self }
    }
}

/// `par_chunks()` on slices.
pub trait ParallelSlice<T: Sync> {
    /// A parallel iterator over contiguous chunks.
    fn par_chunks(&self, size: usize) -> ParChunks<'_, T>;
}

impl<T: Sync> ParallelSlice<T> for [T] {
    fn par_chunks(&self, size: usize) -> ParChunks<'_, T> {
        ParChunks { items: self, size }
    }
}

pub mod prelude {
    pub use crate::{IntoParallelRefIterator, ParallelSlice};
}

#[cfg(test)]
mod tests {
    use super::prelude::*;

    #[test]
    fn map_preserves_order() {
        let xs: Vec<u64> = (0..1000).collect();
        let doubled: Vec<u64> = xs.par_iter().map(|x| x * 2).collect();
        assert_eq!(doubled, (0..1000).map(|x| x * 2).collect::<Vec<_>>());
    }

    #[test]
    fn chunks_cover_everything_in_order() {
        let xs: Vec<u32> = (0..103).collect();
        let sums: Vec<Vec<u32>> = xs.par_chunks(10).map(|c| c.to_vec()).collect();
        let flat: Vec<u32> = sums.into_iter().flatten().collect();
        assert_eq!(flat, xs);
    }

    #[test]
    fn empty_input() {
        let xs: Vec<u32> = vec![];
        let out: Vec<u32> = xs.par_iter().map(|x| *x).collect();
        assert!(out.is_empty());
    }
}
