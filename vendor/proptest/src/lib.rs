//! Minimal offline replacement for `proptest`.
//!
//! Supports the subset this workspace uses: the `proptest!` macro with an
//! optional `#![proptest_config(...)]` header, range strategies over
//! numeric types, `any::<T>()`, tuple strategies, string-literal
//! strategies (interpreted loosely — random unicode strings with the
//! requested repetition bounds), `proptest::collection::vec`, and the
//! `prop_assert*` macros.
//!
//! There is **no shrinking**: failures report the generated inputs via
//! the panic message instead. Case generation is deterministic per test
//! name, so failures reproduce.

pub mod strategy {
    use crate::test_runner::TestRng;

    /// A generator of values of type `Value`.
    pub trait Strategy {
        /// The generated type.
        type Value;
        /// Draw one value.
        fn sample(&self, rng: &mut TestRng) -> Self::Value;
    }

    /// Strategy returning a constant.
    #[derive(Clone, Copy, Debug)]
    pub struct Just<T: Clone>(pub T);

    impl<T: Clone> Strategy for Just<T> {
        type Value = T;
        fn sample(&self, _rng: &mut TestRng) -> T {
            self.0.clone()
        }
    }

    macro_rules! impl_range_strategy {
        ($($t:ty),*) => {$(
            impl Strategy for std::ops::Range<$t> {
                type Value = $t;
                fn sample(&self, rng: &mut TestRng) -> $t {
                    rand::Rng::gen_range(&mut rng.0, self.clone())
                }
            }
            impl Strategy for std::ops::RangeInclusive<$t> {
                type Value = $t;
                fn sample(&self, rng: &mut TestRng) -> $t {
                    rand::Rng::gen_range(&mut rng.0, self.clone())
                }
            }
        )*};
    }
    impl_range_strategy!(u8, u16, u32, u64, usize, i8, i16, i32, i64, isize, f32, f64);

    macro_rules! impl_tuple_strategy {
        ($(($($name:ident : $idx:tt),+)),+) => {$(
            impl<$($name: Strategy),+> Strategy for ($($name,)+) {
                type Value = ($($name::Value,)+);
                fn sample(&self, rng: &mut TestRng) -> Self::Value {
                    ($(self.$idx.sample(rng),)+)
                }
            }
        )+};
    }
    impl_tuple_strategy!(
        (A: 0, B: 1),
        (A: 0, B: 1, C: 2),
        (A: 0, B: 1, C: 2, D: 3)
    );

    /// String-literal strategies: the pattern is treated as "any
    /// reasonable unicode string", honouring only a trailing `{lo,hi}`
    /// repetition count if present (e.g. `"\\PC{0,64}"`).
    impl Strategy for &str {
        type Value = String;
        fn sample(&self, rng: &mut TestRng) -> String {
            let (lo, hi) = parse_repetition(self).unwrap_or((0, 32));
            let len = rand::Rng::gen_range(&mut rng.0, lo..=hi);
            (0..len)
                .map(|_| {
                    // Mix of ASCII and a few multi-byte chars.
                    match rand::Rng::gen_range(&mut rng.0, 0u32..10) {
                        0 => '∞',
                        1 => 'λ',
                        2 => '中',
                        _ => {
                            let c = rand::Rng::gen_range(&mut rng.0, 0x20u32..0x7f);
                            char::from_u32(c).unwrap_or('x')
                        }
                    }
                })
                .collect()
        }
    }

    fn parse_repetition(pattern: &str) -> Option<(usize, usize)> {
        let open = pattern.rfind('{')?;
        let close = pattern.rfind('}')?;
        let body = pattern.get(open + 1..close)?;
        let (lo, hi) = body.split_once(',')?;
        Some((lo.trim().parse().ok()?, hi.trim().parse().ok()?))
    }
}

pub mod arbitrary {
    use crate::strategy::Strategy;
    use crate::test_runner::TestRng;

    /// Types with a canonical "any value" strategy.
    pub trait Arbitrary: Sized {
        /// Draw an arbitrary value.
        fn arbitrary(rng: &mut TestRng) -> Self;
    }

    macro_rules! impl_arbitrary_uint {
        ($($t:ty),*) => {$(
            impl Arbitrary for $t {
                fn arbitrary(rng: &mut TestRng) -> Self {
                    rng.next_bits() as $t
                }
            }
        )*};
    }
    impl_arbitrary_uint!(u8, u16, u32, u64, usize);

    macro_rules! impl_arbitrary_int {
        ($($t:ty),*) => {$(
            impl Arbitrary for $t {
                fn arbitrary(rng: &mut TestRng) -> Self {
                    rng.next_bits() as $t
                }
            }
        )*};
    }
    impl_arbitrary_int!(i8, i16, i32, i64, isize);

    impl Arbitrary for bool {
        fn arbitrary(rng: &mut TestRng) -> Self {
            rng.next_bits() & 1 == 1
        }
    }

    impl Arbitrary for f64 {
        fn arbitrary(rng: &mut TestRng) -> Self {
            // Finite floats only — mirrors proptest's default for f64
            // closely enough for these tests.
            f64::from_bits(rng.next_bits() % (0x7ff0u64 << 48))
        }
    }

    /// The `any::<T>()` strategy.
    #[derive(Clone, Copy, Debug, Default)]
    pub struct Any<T>(std::marker::PhantomData<T>);

    impl<T: Arbitrary> Strategy for Any<T> {
        type Value = T;
        fn sample(&self, rng: &mut TestRng) -> T {
            T::arbitrary(rng)
        }
    }

    /// Strategy for any value of `T`.
    pub fn any<T: Arbitrary>() -> Any<T> {
        Any(std::marker::PhantomData)
    }
}

pub mod collection {
    use crate::strategy::Strategy;
    use crate::test_runner::TestRng;

    /// Accepted size arguments for [`vec`].
    #[derive(Clone, Debug)]
    pub struct SizeRange {
        lo: usize,
        hi: usize,
    }

    impl From<std::ops::Range<usize>> for SizeRange {
        fn from(r: std::ops::Range<usize>) -> Self {
            SizeRange {
                lo: r.start,
                hi: r.end.saturating_sub(1),
            }
        }
    }

    impl From<std::ops::RangeInclusive<usize>> for SizeRange {
        fn from(r: std::ops::RangeInclusive<usize>) -> Self {
            SizeRange {
                lo: *r.start(),
                hi: *r.end(),
            }
        }
    }

    impl From<usize> for SizeRange {
        fn from(n: usize) -> Self {
            SizeRange { lo: n, hi: n }
        }
    }

    /// Strategy generating vectors of values from an element strategy.
    #[derive(Clone, Debug)]
    pub struct VecStrategy<S> {
        element: S,
        size: SizeRange,
    }

    impl<S: Strategy> Strategy for VecStrategy<S> {
        type Value = Vec<S::Value>;
        fn sample(&self, rng: &mut TestRng) -> Vec<S::Value> {
            let len = rand::Rng::gen_range(&mut rng.0, self.size.lo..=self.size.hi);
            (0..len).map(|_| self.element.sample(rng)).collect()
        }
    }

    /// `proptest::collection::vec(element, size)`.
    pub fn vec<S: Strategy>(element: S, size: impl Into<SizeRange>) -> VecStrategy<S> {
        VecStrategy {
            element,
            size: size.into(),
        }
    }
}

pub mod test_runner {
    use rand::rngs::StdRng;
    use rand::{RngCore, SeedableRng};

    /// Per-test deterministic RNG.
    #[derive(Clone, Debug)]
    pub struct TestRng(pub StdRng);

    impl TestRng {
        /// Seeded from the test's name so failures reproduce run to run.
        pub fn deterministic(name: &str) -> Self {
            let mut h: u64 = 0xcbf29ce484222325;
            for b in name.bytes() {
                h ^= u64::from(b);
                h = h.wrapping_mul(0x100000001b3);
            }
            TestRng(StdRng::seed_from_u64(h))
        }

        /// Raw 64 random bits.
        pub fn next_bits(&mut self) -> u64 {
            self.0.next_u64()
        }
    }

    /// Test-run configuration (`#![proptest_config(...)]`).
    #[derive(Clone, Copy, Debug)]
    pub struct ProptestConfig {
        /// Number of generated cases per test.
        pub cases: u32,
    }

    impl ProptestConfig {
        /// Config with an explicit case count.
        pub fn with_cases(cases: u32) -> Self {
            ProptestConfig { cases }
        }
    }

    impl Default for ProptestConfig {
        fn default() -> Self {
            ProptestConfig { cases: 64 }
        }
    }
}

pub mod prelude {
    pub use crate::arbitrary::any;
    pub use crate::strategy::{Just, Strategy};
    pub use crate::test_runner::ProptestConfig;
    pub use crate::{prop_assert, prop_assert_eq, prop_assert_ne, prop_assume, proptest};
}

/// The body-generating macro. See crate docs for supported forms.
#[macro_export]
macro_rules! proptest {
    (#![proptest_config($cfg:expr)] $($rest:tt)*) => {
        $crate::__proptest_impl! { ($cfg); $($rest)* }
    };
    ($($rest:tt)*) => {
        $crate::__proptest_impl! { ($crate::test_runner::ProptestConfig::default()); $($rest)* }
    };
}

#[doc(hidden)]
#[macro_export]
macro_rules! __proptest_impl {
    (($cfg:expr); $( $(#[$meta:meta])* fn $name:ident($($arg:ident in $strat:expr),+ $(,)?) $body:block )*) => {
        $(
            $(#[$meta])*
            fn $name() {
                let __config = $cfg;
                let mut __rng = $crate::test_runner::TestRng::deterministic(stringify!($name));
                for __case in 0..__config.cases {
                    $(let $arg = $crate::strategy::Strategy::sample(&($strat), &mut __rng);)+
                    // Report inputs on failure in lieu of shrinking.
                    let __inputs = {
                        let mut __s = format!("case {} of {}:", __case, stringify!($name));
                        $(__s.push_str(&format!(" {} = {:?};", stringify!($arg), &$arg));)+
                        __s
                    };
                    let __result = std::panic::catch_unwind(std::panic::AssertUnwindSafe(|| { $body }));
                    if let Err(err) = __result {
                        eprintln!("proptest failure: {}", __inputs);
                        std::panic::resume_unwind(err);
                    }
                }
            }
        )*
    };
}

/// `prop_assert!` — plain assert (no shrinking machinery).
#[macro_export]
macro_rules! prop_assert {
    ($($tt:tt)*) => { assert!($($tt)*) };
}

/// `prop_assert_eq!`.
#[macro_export]
macro_rules! prop_assert_eq {
    ($($tt:tt)*) => { assert_eq!($($tt)*) };
}

/// `prop_assert_ne!`.
#[macro_export]
macro_rules! prop_assert_ne {
    ($($tt:tt)*) => { assert_ne!($($tt)*) };
}

/// `prop_assume!` — skips the rest of the case when unmet. Implemented
/// as an early panic-free return via a labelled loop is not possible in
/// a macro this simple, so it simply asserts; workspace code does not
/// use it.
#[macro_export]
macro_rules! prop_assume {
    ($cond:expr) => {
        if !$cond {
            continue;
        }
    };
}
