//! Minimal hand-rolled replacement for the real `serde_derive`.
//!
//! The workspace vendors a small serde whose `Serialize`/`Deserialize`
//! traits are defined over a self-describing [`Value`] tree, so the derive
//! only has to generate straightforward field-by-field conversions. The
//! parser below walks the raw `TokenStream` (no `syn`/`quote` in this
//! offline environment) and supports exactly the shapes the workspace
//! uses: named-field structs, tuple structs, unit enums, and data enums —
//! plus the `#[serde(skip)]`, `#[serde(default)]`, `#[serde(transparent)]`
//! and `#[serde(tag = "...", rename_all = "snake_case")]` attributes.

use proc_macro::{Delimiter, TokenStream, TokenTree};

#[derive(Debug, Clone)]
struct Field {
    name: String,
    skip: bool,
    default: bool,
}

#[derive(Debug, Clone)]
enum VariantKind {
    Unit,
    Named(Vec<String>),
    Tuple(usize),
}

#[derive(Debug, Clone)]
struct Variant {
    name: String,
    kind: VariantKind,
}

#[derive(Debug)]
enum Shape {
    NamedStruct(Vec<Field>),
    TupleStruct(usize),
    Enum(Vec<Variant>),
}

#[derive(Debug, Default)]
struct ContainerAttrs {
    transparent: bool,
    tag: Option<String>,
    rename_all_snake: bool,
}

#[derive(Debug)]
struct Input {
    name: String,
    attrs: ContainerAttrs,
    shape: Shape,
}

fn is_punct(tt: &TokenTree, c: char) -> bool {
    matches!(tt, TokenTree::Punct(p) if p.as_char() == c)
}

fn is_ident(tt: &TokenTree, s: &str) -> bool {
    matches!(tt, TokenTree::Ident(i) if i.to_string() == s)
}

/// Collect leading attributes starting at `i`; returns the serde attr
/// bodies (inner text of `#[serde(...)]`) and the index past the attrs.
fn take_attrs(tokens: &[TokenTree], mut i: usize) -> (Vec<String>, usize) {
    let mut serde_attrs = Vec::new();
    while i < tokens.len() && is_punct(&tokens[i], '#') {
        if let Some(TokenTree::Group(g)) = tokens.get(i + 1) {
            if g.delimiter() == Delimiter::Bracket {
                let inner: Vec<TokenTree> = g.stream().into_iter().collect();
                if let Some(first) = inner.first() {
                    if is_ident(first, "serde") {
                        if let Some(TokenTree::Group(body)) = inner.get(1) {
                            serde_attrs.push(body.stream().to_string());
                        }
                    }
                }
                i += 2;
                continue;
            }
        }
        break;
    }
    (serde_attrs, i)
}

fn parse_container_attrs(attr_bodies: &[String]) -> ContainerAttrs {
    let mut out = ContainerAttrs::default();
    for body in attr_bodies {
        if body.contains("transparent") {
            out.transparent = true;
        }
        if body.contains("rename_all") && body.contains("snake_case") {
            out.rename_all_snake = true;
        }
        if let Some(pos) = body.find("tag") {
            // body looks like: tag = "type" , rename_all = "snake_case"
            let rest = &body[pos..];
            if let Some(q0) = rest.find('"') {
                let after = &rest[q0 + 1..];
                if let Some(q1) = after.find('"') {
                    out.tag = Some(after[..q1].to_string());
                }
            }
        }
    }
    out
}

/// Skip a visibility modifier (`pub`, `pub(crate)`, ...) at `i`.
fn skip_vis(tokens: &[TokenTree], mut i: usize) -> usize {
    if i < tokens.len() && is_ident(&tokens[i], "pub") {
        i += 1;
        if let Some(TokenTree::Group(g)) = tokens.get(i) {
            if g.delimiter() == Delimiter::Parenthesis {
                i += 1;
            }
        }
    }
    i
}

/// Advance past a type, stopping at a top-level comma (angle brackets
/// tracked manually since they are not token groups).
fn skip_type(tokens: &[TokenTree], mut i: usize) -> usize {
    let mut angle = 0i32;
    while i < tokens.len() {
        match &tokens[i] {
            TokenTree::Punct(p) if p.as_char() == '<' => angle += 1,
            TokenTree::Punct(p) if p.as_char() == '>' => angle -= 1,
            TokenTree::Punct(p) if p.as_char() == ',' && angle == 0 => break,
            _ => {}
        }
        i += 1;
    }
    i
}

fn parse_named_fields(stream: TokenStream) -> Vec<Field> {
    let tokens: Vec<TokenTree> = stream.into_iter().collect();
    let mut fields = Vec::new();
    let mut i = 0;
    while i < tokens.len() {
        let (attrs, ni) = take_attrs(&tokens, i);
        i = skip_vis(&tokens, ni);
        let name = match tokens.get(i) {
            Some(TokenTree::Ident(id)) => id.to_string(),
            _ => break,
        };
        i += 1;
        assert!(
            matches!(tokens.get(i), Some(t) if is_punct(t, ':')),
            "serde_derive stub: expected `:` after field `{name}`"
        );
        i = skip_type(&tokens, i + 1);
        if i < tokens.len() {
            i += 1; // the comma
        }
        let skip = attrs.iter().any(|a| a.contains("skip"));
        let default = attrs.iter().any(|a| a.contains("default"));
        fields.push(Field {
            name,
            skip,
            default,
        });
    }
    fields
}

fn count_tuple_fields(stream: TokenStream) -> usize {
    let tokens: Vec<TokenTree> = stream.into_iter().collect();
    if tokens.is_empty() {
        return 0;
    }
    let mut n = 0;
    let mut i = 0;
    while i < tokens.len() {
        let (_, ni) = take_attrs(&tokens, i);
        i = skip_vis(&tokens, ni);
        let next = skip_type(&tokens, i);
        if next > i {
            n += 1;
        }
        i = next + 1;
    }
    n
}

fn parse_variants(stream: TokenStream) -> Vec<Variant> {
    let tokens: Vec<TokenTree> = stream.into_iter().collect();
    let mut variants = Vec::new();
    let mut i = 0;
    while i < tokens.len() {
        let (_, ni) = take_attrs(&tokens, i);
        i = ni;
        let name = match tokens.get(i) {
            Some(TokenTree::Ident(id)) => id.to_string(),
            _ => break,
        };
        i += 1;
        let kind = match tokens.get(i) {
            Some(TokenTree::Group(g)) if g.delimiter() == Delimiter::Brace => {
                let names = parse_named_fields(g.stream())
                    .into_iter()
                    .map(|f| f.name)
                    .collect();
                i += 1;
                VariantKind::Named(names)
            }
            Some(TokenTree::Group(g)) if g.delimiter() == Delimiter::Parenthesis => {
                let n = count_tuple_fields(g.stream());
                i += 1;
                VariantKind::Tuple(n)
            }
            _ => VariantKind::Unit,
        };
        if matches!(tokens.get(i), Some(t) if is_punct(t, ',')) {
            i += 1;
        }
        variants.push(Variant { name, kind });
    }
    variants
}

fn parse_input(input: TokenStream) -> Input {
    let tokens: Vec<TokenTree> = input.into_iter().collect();
    let (attr_bodies, mut i) = take_attrs(&tokens, 0);
    let attrs = parse_container_attrs(&attr_bodies);
    i = skip_vis(&tokens, i);
    let is_enum = match tokens.get(i) {
        Some(t) if is_ident(t, "struct") => false,
        Some(t) if is_ident(t, "enum") => true,
        other => panic!("serde_derive stub: expected struct/enum, got {other:?}"),
    };
    i += 1;
    let name = match tokens.get(i) {
        Some(TokenTree::Ident(id)) => id.to_string(),
        other => panic!("serde_derive stub: expected type name, got {other:?}"),
    };
    i += 1;
    if matches!(tokens.get(i), Some(t) if is_punct(t, '<')) {
        panic!("serde_derive stub: generic types are not supported (type `{name}`)");
    }
    let body = match tokens.get(i) {
        Some(TokenTree::Group(g)) => g,
        other => panic!("serde_derive stub: expected type body for `{name}`, got {other:?}"),
    };
    let shape = if is_enum {
        Shape::Enum(parse_variants(body.stream()))
    } else if body.delimiter() == Delimiter::Brace {
        Shape::NamedStruct(parse_named_fields(body.stream()))
    } else {
        Shape::TupleStruct(count_tuple_fields(body.stream()))
    };
    Input { name, attrs, shape }
}

fn snake_case(name: &str) -> String {
    let mut out = String::new();
    for (i, c) in name.chars().enumerate() {
        if c.is_uppercase() {
            if i > 0 {
                out.push('_');
            }
            out.extend(c.to_lowercase());
        } else {
            out.push(c);
        }
    }
    out
}

fn variant_wire_name(input: &Input, v: &Variant) -> String {
    if input.attrs.rename_all_snake {
        snake_case(&v.name)
    } else {
        v.name.clone()
    }
}

fn gen_serialize(input: &Input) -> String {
    let name = &input.name;
    let body = match &input.shape {
        Shape::NamedStruct(fields) => {
            let pushes: String = fields
                .iter()
                .filter(|f| !f.skip)
                .map(|f| {
                    format!(
                        "__m.push((::std::string::String::from(\"{0}\"), \
                         ::serde::Serialize::to_value(&self.{0})));\n",
                        f.name
                    )
                })
                .collect();
            format!(
                "let mut __m: ::std::vec::Vec<(::std::string::String, ::serde::Value)> = \
                 ::std::vec::Vec::new();\n{pushes}::serde::Value::Map(__m)"
            )
        }
        Shape::TupleStruct(1) => "::serde::Serialize::to_value(&self.0)".to_string(),
        Shape::TupleStruct(n) => {
            let items: Vec<String> = (0..*n)
                .map(|i| format!("::serde::Serialize::to_value(&self.{i})"))
                .collect();
            format!("::serde::Value::Seq(::std::vec![{}])", items.join(", "))
        }
        Shape::Enum(variants) => {
            let mut arms = String::new();
            for v in variants {
                let wire = variant_wire_name(input, v);
                let arm = match (&v.kind, &input.attrs.tag) {
                    (VariantKind::Unit, None) => format!(
                        "{name}::{0} => ::serde::Value::Str(::std::string::String::from(\"{wire}\")),\n",
                        v.name
                    ),
                    (VariantKind::Unit, Some(tag)) => format!(
                        "{name}::{0} => ::serde::Value::Map(::std::vec![\
                         (::std::string::String::from(\"{tag}\"), \
                          ::serde::Value::Str(::std::string::String::from(\"{wire}\")))]),\n",
                        v.name
                    ),
                    (VariantKind::Named(fields), tag) => {
                        let pat: Vec<&str> = fields.iter().map(String::as_str).collect();
                        let mut pushes = String::new();
                        if let Some(tag) = tag {
                            pushes.push_str(&format!(
                                "__m.push((::std::string::String::from(\"{tag}\"), \
                                 ::serde::Value::Str(::std::string::String::from(\"{wire}\"))));\n"
                            ));
                        }
                        for f in fields {
                            pushes.push_str(&format!(
                                "__m.push((::std::string::String::from(\"{f}\"), \
                                 ::serde::Serialize::to_value({f})));\n"
                            ));
                        }
                        let inner = format!(
                            "let mut __m: ::std::vec::Vec<(::std::string::String, ::serde::Value)> = \
                             ::std::vec::Vec::new();\n{pushes}"
                        );
                        if tag.is_some() {
                            format!(
                                "{name}::{0} {{ {1} }} => {{ {inner} ::serde::Value::Map(__m) }}\n",
                                v.name,
                                pat.join(", ")
                            )
                        } else {
                            format!(
                                "{name}::{0} {{ {1} }} => {{ {inner} \
                                 ::serde::Value::Map(::std::vec![(\
                                 ::std::string::String::from(\"{wire}\"), \
                                 ::serde::Value::Map(__m))]) }}\n",
                                v.name,
                                pat.join(", ")
                            )
                        }
                    }
                    (VariantKind::Tuple(1), None) => format!(
                        "{name}::{0}(__x) => ::serde::Value::Map(::std::vec![(\
                         ::std::string::String::from(\"{wire}\"), \
                         ::serde::Serialize::to_value(__x))]),\n",
                        v.name
                    ),
                    (VariantKind::Tuple(_), _) => panic!(
                        "serde_derive stub: unsupported tuple enum variant {}::{}",
                        name, v.name
                    ),
                };
                arms.push_str(&arm);
            }
            format!("match self {{\n{arms}}}")
        }
    };
    format!(
        "#[automatically_derived]\nimpl ::serde::Serialize for {name} {{\n\
         fn to_value(&self) -> ::serde::Value {{\n{body}\n}}\n}}\n"
    )
}

fn gen_deserialize(input: &Input) -> String {
    let name = &input.name;
    let body = match &input.shape {
        Shape::NamedStruct(fields) => {
            let inits: String = fields
                .iter()
                .map(|f| {
                    if f.skip {
                        format!("{}: ::std::default::Default::default(),\n", f.name)
                    } else if f.default {
                        format!(
                            "{0}: ::serde::get_field_or_default(__v, \"{0}\")?,\n",
                            f.name
                        )
                    } else {
                        format!("{0}: ::serde::get_field(__v, \"{0}\")?,\n", f.name)
                    }
                })
                .collect();
            format!("::std::result::Result::Ok({name} {{\n{inits}}})")
        }
        Shape::TupleStruct(1) => {
            format!("::std::result::Result::Ok({name}(::serde::Deserialize::from_value(__v)?))")
        }
        Shape::TupleStruct(n) => {
            let items: Vec<String> = (0..*n)
                .map(|i| format!("::serde::Deserialize::from_value(::serde::seq_item(__v, {i})?)?"))
                .collect();
            format!("::std::result::Result::Ok({name}({}))", items.join(", "))
        }
        Shape::Enum(variants) => {
            if let Some(tag) = &input.attrs.tag {
                let mut arms = String::new();
                for v in variants {
                    let wire = variant_wire_name(input, v);
                    let arm = match &v.kind {
                        VariantKind::Unit => format!(
                            "\"{wire}\" => ::std::result::Result::Ok({name}::{0}),\n",
                            v.name
                        ),
                        VariantKind::Named(fields) => {
                            let inits: String = fields
                                .iter()
                                .map(|f| format!("{f}: ::serde::get_field(__v, \"{f}\")?,\n"))
                                .collect();
                            format!(
                                "\"{wire}\" => ::std::result::Result::Ok({name}::{0} {{\n{inits}}}),\n",
                                v.name
                            )
                        }
                        VariantKind::Tuple(_) => panic!(
                            "serde_derive stub: unsupported tuple variant {}::{}",
                            name, v.name
                        ),
                    };
                    arms.push_str(&arm);
                }
                format!(
                    "let __tag: ::std::string::String = ::serde::get_field(__v, \"{tag}\")?;\n\
                      match __tag.as_str() {{\n{arms}\
                      __other => ::std::result::Result::Err(::serde::Error::custom(\
                      ::std::format!(\"unknown variant `{{__other}}` of {name}\"))),\n}}"
                )
            } else {
                let mut arms = String::new();
                for v in variants {
                    let wire = variant_wire_name(input, v);
                    let arm = match &v.kind {
                        VariantKind::Unit => format!(
                            "\"{wire}\" => ::std::result::Result::Ok({name}::{0}),\n",
                            v.name
                        ),
                        VariantKind::Named(fields) => {
                            let inits: String = fields
                                .iter()
                                .map(|f| format!("{f}: ::serde::get_field(__inner, \"{f}\")?,\n"))
                                .collect();
                            format!(
                                "\"{wire}\" => ::std::result::Result::Ok({name}::{0} {{\n{inits}}}),\n",
                                v.name
                            )
                        }
                        VariantKind::Tuple(1) => format!(
                            "\"{wire}\" => ::std::result::Result::Ok({name}::{0}(\
                             ::serde::Deserialize::from_value(__inner)?)),\n",
                            v.name
                        ),
                        VariantKind::Tuple(_) => panic!(
                            "serde_derive stub: unsupported tuple variant {}::{}",
                            name, v.name
                        ),
                    };
                    arms.push_str(&arm);
                }
                format!(
                    "let (__vname, __inner) = ::serde::variant_parts(__v)?;\n\
                     match __vname {{\n{arms}\
                     __other => ::std::result::Result::Err(::serde::Error::custom(\
                     ::std::format!(\"unknown variant `{{__other}}` of {name}\"))),\n}}"
                )
            }
        }
    };
    format!(
        "#[automatically_derived]\nimpl ::serde::Deserialize for {name} {{\n\
         fn from_value(__v: &::serde::Value) -> ::std::result::Result<Self, ::serde::Error> {{\n\
         {body}\n}}\n}}\n"
    )
}

#[proc_macro_derive(Serialize, attributes(serde))]
pub fn derive_serialize(input: TokenStream) -> TokenStream {
    let parsed = parse_input(input);
    gen_serialize(&parsed)
        .parse()
        .expect("serde_derive stub: generated invalid Serialize impl")
}

#[proc_macro_derive(Deserialize, attributes(serde))]
pub fn derive_deserialize(input: TokenStream) -> TokenStream {
    let parsed = parse_input(input);
    gen_deserialize(&parsed)
        .parse()
        .expect("serde_derive stub: generated invalid Deserialize impl")
}
