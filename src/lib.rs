//! Root meta-crate for the LIGHTOR reproduction.
//!
//! Re-exports the workspace crates so examples and integration tests can
//! use a single dependency. See README.md for the tour.

pub use lightor;
pub use lightor_baselines as baselines;
pub use lightor_chatsim as chatsim;
pub use lightor_crowdsim as crowdsim;
pub use lightor_eval as eval;
pub use lightor_mlcore as mlcore;
pub use lightor_neural as neural;
pub use lightor_platform as platform;
pub use lightor_server as server;
pub use lightor_simkit as simkit;
pub use lightor_types as types;
